// Package interp is the execution engine (§3.4): a portable interpreter for
// IR modules. It implements the unified memory model of §2.3 with a flat
// byte-addressable arena (so type-punning through casts behaves like real
// memory), the invoke/unwind exception mechanism of §2.4 by unwinding
// interpreter frames until an invoke is found, and a small registry of
// external functions (printf and friends) that front-end runtimes use.
package interp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
)

// Limits protect against runaway programs.
const (
	DefaultMaxSteps     = 200_000_000
	DefaultMaxDepth     = 10_000
	DefaultMaxHeapBytes = 1 << 30 // heap arena cap (1 GiB)
	stackSize           = 1 << 22 // per-machine stack arena (4 MiB)
	// cancelCheckMask gates context polling to every 1024th step so
	// cooperative cancellation stays off the hot path.
	cancelCheckMask = 1<<10 - 1
)

// Common execution errors. Errors that escape RunFunction/RunContext are
// wrapped in *Trap (carrying the faulting position) but still match these
// sentinels under errors.Is.
var (
	ErrMaxSteps        = errors.New("interp: step limit exceeded")
	ErrStackOverflow   = errors.New("interp: call depth exceeded")
	ErrNullDeref       = errors.New("interp: null pointer dereference")
	ErrOutOfBounds     = errors.New("interp: memory access out of bounds")
	ErrUncaughtUnwind  = errors.New("interp: unwind with no enclosing invoke")
	ErrDivideByZero    = errors.New("interp: integer division by zero")
	ErrBadIndirectCall = errors.New("interp: indirect call through bad function pointer")
	ErrDoubleFree      = errors.New("interp: free of unallocated or already-freed pointer")
	ErrCancelled       = errors.New("interp: execution cancelled")
	ErrHeapLimit       = errors.New("interp: heap limit exceeded")
	// ErrTrap marks an internal fault (a recovered interpreter/JIT panic)
	// rather than a well-defined program error.
	ErrTrap = errors.New("interp: runtime trap")
)

// Trap is a typed execution fault: the underlying cause plus the position
// (function, block, instruction) the machine was executing when it fired.
// It unwraps to its cause, so errors.Is(err, ErrNullDeref) etc. still work.
type Trap struct {
	Cause error
	Fn    string // faulting function name ("" if unknown)
	Block string // basic block name ("" if unnamed/unknown)
	Inst  string // rendered instruction ("" if unknown, e.g. in JIT code)
}

// Pos returns the fault position in the toolchain's shared diagnostic
// coordinates, so a runtime trap can be matched against the static
// checker's prediction for the same instruction.
func (t *Trap) Pos() diag.Pos {
	return diag.Pos{Fn: t.Fn, Block: t.Block, Inst: t.Inst}
}

func (t *Trap) Error() string {
	msg := t.Cause.Error()
	if loc := t.Pos().String(); loc != "" {
		msg += " " + loc
	}
	return msg
}

func (t *Trap) Unwrap() error { return t.Cause }

// Builtin is a native implementation of an external function. Args are raw
// 64-bit values per the declared parameter types (plus variadic extras);
// the result is the raw return value.
type Builtin func(m *Machine, args []uint64) (uint64, error)

// Machine executes one module.
type Machine struct {
	Mod *core.Module
	// Out receives program output (printf etc.).
	Out io.Writer
	// MaxSteps and MaxDepth bound execution.
	MaxSteps int64
	MaxDepth int
	// MaxHeapBytes caps the heap arena (globals + malloc); 0 disables the
	// cap. Exceeding it traps with ErrHeapLimit instead of exhausting the
	// host.
	MaxHeapBytes int64

	// Metrics, when set, receives per-run counters: runs, instructions
	// executed, and traps broken down by kind (llvm_interp_*, DESIGN.md
	// §10). Recorded once per outermost RunContext.
	Metrics *obs.Registry

	// Steps counts executed instructions; OpCounts breaks them down.
	Steps    int64
	OpCounts [core.NumOpcodes]int64
	// MallocBytes and NumMallocs track heap usage.
	MallocBytes int64
	NumMallocs  int64

	heap      []byte
	stack     []byte
	stackTop  uint64
	allocs    map[uint64]uint64 // live heap allocations: addr -> size
	globals   map[*core.GlobalVariable]uint64
	funcAddrs map[*core.Function]uint64
	funcAt    map[uint64]*core.Function
	builtins  map[string]Builtin
	depth     int
	runDepth  int // nesting of RunContext; metrics record at the outermost

	// Tiered execution (DESIGN.md §12). tier selects the policy; fstates
	// carries per-function translations, hotness counters, and profile
	// counts; prog, when attached, shares translations across machines.
	tier      TierPolicy
	HotCalls  int64 // TierAuto: promote after this many calls
	HotTicks  int64 // TierAuto: promote after this many steps inside the function
	fstates   map[*core.Function]*funcState
	prog      *Program
	profiling bool
	argBuf    []uint64 // shared call-argument arena (watermark discipline)

	tierCalls     [3]int64
	tierCompiles  [3]int64
	tierCompileNs [3]int64
	tierUps       int64

	// ctx enables cooperative cancellation while a RunContext call is
	// active; cur* record the execution position for trap reports.
	ctx      context.Context
	curFn    *core.Function
	curBlock *core.BasicBlock
	curInst  core.Instruction
}

// NewMachine prepares a machine: lays out globals, assigns function
// addresses, and registers the standard builtins. Out may be nil to
// discard output.
func NewMachine(m *core.Module, out io.Writer) (*Machine, error) {
	if out == nil {
		out = io.Discard
	}
	mc := &Machine{
		Mod:          m,
		Out:          out,
		MaxSteps:     DefaultMaxSteps,
		MaxDepth:     DefaultMaxDepth,
		MaxHeapBytes: DefaultMaxHeapBytes,
		HotCalls:     DefaultHotCalls,
		HotTicks:     DefaultHotTicks,
		heap:         make([]byte, 8), // address 0 reserved (null)
		stack:        make([]byte, stackSize),
		stackTop:     8,
		allocs:       map[uint64]uint64{},
		globals:      map[*core.GlobalVariable]uint64{},
		funcAddrs:    map[*core.Function]uint64{},
		funcAt:       map[uint64]*core.Function{},
		builtins:     map[string]Builtin{},
	}
	// LLVM_INTERP_TIER forces an execution tier for every machine in the
	// process (the CI matrix runs the whole test suite at each tier).
	if s := os.Getenv("LLVM_INTERP_TIER"); s != "" {
		if p, ok := ParseTierPolicy(s); ok {
			mc.tier = p
		}
	}
	registerStdBuiltins(mc)

	// Function descriptors: 8 opaque bytes each.
	for _, f := range m.Funcs {
		addr := mc.rawAlloc(8)
		mc.funcAddrs[f] = addr
		mc.funcAt[addr] = f
	}
	// Globals. Hostile inputs can declare absurdly large (or overflowed)
	// value types; reject them instead of exhausting the host arena.
	for _, g := range m.Globals {
		size := core.SizeOf(g.ValueType)
		if size == 0 {
			size = 8
		}
		if size < 0 || (mc.MaxHeapBytes > 0 && int64(len(mc.heap))+int64(size) > mc.MaxHeapBytes) {
			return nil, fmt.Errorf("%w: global %%%s of type %s", ErrHeapLimit, g.Name(), g.ValueType)
		}
		mc.globals[g] = mc.rawAlloc(uint64(size))
	}
	for _, g := range m.Globals {
		if g.Init != nil {
			if err := mc.storeConstant(mc.globals[g], g.Init); err != nil {
				return nil, fmt.Errorf("initializing %%%s: %w", g.Name(), err)
			}
		}
	}
	return mc, nil
}

// RegisterBuiltin installs (or overrides) a native external function.
func (mc *Machine) RegisterBuiltin(name string, fn Builtin) { mc.builtins[name] = fn }

// rawAlloc grows the heap by n bytes (8-byte aligned) and returns the base.
func (mc *Machine) rawAlloc(n uint64) uint64 {
	addr := uint64(len(mc.heap))
	if rem := addr % 8; rem != 0 {
		mc.heap = append(mc.heap, make([]byte, 8-rem)...)
		addr = uint64(len(mc.heap))
	}
	mc.heap = append(mc.heap, make([]byte, n)...)
	return addr
}

// Malloc allocates n bytes on the heap (the malloc instruction). It traps
// with ErrHeapLimit when the allocation would push the arena past
// MaxHeapBytes.
func (mc *Machine) Malloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	if mc.MaxHeapBytes > 0 {
		if n > uint64(mc.MaxHeapBytes) || int64(len(mc.heap))+int64(n) > mc.MaxHeapBytes {
			return 0, ErrHeapLimit
		}
	}
	addr := mc.rawAlloc(n)
	mc.allocs[addr] = n
	mc.MallocBytes += int64(n)
	mc.NumMallocs++
	return addr, nil
}

// Free releases a heap allocation (the free instruction).
func (mc *Machine) Free(addr uint64) error {
	if addr == 0 {
		return nil // free(null) is a no-op
	}
	if _, ok := mc.allocs[addr]; !ok {
		return ErrDoubleFree
	}
	delete(mc.allocs, addr)
	return nil
}

// Memory addressing: the stack arena occupies addresses [stackBase,
// stackBase+len(stack)); everything below is heap/globals.
const stackBase = 1 << 40

func (mc *Machine) mem(addr uint64, n int) ([]byte, error) {
	if addr == 0 {
		return nil, ErrNullDeref
	}
	if addr+uint64(n) < addr {
		// addr+n wrapped around: a hostile GEP produced a pointer near the
		// top of the address space. Without this check the bounds tests
		// below would pass spuriously and the slice would panic.
		return nil, ErrOutOfBounds
	}
	if addr >= stackBase {
		off := addr - stackBase
		if off+uint64(n) > uint64(len(mc.stack)) {
			return nil, ErrOutOfBounds
		}
		return mc.stack[off : off+uint64(n)], nil
	}
	if addr+uint64(n) > uint64(len(mc.heap)) {
		return nil, ErrOutOfBounds
	}
	return mc.heap[addr : addr+uint64(n)], nil
}

// loadBits reads a first-class value of type t at addr.
func (mc *Machine) loadBits(addr uint64, t core.Type) (uint64, error) {
	size := core.SizeOf(t)
	b, err := mc.mem(addr, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	case 8:
		return binary.LittleEndian.Uint64(b), nil
	}
	return 0, fmt.Errorf("interp: load of %d-byte type %s", size, t)
}

// storeBits writes a first-class value of type t at addr.
func (mc *Machine) storeBits(addr uint64, t core.Type, v uint64) error {
	size := core.SizeOf(t)
	b, err := mc.mem(addr, size)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		return fmt.Errorf("interp: store of %d-byte type %s", size, t)
	}
	return nil
}

// storeConstant writes a constant (possibly aggregate) into memory.
func (mc *Machine) storeConstant(addr uint64, c core.Constant) error {
	switch cc := c.(type) {
	case *core.ConstantInt:
		return mc.storeBits(addr, cc.Type(), cc.Val)
	case *core.ConstantFloat:
		return mc.storeBits(addr, cc.Type(), floatBits(cc.Type(), cc.Val))
	case *core.ConstantBool:
		v := uint64(0)
		if cc.Val {
			v = 1
		}
		return mc.storeBits(addr, core.BoolType, v)
	case *core.ConstantNull:
		return mc.storeBits(addr, cc.Type(), 0)
	case *core.ConstantUndef, *core.ConstantZero:
		return nil // memory is already zeroed
	case *core.ConstantArray:
		at := cc.Type().(*core.ArrayType)
		esz := uint64(core.SizeOf(at.Elem))
		for i, e := range cc.Elems {
			if err := mc.storeConstant(addr+uint64(i)*esz, e); err != nil {
				return err
			}
		}
		return nil
	case *core.ConstantStruct:
		st := cc.Type().(*core.StructType)
		for i, f := range cc.Fields {
			if err := mc.storeConstant(addr+uint64(core.FieldOffset(st, i)), f); err != nil {
				return err
			}
		}
		return nil
	case *core.Function:
		return mc.storeBits(addr, cc.Type(), mc.funcAddrs[cc])
	case *core.GlobalVariable:
		return mc.storeBits(addr, cc.Type(), mc.globals[cc])
	case *core.ConstantExpr:
		v, err := mc.evalConstant(cc)
		if err != nil {
			return err
		}
		return mc.storeBits(addr, cc.Type(), v)
	}
	return fmt.Errorf("interp: cannot store constant %T", c)
}

// evalConstant computes the raw bits of a first-class constant.
func (mc *Machine) evalConstant(c core.Constant) (uint64, error) {
	switch cc := c.(type) {
	case *core.ConstantInt:
		return cc.Val, nil
	case *core.ConstantFloat:
		return floatBits(cc.Type(), cc.Val), nil
	case *core.ConstantBool:
		if cc.Val {
			return 1, nil
		}
		return 0, nil
	case *core.ConstantNull:
		return 0, nil
	case *core.ConstantUndef, *core.ConstantZero:
		return 0, nil
	case *core.Function:
		return mc.funcAddrs[cc], nil
	case *core.GlobalVariable:
		return mc.globals[cc], nil
	case *core.ConstantExpr:
		switch cc.Op {
		case core.OpCast:
			src := cc.Operand(0).(core.Constant)
			v, err := mc.evalConstant(src)
			if err != nil {
				return 0, err
			}
			return castBits(src.Type(), cc.Type(), v), nil
		case core.OpGetElementPtr:
			base := cc.Operand(0).(core.Constant)
			v, err := mc.evalConstant(base)
			if err != nil {
				return 0, err
			}
			idxVals := make([]uint64, cc.NumOperands()-1)
			idxTypes := make([]core.Type, cc.NumOperands()-1)
			for i := 1; i < cc.NumOperands(); i++ {
				iv, err := mc.evalConstant(cc.Operand(i).(core.Constant))
				if err != nil {
					return 0, err
				}
				idxVals[i-1] = iv
				idxTypes[i-1] = cc.Operand(i).Type()
			}
			return gepAddress(base.Type(), v, cc.Operands()[1:], idxVals)
		}
	}
	return 0, fmt.Errorf("interp: cannot evaluate constant %T", c)
}

// gepAddress computes base + offsets for a getelementptr's index path.
func gepAddress(baseType core.Type, base uint64, idxOps []core.Value, idxVals []uint64) (uint64, error) {
	pt, ok := baseType.(*core.PointerType)
	if !ok {
		return 0, fmt.Errorf("interp: GEP base is not a pointer")
	}
	addr := int64(base)
	cur := core.Type(pt.Elem)
	for k := range idxOps {
		iv := int64(signExtend(idxOps[k].Type(), idxVals[k]))
		if k == 0 {
			addr += iv * int64(core.SizeOf(cur))
			continue
		}
		switch ct := cur.(type) {
		case *core.StructType:
			f := int(iv)
			if f < 0 || f >= len(ct.Fields) {
				return 0, ErrOutOfBounds
			}
			addr += int64(core.FieldOffset(ct, f))
			cur = ct.Fields[f]
		case *core.ArrayType:
			addr += iv * int64(core.SizeOf(ct.Elem))
			cur = ct.Elem
		default:
			return 0, fmt.Errorf("interp: GEP into non-aggregate %s", cur)
		}
	}
	return uint64(addr), nil
}

// signExtend interprets raw bits as a (possibly signed) integer value.
func signExtend(t core.Type, v uint64) uint64 {
	if core.IsSigned(t) {
		bits := core.BitWidth(t)
		if bits < 64 {
			shift := uint(64 - bits)
			return uint64(int64(v<<shift) >> shift)
		}
	}
	return v
}

// floatBits encodes a float value in the in-memory representation of t.
func floatBits(t core.Type, f float64) uint64 {
	if t.Kind() == core.FloatKind {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

// bitsToFloat decodes the in-memory representation of t.
func bitsToFloat(t core.Type, v uint64) float64 {
	if t.Kind() == core.FloatKind {
		return float64(math.Float32frombits(uint32(v)))
	}
	return math.Float64frombits(v)
}

// castBits implements the cast instruction over raw bits.
func castBits(from, to core.Type, v uint64) uint64 {
	switch {
	case core.IsFloatingPoint(from) && core.IsFloatingPoint(to):
		return floatBits(to, bitsToFloat(from, v))
	case core.IsFloatingPoint(from) && (core.IsInteger(to) || to.Kind() == core.BoolKind):
		return core.EvalFloatToInt(to, bitsToFloat(from, v))
	case core.IsFloatingPoint(to):
		return floatBits(to, core.EvalIntToFloat(from, to, v))
	case from.Kind() == core.PointerKind || to.Kind() == core.PointerKind:
		// Pointer-integer conversions keep the bit pattern (truncated).
		if core.IsInteger(to) {
			return core.EvalIntCast(core.ULongType, to, v)
		}
		return v
	case to.Kind() == core.BoolKind:
		if v != 0 {
			return 1
		}
		return 0
	default:
		return core.EvalIntCast(from, to, v)
	}
}
