package interp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
)

// sandboxMachine parses src and returns a machine, failing the test on any
// front-end error.
func sandboxMachine(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := asm.ParseModule("sandbox", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mc, err := NewMachine(m, nil)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return mc
}

// checkReusable asserts the machine still executes correctly after a trap.
func checkReusable(t *testing.T, mc *Machine, fn string, want uint64) {
	t.Helper()
	v, err := mc.RunFunction(mc.Mod.Func(fn), 0)
	if err != nil {
		t.Fatalf("machine not reusable after trap: %v", err)
	}
	if v != want {
		t.Fatalf("machine reusable but wrong result: got %d, want %d", v, want)
	}
}

const spinSrc = `
int %main() {
entry:
	br label %loop
loop:
	br label %loop
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`

func TestHeapLimitMalloc(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%p = malloc [100000 x int]
	free [100000 x int]* %p
	ret int 0
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	mc.MaxHeapBytes = 4096
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("want ErrHeapLimit, got %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want *Trap, got %T: %v", err, err)
	}
	if trap.Fn != "main" || trap.Inst == "" {
		t.Fatalf("trap position missing: %+v", trap)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestHeapLimitVariableCount(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%n = cast int -1 to uint
	%p = malloc int, uint %n
	%v = load int* %p
	ret int %v
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	// 2^32-1 elements * 4 bytes exceeds the default 1 GiB arena cap; the
	// multiplication itself must also be overflow-checked.
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("want ErrHeapLimit, got %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestHeapLimitGlobals(t *testing.T) {
	m, err := asm.ParseModule("sandbox", `
%huge = global [400000000 x int] zeroinitializer
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// 400M ints = 1.6 GB of global data: must be rejected at machine
	// construction, not by a multi-gigabyte allocation.
	if _, err := NewMachine(m, nil); !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("want ErrHeapLimit from NewMachine, got %v", err)
	}
}

func TestMaxStepsTrapIsTyped(t *testing.T) {
	mc := sandboxMachine(t, spinSrc)
	mc.MaxSteps = 500
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want ErrMaxSteps, got %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Fn != "main" || trap.Block != "loop" {
		t.Fatalf("bad trap position: %v", err)
	}
	mc.Steps = 0
	checkReusable(t, mc, "ok", 7)
}

func TestMaxDepthTrap(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%r = call int %main()
	ret int %r
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	mc.MaxDepth = 64
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("want ErrStackOverflow, got %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestContextCancelledBeforeRun(t *testing.T) {
	mc := sandboxMachine(t, spinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mc.RunContext(ctx, mc.Mod.Func("main"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestContextCancelledMidRun(t *testing.T) {
	mc := sandboxMachine(t, spinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := mc.RunContext(ctx, mc.Mod.Func("main"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation took implausibly long")
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Fn != "main" {
		t.Fatalf("cancellation should still carry position: %v", err)
	}
	mc.Steps = 0
	checkReusable(t, mc, "ok", 7)
}

func TestContextDeadline(t *testing.T) {
	mc := sandboxMachine(t, spinSrc)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := mc.RunContext(ctx, mc.Mod.Func("main"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled on deadline, got %v", err)
	}
}

func TestContextCancelledMidRunJIT(t *testing.T) {
	mc := sandboxMachine(t, spinSrc)
	mc.EnableJIT()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := mc.RunContext(ctx, mc.Mod.Func("main"))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled under JIT, got %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Fn != "main" {
		t.Fatalf("JIT trap should carry the function name: %v", err)
	}
	mc.Steps = 0
	checkReusable(t, mc, "ok", 7)
}

func TestHeapLimitJIT(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%n = cast int -1 to uint
	%p = malloc int, uint %n
	%v = load int* %p
	ret int %v
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	mc.EnableJIT()
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("want ErrHeapLimit under JIT, got %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestDoubleFreeTrapPosition(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%p = malloc int
	free int* %p
	free int* %p
	ret int 0
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("want ErrDoubleFree, got %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Fn != "main" || trap.Inst == "" {
		t.Fatalf("double free should report its instruction: %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestWraparoundPointerTrap(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%addr = cast long -8 to int*
	%v = load int* %addr
	ret int %v
}

int %ok(int %x) {
entry:
	%r = add int %x, 7
	ret int %r
}
`)
	// An address near 2^64 makes addr+size wrap around; the bounds check
	// must not be fooled by the overflow.
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds for wraparound pointer, got %v", err)
	}
	checkReusable(t, mc, "ok", 7)
}

func TestTrapErrorMessageIncludesPosition(t *testing.T) {
	mc := sandboxMachine(t, `
int %main() {
entry:
	%v = load int* null
	ret int %v
}
`)
	_, err := mc.RunFunction(mc.Mod.Func("main"))
	if err == nil {
		t.Fatal("want trap")
	}
	msg := err.Error()
	for _, want := range []string{"main", "entry", "load"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("trap message %q missing %q", msg, want)
		}
	}
}
