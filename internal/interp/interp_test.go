package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

func run(t *testing.T, src string, args ...uint64) (uint64, *Machine, string) {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	var out bytes.Buffer
	mc, err := NewMachine(m, &out)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	f := m.Func("main")
	if f == nil {
		t.Fatal("no main")
	}
	v, err := mc.RunFunction(f, args...)
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, out.String())
	}
	return v, mc, out.String()
}

func TestArithmetic(t *testing.T) {
	v, _, _ := run(t, `
int %main(int %x) {
entry:
	%a = add int %x, 10
	%b = mul int %a, 3
	%c = sub int %b, 6
	%d = div int %c, 2
	%e = rem int %d, 100
	ret int %e
}
`, 4)
	// ((4+10)*3-6)/2 = 18; 18%100 = 18
	if int32(v) != 18 {
		t.Fatalf("got %d, want 18", int32(v))
	}
}

func TestSignedVsUnsignedDivision(t *testing.T) {
	v, _, _ := run(t, `
int %main() {
entry:
	%a = div int -7, 2
	ret int %a
}
`)
	if int32(v) != -3 {
		t.Fatalf("signed div: got %d, want -3", int32(v))
	}
	v2, _, _ := run(t, `
uint %main() {
entry:
	%big = cast int -7 to uint
	%a = div uint %big, 2
	ret uint %a
}
`)
	if uint32(v2) != 2147483644 {
		t.Fatalf("unsigned div: got %d", uint32(v2))
	}
}

func TestShiftSemantics(t *testing.T) {
	v, _, _ := run(t, `
int %main() {
entry:
	%a = shr int -8, ubyte 1
	ret int %a
}
`)
	if int32(v) != -4 {
		t.Fatalf("arithmetic shift: got %d, want -4", int32(v))
	}
	v2, _, _ := run(t, `
uint %main() {
entry:
	%m = cast int -8 to uint
	%a = shr uint %m, ubyte 1
	ret uint %a
}
`)
	if uint32(v2) != 0x7FFFFFFC {
		t.Fatalf("logical shift: got %#x", uint32(v2))
	}
}

func TestLoopSum(t *testing.T) {
	v, _, _ := run(t, `
int %main(int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%s = phi int [ 0, %entry ], [ %s2, %loop ]
	%s2 = add int %s, %i
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %s2
}
`, 10)
	if int32(v) != 45 {
		t.Fatalf("sum 0..9 = %d, want 45", int32(v))
	}
}

func TestMemoryAndGEP(t *testing.T) {
	v, _, _ := run(t, `
%xty = type { int, int, [4 x int] }

int %main() {
entry:
	%arr = malloc %xty, uint 10
	%p = getelementptr %xty* %arr, long 3, ubyte 2, long 1
	store int 77, int* %p
	%q = getelementptr %xty* %arr, long 3, ubyte 2, long 1
	%v = load int* %q
	free %xty* %arr
	ret int %v
}
`)
	if int32(v) != 77 {
		t.Fatalf("GEP store/load: got %d", int32(v))
	}
}

func TestTypePunningThroughCast(t *testing.T) {
	// Store an int through a casted pointer, read back bytes — flat
	// memory semantics (little-endian).
	v, _, _ := run(t, `
int %main() {
entry:
	%p = alloca int
	store int 305419896, int* %p
	%bp = cast int* %p to ubyte*
	%b0 = load ubyte* %bp
	%v = cast ubyte %b0 to int
	ret int %v
}
`)
	// 305419896 = 0x12345678, low byte 0x78 = 120.
	if int32(v) != 0x78 {
		t.Fatalf("punned byte = %#x, want 0x78", v)
	}
}

func TestGlobalsAndInitializers(t *testing.T) {
	v, _, _ := run(t, `
%counter = global int 5
%table = constant [3 x int] [ int 10, int 20, int 30 ]

int %main() {
entry:
	%c = load int* %counter
	%p = getelementptr [3 x int]* %table, long 0, long 2
	%t = load int* %p
	%s = add int %c, %t
	store int %s, int* %counter
	%c2 = load int* %counter
	ret int %c2
}
`)
	if int32(v) != 35 {
		t.Fatalf("globals: got %d, want 35", int32(v))
	}
}

func TestRecursionFactorial(t *testing.T) {
	v, _, _ := run(t, `
internal int %fact(int %n) {
entry:
	%c = setle int %n, 1
	br bool %c, label %base, label %rec
base:
	ret int 1
rec:
	%n1 = sub int %n, 1
	%r = call int %fact(int %n1)
	%p = mul int %n, %r
	ret int %p
}

int %main() {
entry:
	%r = call int %fact(int 10)
	ret int %r
}
`)
	if int32(v) != 3628800 {
		t.Fatalf("10! = %d", int32(v))
	}
}

func TestIndirectCall(t *testing.T) {
	v, _, _ := run(t, `
%fp = global int (int)* %triple

internal int %triple(int %x) {
entry:
	%r = mul int %x, 3
	ret int %r
}

int %main() {
entry:
	%f = load int (int)** %fp
	%r = call int %f(int 14)
	ret int %r
}
`)
	if int32(v) != 42 {
		t.Fatalf("indirect call: got %d", int32(v))
	}
}

func TestInvokeUnwindBasic(t *testing.T) {
	v, _, out := run(t, `
declare int %printf(sbyte*, ...)
%msg = internal constant [9 x sbyte] c"cleanup\0A\00"

internal void %thrower(bool %doThrow) {
entry:
	br bool %doThrow, label %t, label %ok
t:
	unwind
ok:
	ret void
}

int %main() {
entry:
	invoke void %thrower(bool true) to label %normal unwind to label %handler
normal:
	ret int 0
handler:
	%s = getelementptr [9 x sbyte]* %msg, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %s)
	ret int 99
}
`)
	if int32(v) != 99 {
		t.Fatalf("unwind not caught: got %d", int32(v))
	}
	if out != "cleanup\n" {
		t.Fatalf("handler output = %q", out)
	}
}

func TestUnwindThroughCallFrames(t *testing.T) {
	// unwind must skip plain call frames and stop at the nearest invoke.
	v, _, _ := run(t, `
internal void %deep() {
entry:
	unwind
}

internal void %mid() {
entry:
	call void %deep()
	ret void
}

int %main() {
entry:
	invoke void %mid() to label %normal unwind to label %handler
normal:
	ret int 1
handler:
	ret int 2
}
`)
	if int32(v) != 2 {
		t.Fatalf("unwind through frames: got %d, want 2", int32(v))
	}
}

func TestPaperFigure2DestructorPattern(t *testing.T) {
	// Figure 2 of the paper: the invoke handler runs the destructor, then
	// continues unwinding; an outer invoke catches it.
	v, _, out := run(t, `
declare int %printf(sbyte*, ...)
%dmsg = internal constant [6 x sbyte] c"dtor\0A\00"

internal void %func() {
entry:
	unwind
}

internal void %example() {
entry:
	invoke void %func() to label %OkLabel unwind to label %ExceptionLabel
OkLabel:
	ret void
ExceptionLabel:
	%s = getelementptr [6 x sbyte]* %dmsg, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %s)
	unwind
}

int %main() {
entry:
	invoke void %example() to label %done unwind to label %caught
done:
	ret int 0
caught:
	ret int 7
}
`)
	if int32(v) != 7 {
		t.Fatalf("re-unwind not propagated: got %d", int32(v))
	}
	if out != "dtor\n" {
		t.Fatalf("destructor did not run: %q", out)
	}
}

func TestUncaughtUnwind(t *testing.T) {
	m, err := asm.ParseModule("t", `
int %main() {
entry:
	unwind
}
`)
	if err != nil {
		t.Fatal(err)
	}
	mc, _ := NewMachine(m, nil)
	_, err = mc.RunFunction(m.Func("main"))
	if !errors.Is(err, ErrUncaughtUnwind) {
		t.Fatalf("want ErrUncaughtUnwind, got %v", err)
	}
}

func TestPrintf(t *testing.T) {
	_, _, out := run(t, `
declare int %printf(sbyte*, ...)
%fmt = internal constant [25 x sbyte] c"i=%d u=%u c=%c s=%s x=%x\00"
%str = internal constant [3 x sbyte] c"ok\00"

int %main() {
entry:
	%f = getelementptr [25 x sbyte]* %fmt, long 0, long 0
	%s = getelementptr [3 x sbyte]* %str, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %f, int -5, uint 7, int 65, sbyte* %s, int 255)
	ret int 0
}
`)
	if out != "i=-5 u=7 c=A s=ok x=ff" {
		t.Fatalf("printf output = %q", out)
	}
}

func TestFloatArithmetic(t *testing.T) {
	v, _, _ := run(t, `
int %main() {
entry:
	%a = add double 1.5, 2.25
	%b = mul double %a, 2.0
	%i = cast double %b to int
	ret int %i
}
`)
	if int32(v) != 7 {
		t.Fatalf("float arith: got %d, want 7", int32(v))
	}
}

func TestFloatSinglePrecisionRounding(t *testing.T) {
	v, _, _ := run(t, `
bool %main() {
entry:
	%a = add float 0.1, 0.2
	%d = cast float %a to double
	%exact = add double 0.1, 0.2
	%c = seteq double %d, %exact
	ret bool %c
}
`)
	if v != 0 {
		t.Fatal("float32 rounding lost: 0.1f+0.2f should differ from double")
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	m, _ := asm.ParseModule("t", `
int %main(int %z) {
entry:
	%a = div int 1, %z
	ret int %a
}
`)
	mc, _ := NewMachine(m, nil)
	_, err := mc.RunFunction(m.Func("main"), 0)
	if !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("want divide-by-zero, got %v", err)
	}
}

func TestNullDerefTrap(t *testing.T) {
	m, _ := asm.ParseModule("t", `
int %main() {
entry:
	%p = cast long 0 to int*
	%v = load int* %p
	ret int %v
}
`)
	mc, _ := NewMachine(m, nil)
	_, err := mc.RunFunction(m.Func("main"))
	if !errors.Is(err, ErrNullDeref) {
		t.Fatalf("want null deref, got %v", err)
	}
}

func TestDoubleFreeTrap(t *testing.T) {
	m, _ := asm.ParseModule("t", `
int %main() {
entry:
	%p = malloc int
	free int* %p
	free int* %p
	ret int 0
}
`)
	mc, _ := NewMachine(m, nil)
	_, err := mc.RunFunction(m.Func("main"))
	if !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("want double free, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m, _ := asm.ParseModule("t", `
int %main() {
entry:
	br label %loop
loop:
	br label %loop
}
`)
	mc, _ := NewMachine(m, nil)
	mc.MaxSteps = 1000
	_, err := mc.RunFunction(m.Func("main"))
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want step limit, got %v", err)
	}
}

func TestAllocaFrameReuse(t *testing.T) {
	// Stack allocations are reclaimed on return: deep call sequences with
	// allocas must not exhaust the stack arena.
	v, _, _ := run(t, `
internal int %leaf(int %x) {
entry:
	%buf = alloca [1024 x int]
	%p = getelementptr [1024 x int]* %buf, long 0, long 0
	store int %x, int* %p
	%v = load int* %p
	ret int %v
}

int %main() {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%r = call int %leaf(int %i)
	%i2 = add int %i, 1
	%c = setlt int %i2, 10000
	br bool %c, label %loop, label %done
done:
	ret int %r
}
`)
	if int32(v) != 9999 {
		t.Fatalf("got %d", int32(v))
	}
}

func TestSwitchDispatch(t *testing.T) {
	src := `
int %main(int %x) {
entry:
	switch int %x, label %other [
		int 1, label %one
		int 2, label %two ]
one:
	ret int 100
two:
	ret int 200
other:
	ret int 300
}
`
	for _, c := range []struct{ in, want uint64 }{{1, 100}, {2, 200}, {9, 300}} {
		v, _, _ := run(t, src, c.in)
		if v != c.want {
			t.Fatalf("switch(%d) = %d, want %d", c.in, v, c.want)
		}
	}
}

func TestVarArgsViaVAArg(t *testing.T) {
	v, _, _ := run(t, `
internal int %sum3(int %n, ...) {
entry:
	%ap = alloca sbyte*
	%a = vaarg sbyte** %ap, int
	%b = vaarg sbyte** %ap, int
	%c = vaarg sbyte** %ap, int
	%s1 = add int %a, %b
	%s2 = add int %s1, %c
	ret int %s2
}

int %main() {
entry:
	%r = call int (int, ...)* %sum3(int 3, int 10, int 20, int 30)
	ret int %r
}
`)
	if int32(v) != 60 {
		t.Fatalf("vaarg sum: got %d", int32(v))
	}
}

func TestOpCountsAndStats(t *testing.T) {
	// Per-opcode counts are a tier-0 feature: the translated tiers bump
	// only Steps. Pin the tier so the counts assert regardless of the
	// LLVM_INTERP_TIER matrix.
	m, err := asm.ParseModule("t", `
int %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	%v = load int* %p
	free int* %p
	ret int %v
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mc, err := NewMachine(m, nil)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	mc.SetTier(TierInterp)
	if _, err := mc.RunFunction(m.Func("main")); err != nil {
		t.Fatalf("run: %v", err)
	}
	if mc.NumMallocs != 1 || mc.MallocBytes != 4 {
		t.Errorf("malloc stats: n=%d bytes=%d", mc.NumMallocs, mc.MallocBytes)
	}
	if mc.OpCounts[core.OpLoad] != 1 || mc.OpCounts[core.OpStore] != 1 {
		t.Error("op counts wrong")
	}
	if mc.Steps != 5 {
		t.Errorf("steps = %d, want 5", mc.Steps)
	}
}

func TestStringHandling(t *testing.T) {
	_, _, out := run(t, `
declare int %puts(sbyte*)
%msg = internal constant [14 x sbyte] c"hello, world!\00"

int %main() {
entry:
	%s = getelementptr [14 x sbyte]* %msg, long 0, long 0
	%r = call int %puts(sbyte* %s)
	ret int 0
}
`)
	if !strings.Contains(out, "hello, world!") {
		t.Fatalf("output = %q", out)
	}
}
