package interp_test

// This test lives in the external test package: it pulls in the pass
// manager, and passes → validate → interp would be an import cycle from
// an in-package test.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/passes"
)

// TestOptimizationPreservesSemantics runs the same program raw and
// through the link-time pipeline and compares results across inputs: the
// interpreter serving as the oracle for the optimizer.
func TestOptimizationPreservesSemantics(t *testing.T) {
	src := `
internal int %mix(int %a, int %b) {
entry:
	%p = alloca int
	store int %a, int* %p
	%v = load int* %p
	%m = mul int %v, %b
	%n = add int %m, %a
	ret int %n
}

int %main(int %x) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%acc = phi int [ 0, %entry ], [ %acc2, %loop ]
	%t = call int %mix(int %i, int %x)
	%acc2 = add int %acc, %t
	%i2 = add int %i, 1
	%c = setlt int %i2, 50
	br bool %c, label %loop, label %done
done:
	ret int %acc2
}
`
	m1, _ := asm.ParseModule("before", src)
	m2, _ := asm.ParseModule("after", src)
	pm := passes.NewPassManager()
	pm.VerifyEach = true
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(m2); err != nil {
		t.Fatal(err)
	}

	for _, arg := range []uint64{0, 1, 7, 1 << 20} {
		mc1, _ := interp.NewMachine(m1, nil)
		mc2, _ := interp.NewMachine(m2, nil)
		v1, err1 := mc1.RunFunction(m1.Func("main"), arg)
		v2, err2 := mc2.RunFunction(m2.Func("main"), arg)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v / %v", err1, err2)
		}
		if int32(v1) != int32(v2) {
			t.Fatalf("optimization changed result for %d: %d vs %d", arg, int32(v1), int32(v2))
		}
		if mc2.Steps >= mc1.Steps {
			t.Errorf("optimized code not faster: %d vs %d steps", mc2.Steps, mc1.Steps)
		}
	}
}
