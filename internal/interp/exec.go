package interp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// execResult describes how a function activation ended.
type execResult int

const (
	resReturn execResult = iota
	resUnwind            // an unwind is propagating; caller must dispatch
)

// frame is one interpreter activation record.
type frame struct {
	fn     *core.Function
	vals   map[core.Value]uint64
	vaArgs []uint64 // extra args of a variadic call
	vaCur  int
	// stackMark is the stack-arena watermark to restore on return.
	stackMark uint64
	// fs carries per-function profile counters when profiling is on.
	fs *funcState
}

// RunFunction executes f with the given raw arguments and returns the raw
// result. An unwind that escapes f is reported as ErrUncaughtUnwind. Any
// execution fault — including a recovered interpreter panic — comes back
// as a *Trap wrapping one of the Err* sentinels, never as a Go panic.
func (mc *Machine) RunFunction(f *core.Function, args ...uint64) (uint64, error) {
	return mc.RunContext(context.Background(), f, args...)
}

// RunContext is RunFunction with cooperative cancellation: when ctx is
// cancelled (or its deadline passes), the step loop stops within a bounded
// number of instructions and the run fails with a *Trap wrapping
// ErrCancelled. The machine stays reusable afterwards.
func (mc *Machine) RunContext(ctx context.Context, f *core.Function, args ...uint64) (v uint64, err error) {
	prevCtx := mc.ctx
	if ctx != context.Background() {
		mc.ctx = ctx
	}
	mc.runDepth++
	steps0 := mc.Steps
	tc0 := mc.tierCalls
	tcp0 := mc.tierCompiles
	ups0 := mc.tierUps
	defer func() {
		mc.ctx = prevCtx
		if r := recover(); r != nil {
			err = mc.trapErr(fmt.Errorf("%w: panic: %v", ErrTrap, r))
			v = 0
		}
		mc.runDepth--
		// Record once per outermost run so re-entrant calls (builtins that
		// call back into the machine) are not double-counted.
		if mc.runDepth == 0 && mc.Metrics != nil {
			mc.Metrics.Counter("llvm_interp_runs_total").Inc()
			mc.Metrics.Counter("llvm_interp_instructions_total").Add(float64(mc.Steps - steps0))
			if err != nil {
				var ee *ExitError
				if !errors.As(err, &ee) {
					mc.Metrics.Counter("llvm_interp_traps_total", "kind", trapKindOf(err)).Inc()
				}
			}
			for t, name := range tierNames {
				if d := mc.tierCalls[t] - tc0[t]; d > 0 {
					mc.Metrics.Counter("llvm_interp_tier_calls_total", "tier", name).Add(float64(d))
				}
				if d := mc.tierCompiles[t] - tcp0[t]; d > 0 {
					mc.Metrics.Counter("llvm_interp_tier_compiles_total", "tier", name).Add(float64(d))
				}
			}
			if d := mc.tierUps - ups0; d > 0 {
				mc.Metrics.Counter("llvm_interp_tier_ups_total").Add(float64(d))
			}
		}
	}()
	val, res, err := mc.call(f, args)
	if err != nil {
		var ee *ExitError
		if errors.As(err, &ee) {
			return 0, err // explicit exit(): not a fault
		}
		return 0, mc.trapErr(err)
	}
	if res == resUnwind {
		return 0, mc.trapErr(ErrUncaughtUnwind)
	}
	return val, nil
}

// trapKindOf maps an execution error to its stable metric label, mirroring
// the Err* sentinels (llvm_interp_traps_total{kind=...}).
func trapKindOf(err error) string {
	for _, c := range []struct {
		sentinel error
		kind     string
	}{
		{ErrMaxSteps, "max-steps"},
		{ErrStackOverflow, "stack-overflow"},
		{ErrNullDeref, "null-deref"},
		{ErrOutOfBounds, "out-of-bounds"},
		{ErrUncaughtUnwind, "uncaught-unwind"},
		{ErrDivideByZero, "divide-by-zero"},
		{ErrBadIndirectCall, "bad-indirect-call"},
		{ErrDoubleFree, "double-free"},
		{ErrCancelled, "cancelled"},
		{ErrHeapLimit, "heap-limit"},
	} {
		if errors.Is(err, c.sentinel) {
			return c.kind
		}
	}
	return "other"
}

// trapErr wraps an execution error with the machine's current position.
// It must be called at the fault site, before the deferred curFn restore
// in call/jitExec unwinds the position. Explicit exit() is not a fault and
// passes through untouched.
func (mc *Machine) trapErr(cause error) error {
	var t *Trap
	if errors.As(cause, &t) {
		return cause // already positioned at the innermost fault
	}
	var ee *ExitError
	if errors.As(cause, &ee) {
		return cause
	}
	t = &Trap{Cause: cause}
	if mc.curFn != nil {
		t.Fn = mc.curFn.Name()
	}
	if mc.curBlock != nil {
		t.Block = mc.curBlock.Name()
	}
	if mc.curInst != nil {
		t.Inst = core.InstDebugString(mc.curInst)
	}
	return t
}

// RunMain looks up "main" and runs it with no arguments, returning its
// integer exit value.
func (mc *Machine) RunMain() (int64, error) {
	return mc.RunMainContext(context.Background())
}

// RunMainContext is RunMain with cooperative cancellation (see RunContext).
func (mc *Machine) RunMainContext(ctx context.Context) (int64, error) {
	f := mc.Mod.Func("main")
	if f == nil {
		return 0, errors.New("interp: no main function")
	}
	args := make([]uint64, len(f.Args))
	v, err := mc.RunContext(ctx, f, args...)
	if err != nil {
		return 0, err
	}
	if f.Sig.Ret == core.VoidType {
		return 0, nil
	}
	return int64(signExtend(f.Sig.Ret, v)), nil
}

// tierNames labels the tier dimension of the engine metrics.
var tierNames = [3]string{"0", "1", "2"}

// call dispatches one activation of f to the machine's execution tier.
// Builtin and translation errors return unpositioned; every executor
// positions faults itself (the interpreter via trapErr at the fault site,
// the translated tiers via their pc side tables), so the position a trap
// reports is identical at every tier.
func (mc *Machine) call(f *core.Function, args []uint64) (uint64, execResult, error) {
	if f.IsDeclaration() {
		if b, ok := mc.builtins[f.Name()]; ok {
			// Errors position at the caller's call site; each executor's
			// error path stamps its own current instruction.
			v, err := b(mc, args)
			return v, resReturn, err
		}
		return 0, resReturn, fmt.Errorf("interp: call to undefined external %%%s", f.Name())
	}
	switch mc.tier {
	case TierBaseline:
		fs := mc.fstate(f)
		fs.calls++
		if err := mc.ensureT1(fs); err != nil {
			return 0, resReturn, err
		}
		mc.tierCalls[1]++
		return mc.execTier1(fs, args)
	case TierOpt:
		fs := mc.fstate(f)
		fs.calls++
		if err := mc.ensureT2(fs); err != nil {
			return 0, resReturn, err
		}
		mc.tierCalls[2]++
		return mc.execTier2(fs, args)
	case TierAuto:
		return mc.autoCall(f, args)
	}
	mc.tierCalls[0]++
	var fs *funcState
	if mc.profiling {
		fs = mc.fstate(f)
		fs.calls++
	}
	return mc.interpCall(f, fs, args)
}

// interpCall runs one tier-0 (tree-walking) activation of f.
func (mc *Machine) interpCall(f *core.Function, fs *funcState, args []uint64) (uint64, execResult, error) {
	if mc.depth >= mc.MaxDepth {
		return 0, resReturn, ErrStackOverflow
	}
	mc.depth++
	prevFn, prevBlock := mc.curFn, mc.curBlock
	mc.curFn = f
	// Restore the caller's block too: without this, a trap in the caller
	// after this call returns would report the callee's last block.
	defer func() { mc.depth--; mc.curFn = prevFn; mc.curBlock = prevBlock }()

	fr := &frame{
		fn:        f,
		vals:      make(map[core.Value]uint64, f.NumInstructions()+len(f.Args)),
		stackMark: mc.stackTop,
		fs:        fs,
	}
	defer func() { mc.stackTop = fr.stackMark }()
	for i, a := range f.Args {
		if i < len(args) {
			fr.vals[a] = args[i]
		}
	}
	if f.Sig.Variadic && len(args) > len(f.Args) {
		fr.vaArgs = args[len(f.Args):]
	}

	block := f.Entry()
	var prev *core.BasicBlock
	for {
		nextBlock, ret, res, err := mc.execBlock(fr, block, prev)
		if err != nil {
			// Wrap before the deferred curFn restore unwinds the position.
			return 0, resReturn, mc.trapErr(err)
		}
		if nextBlock == nil {
			return ret, res, nil
		}
		prev, block = block, nextBlock
	}
}

// operand fetches the raw bits of an operand in a frame.
func (mc *Machine) operand(fr *frame, v core.Value) (uint64, error) {
	switch x := v.(type) {
	case core.Constant:
		switch x.(type) {
		case *core.Function, *core.GlobalVariable:
			return mc.evalConstant(x)
		default:
			return mc.evalConstant(x)
		}
	default:
		val, ok := fr.vals[v]
		if !ok {
			// Uninitialized (undef-like); zero is a legal choice.
			return 0, nil
		}
		return val, nil
	}
}

// execBlock runs block to its terminator. It returns the next block (nil if
// the function is done), the return value, and whether an unwind is in
// progress.
func (mc *Machine) execBlock(fr *frame, b, prev *core.BasicBlock) (*core.BasicBlock, uint64, execResult, error) {
	mc.curBlock = b
	if fr.fs != nil && fr.fs.counts != nil {
		fr.fs.counts[fr.fs.blockIdx[b]]++
	}
	// Phis evaluate simultaneously from the edge's values.
	phis := b.Phis()
	if len(phis) > 0 {
		tmp := make([]uint64, len(phis))
		for i, phi := range phis {
			v := phi.IncomingFor(prev)
			if v == nil {
				return nil, 0, resReturn, fmt.Errorf("interp: phi %%%s has no entry for predecessor", phi.Name())
			}
			val, err := mc.operand(fr, v)
			if err != nil {
				return nil, 0, resReturn, err
			}
			tmp[i] = val
		}
		for i, phi := range phis {
			fr.vals[phi] = tmp[i]
		}
	}

	for _, inst := range b.Instrs[b.FirstNonPhi():] {
		// Attribute budget/cancellation traps to the instruction that was
		// about to execute, exactly like the translated tiers do — the
		// trap position is part of the cross-tier identity contract.
		mc.curInst = inst
		mc.Steps++
		if mc.Steps > mc.MaxSteps {
			return nil, 0, resReturn, ErrMaxSteps
		}
		if mc.ctx != nil && mc.Steps&cancelCheckMask == 0 {
			if cerr := mc.ctx.Err(); cerr != nil {
				return nil, 0, resReturn, fmt.Errorf("%w: %v", ErrCancelled, cerr)
			}
		}
		mc.OpCounts[inst.Opcode()]++

		switch i := inst.(type) {
		case *core.RetInst:
			if i.Value() == nil {
				return nil, 0, resReturn, nil
			}
			v, err := mc.operand(fr, i.Value())
			return nil, v, resReturn, err

		case *core.BranchInst:
			if !i.IsConditional() {
				return i.TrueDest(), 0, resReturn, nil
			}
			c, err := mc.operand(fr, i.Cond())
			if err != nil {
				return nil, 0, resReturn, err
			}
			if c != 0 {
				return i.TrueDest(), 0, resReturn, nil
			}
			return i.FalseDest(), 0, resReturn, nil

		case *core.SwitchInst:
			v, err := mc.operand(fr, i.Value())
			if err != nil {
				return nil, 0, resReturn, err
			}
			dest := i.Default()
			for n := 0; n < i.NumCases(); n++ {
				cv, d := i.Case(n)
				if cv.Val == v {
					dest = d
					break
				}
			}
			return dest, 0, resReturn, nil

		case *core.UnwindInst:
			return nil, 0, resUnwind, nil

		case *core.CallInst:
			v, res, err := mc.execCall(fr, i.Callee(), i.Args())
			if err != nil {
				return nil, 0, resReturn, err
			}
			if res == resUnwind {
				// A call does not stop unwinding: propagate out of this
				// frame too.
				return nil, 0, resUnwind, nil
			}
			if i.Type() != core.VoidType {
				fr.vals[i] = v
			}

		case *core.InvokeInst:
			v, res, err := mc.execCall(fr, i.Callee(), i.Args())
			if err != nil {
				return nil, 0, resReturn, err
			}
			if res == resUnwind {
				// The invoke catches the unwind: control transfers to the
				// unwind label (§2.4).
				return i.UnwindDest(), 0, resReturn, nil
			}
			if i.Type() != core.VoidType {
				fr.vals[i] = v
			}
			return i.NormalDest(), 0, resReturn, nil

		case *core.BinaryInst:
			v, err := mc.execBinary(fr, i)
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = v

		case *core.MallocInst:
			n := uint64(1)
			if ne := i.NumElems(); ne != nil {
				v, err := mc.operand(fr, ne)
				if err != nil {
					return nil, 0, resReturn, err
				}
				n = v
			}
			size, ok := mulNoOverflow(n, uint64(core.SizeOf(i.AllocType)))
			if !ok {
				return nil, 0, resReturn, ErrHeapLimit
			}
			addr, err := mc.Malloc(size)
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = addr

		case *core.AllocaInst:
			n := uint64(1)
			if ne := i.NumElems(); ne != nil {
				v, err := mc.operand(fr, ne)
				if err != nil {
					return nil, 0, resReturn, err
				}
				n = v
			}
			size, ok := mulNoOverflow(n, uint64(core.SizeOf(i.AllocType)))
			if !ok {
				return nil, 0, resReturn, ErrStackOverflow
			}
			addr, err := mc.alloca(size)
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = addr

		case *core.FreeInst:
			p, err := mc.operand(fr, i.Ptr())
			if err != nil {
				return nil, 0, resReturn, err
			}
			if err := mc.Free(p); err != nil {
				return nil, 0, resReturn, err
			}

		case *core.LoadInst:
			p, err := mc.operand(fr, i.Ptr())
			if err != nil {
				return nil, 0, resReturn, err
			}
			v, err := mc.loadBits(p, i.Type())
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = v

		case *core.StoreInst:
			v, err := mc.operand(fr, i.Val())
			if err != nil {
				return nil, 0, resReturn, err
			}
			p, err := mc.operand(fr, i.Ptr())
			if err != nil {
				return nil, 0, resReturn, err
			}
			if err := mc.storeBits(p, i.Val().Type(), v); err != nil {
				return nil, 0, resReturn, err
			}

		case *core.GetElementPtrInst:
			base, err := mc.operand(fr, i.Base())
			if err != nil {
				return nil, 0, resReturn, err
			}
			idx := i.Indices()
			vals := make([]uint64, len(idx))
			for k, ix := range idx {
				v, err := mc.operand(fr, ix)
				if err != nil {
					return nil, 0, resReturn, err
				}
				vals[k] = v
			}
			addr, err := gepAddress(i.Base().Type(), base, idx, vals)
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = addr

		case *core.CastInst:
			v, err := mc.operand(fr, i.Val())
			if err != nil {
				return nil, 0, resReturn, err
			}
			fr.vals[i] = castBits(i.Val().Type(), i.Type(), v)

		case *core.VAArgInst:
			if fr.vaCur < len(fr.vaArgs) {
				fr.vals[i] = fr.vaArgs[fr.vaCur]
				fr.vaCur++
			} else {
				fr.vals[i] = 0
			}

		default:
			return nil, 0, resReturn, fmt.Errorf("interp: unhandled instruction %s", inst.Opcode())
		}
	}
	return nil, 0, resReturn, fmt.Errorf("interp: block %%%s fell off the end", b.Name())
}

// execCall resolves the callee (direct or via function address) and calls.
func (mc *Machine) execCall(fr *frame, callee core.Value, argVals []core.Value) (uint64, execResult, error) {
	args := make([]uint64, len(argVals))
	for k, a := range argVals {
		v, err := mc.operand(fr, a)
		if err != nil {
			return 0, resReturn, err
		}
		args[k] = v
	}
	if f, ok := callee.(*core.Function); ok {
		return mc.call(f, args)
	}
	addr, err := mc.operand(fr, callee)
	if err != nil {
		return 0, resReturn, err
	}
	f, ok := mc.funcAt[addr]
	if !ok {
		return 0, resReturn, ErrBadIndirectCall
	}
	return mc.call(f, args)
}

// execBinary evaluates arithmetic, logic, and comparisons.
func (mc *Machine) execBinary(fr *frame, i *core.BinaryInst) (uint64, error) {
	a, err := mc.operand(fr, i.LHS())
	if err != nil {
		return 0, err
	}
	b, err := mc.operand(fr, i.RHS())
	if err != nil {
		return 0, err
	}
	t := i.LHS().Type()
	op := i.Opcode()

	if core.IsFloatingPoint(t) {
		fa, fb := bitsToFloat(t, a), bitsToFloat(t, b)
		if core.IsComparisonOp(op) {
			r, ok := core.EvalFloatCompare(op, fa, fb)
			if !ok {
				return 0, fmt.Errorf("interp: bad float compare %s", op)
			}
			return boolBits(r), nil
		}
		r, ok := core.EvalFloatBinary(op, t, fa, fb)
		if !ok {
			return 0, fmt.Errorf("interp: bad float op %s", op)
		}
		return floatBits(t, r), nil
	}

	// bool and pointer comparisons / logic use unsigned semantics.
	et := t
	if !core.IsInteger(et) {
		et = core.ULongType
	}
	if core.IsComparisonOp(op) {
		r, ok := core.EvalIntCompare(op, et, a, b)
		if !ok {
			return 0, fmt.Errorf("interp: bad compare %s", op)
		}
		return boolBits(r), nil
	}
	if t.Kind() == core.BoolKind {
		switch op {
		case core.OpAnd:
			return a & b & 1, nil
		case core.OpOr:
			return (a | b) & 1, nil
		case core.OpXor:
			return (a ^ b) & 1, nil
		}
	}
	r, ok := core.EvalIntBinary(op, et, a, b)
	if !ok {
		if op == core.OpDiv || op == core.OpRem {
			return 0, ErrDivideByZero
		}
		return 0, fmt.Errorf("interp: bad int op %s on %s", op, t)
	}
	return r, nil
}

// alloca carves n bytes from the stack arena.
func (mc *Machine) alloca(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	top := (mc.stackTop + 7) &^ 7
	if top+n > uint64(len(mc.stack)) {
		return 0, ErrStackOverflow
	}
	addr := stackBase + top
	// Zero the region: prior frames may have left data behind.
	for i := top; i < top+n; i++ {
		mc.stack[i] = 0
	}
	mc.stackTop = top + n
	return addr, nil
}

// mulNoOverflow multiplies allocation sizes, reporting overflow instead of
// silently wrapping to a small allocation.
func mulNoOverflow(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// GlobalAddr returns the runtime address of a global, for host harnesses.
func (mc *Machine) GlobalAddr(g *core.GlobalVariable) uint64 { return mc.globals[g] }

// FunctionAddr returns the runtime descriptor address of a function.
func (mc *Machine) FunctionAddr(f *core.Function) uint64 { return mc.funcAddrs[f] }

// ReadCString reads a NUL-terminated string at addr (for builtins/tests).
func (mc *Machine) ReadCString(addr uint64) (string, error) {
	var out []byte
	for {
		b, err := mc.mem(addr, 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
		addr++
		if len(out) > 1<<20 {
			return "", errors.New("interp: unterminated string")
		}
	}
}

// ReadWord reads a 64-bit little-endian word from program memory, for host
// harnesses that inspect run results (e.g. reading profile counters).
func (mc *Machine) ReadWord(addr uint64) (uint64, error) {
	return mc.loadBits(addr, core.LongType)
}

// ReadBytes copies n bytes of program memory starting at addr, for host
// harnesses that compare observable memory state (the translation-validation
// oracle reads final global images through this).
func (mc *Machine) ReadBytes(addr uint64, n int) ([]byte, error) {
	b, err := mc.mem(addr, n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// WriteBytes copies b into program memory at addr, for host harnesses that
// prepare argument buffers before a run.
func (mc *Machine) WriteBytes(addr uint64, b []byte) error {
	dst, err := mc.mem(addr, len(b))
	if err != nil {
		return err
	}
	copy(dst, b)
	return nil
}

// TrapKind classifies an execution error by its sentinel: "max-steps",
// "divide-by-zero", "null-deref", ... ("other" for internal faults). It is
// the stable vocabulary the llvm_interp_traps_total metric labels use, and
// the translation-validation oracle compares trap kinds through it.
func TrapKind(err error) string { return trapKindOf(err) }
