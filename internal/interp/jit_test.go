package interp

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

// trapCause strips a trap's position wrapper, leaving the underlying fault.
func trapCause(err error) error {
	var t *Trap
	if errors.As(err, &t) {
		return t.Cause
	}
	return err
}

// runBoth executes src under the interpreter and the JIT and requires
// identical results and output.
func runBoth(t *testing.T, src string, args ...uint64) (uint64, uint64) {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	var out1, out2 bytes.Buffer
	mc1, _ := NewMachine(m, &out1)
	v1, err1 := mc1.RunFunction(m.Func("main"), args...)

	mc2, _ := NewMachine(m, &out2)
	mc2.EnableJIT()
	v2, err2 := mc2.RunFunction(m.Func("main"), args...)

	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("error divergence: interp=%v jit=%v", err1, err2)
	}
	if err1 != nil {
		// Engines must agree on the fault; only the interpreter adds
		// instruction-level position to the trap, so compare causes.
		if trapCause(err1).Error() != trapCause(err2).Error() {
			t.Fatalf("different errors: %v vs %v", err1, err2)
		}
		return 0, 0
	}
	if v1 != v2 {
		t.Fatalf("result divergence: interp=%d jit=%d", v1, v2)
	}
	if out1.String() != out2.String() {
		t.Fatalf("output divergence: %q vs %q", out1.String(), out2.String())
	}
	return v1, mc2Steps(mc2)
}

func mc2Steps(mc *Machine) uint64 { return uint64(mc.Steps) }

func TestJITMatchesInterpreterLoop(t *testing.T) {
	v, _ := runBoth(t, `
int %main(int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%s = phi int [ 0, %entry ], [ %s2, %loop ]
	%s2 = add int %s, %i
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %s2
}
`, 100)
	if int32(v) != 4950 {
		t.Fatalf("got %d", int32(v))
	}
}

func TestJITMatchesInterpreterMemory(t *testing.T) {
	runBoth(t, `
%rec = type { int, long, %rec* }

int %main() {
entry:
	%a = malloc %rec, uint 8
	br label %init
init:
	%i = phi long [ 0, %entry ], [ %i2, %init ]
	%p = getelementptr %rec* %a, long %i, ubyte 0
	%iv = cast long %i to int
	store int %iv, int* %p
	%i2 = add long %i, 1
	%c = setlt long %i2, 8
	br bool %c, label %init, label %sum
sum:
	%j = phi long [ 0, %init ], [ %j2, %sum ]
	%acc = phi int [ 0, %init ], [ %acc2, %sum ]
	%q = getelementptr %rec* %a, long %j, ubyte 0
	%v = load int* %q
	%acc2 = add int %acc, %v
	%j2 = add long %j, 1
	%d = setlt long %j2, 8
	br bool %d, label %sum, label %done
done:
	free %rec* %a
	ret int %acc2
}
`)
}

func TestJITMatchesInterpreterEH(t *testing.T) {
	runBoth(t, `
internal void %deep(int %n) {
entry:
	%z = seteq int %n, 0
	br bool %z, label %throw, label %rec
throw:
	unwind
rec:
	%n1 = sub int %n, 1
	call void %deep(int %n1)
	ret void
}

int %main() {
entry:
	invoke void %deep(int 4) to label %ok unwind to label %caught
ok:
	ret int 1
caught:
	ret int 42
}
`)
}

func TestJITMatchesInterpreterCallsAndBuiltins(t *testing.T) {
	runBoth(t, `
declare int %printf(sbyte*, ...)
%fmt = internal constant [6 x sbyte] c"v=%d \00"
%fp = global int (int)* %helper

internal int %helper(int %x) {
entry:
	%r = mul int %x, 3
	ret int %r
}

int %main() {
entry:
	%f = getelementptr [6 x sbyte]* %fmt, long 0, long 0
	%h = load int (int)** %fp
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%v = call int %h(int %i)
	%p = call int (sbyte*, ...)* %printf(sbyte* %f, int %v)
	%i2 = add int %i, 1
	%c = setlt int %i2, 4
	br bool %c, label %loop, label %done
done:
	ret int %i2
}
`)
}

func TestJITMatchesInterpreterErrors(t *testing.T) {
	// Division by zero must produce the same trap under both engines.
	runBoth(t, `
int %main(int %z) {
entry:
	%v = div int 10, %z
	ret int %v
}
`, 0)
}

func TestJITFloats(t *testing.T) {
	v, _ := runBoth(t, `
int %main() {
entry:
	%a = add double 1.25, 2.5
	%b = mul double %a, 4.0
	%c = setgt double %b, 14.0
	br bool %c, label %yes, label %no
yes:
	%i = cast double %b to int
	ret int %i
no:
	ret int 0
}
`)
	if int32(v) != 15 {
		t.Fatalf("got %d", int32(v))
	}
}

func TestJITSwitch(t *testing.T) {
	src := `
int %main(int %x) {
entry:
	switch int %x, label %d [
		int 1, label %a
		int 5, label %b ]
a:
	ret int 10
b:
	ret int 50
d:
	ret int 99
}
`
	for _, in := range []uint64{1, 5, 7} {
		runBoth(t, src, in)
	}
}

func TestJITVarArgs(t *testing.T) {
	runBoth(t, `
internal int %sum3(int %n, ...) {
entry:
	%ap = alloca sbyte*
	%a = vaarg sbyte** %ap, int
	%b = vaarg sbyte** %ap, int
	%s = add int %a, %b
	ret int %s
}

int %main() {
entry:
	%r = call int (int, ...)* %sum3(int 2, int 30, int 12)
	ret int %r
}
`)
}
