package interp_test

// Cross-tier differential goldens: every execution tier must produce
// bit-identical results — return value, program output, step count, and
// trap (cause and position) — on every example and workload module. The
// tiers share no execution code beyond core's arithmetic helpers, so
// agreement across this corpus pins the tier-2 lowering and executor to
// the interpreter's reference semantics.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/workload"
)

var allTiers = []interp.TierPolicy{interp.TierInterp, interp.TierBaseline, interp.TierOpt, interp.TierAuto}

// tierOutcome is one run's observable behavior.
type tierOutcome struct {
	val   uint64
	out   string
	steps int64
	err   string
}

// describeErr renders an execution error for comparison. Cancellation and
// internal panics are compared by cause only — when they fire depends on
// wall-clock timing, so the instruction they surface at is not
// deterministic. Everything else, step-budget overruns included, carries
// a position that must match exactly across tiers.
func describeErr(err error) string {
	if err == nil {
		return ""
	}
	for _, s := range []error{interp.ErrCancelled, interp.ErrTrap} {
		if errors.Is(err, s) {
			return "cause: " + s.Error()
		}
	}
	return err.Error()
}

// runTier executes m's main at the given tier and captures the outcome.
func runTier(t *testing.T, m *core.Module, p interp.TierPolicy) tierOutcome {
	t.Helper()
	var buf bytesBuffer
	mc, err := interp.NewMachine(m, &buf)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	mc.SetTier(p)
	mc.MaxSteps = 50_000_000
	v, runErr := mc.RunMain()
	return tierOutcome{val: uint64(v), out: buf.String(), steps: mc.Steps, err: describeErr(runErr)}
}

// bytesBuffer avoids importing bytes alongside the dot-heavy import block.
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bytesBuffer) String() string              { return string(w.b) }

// requireTierAgreement runs every tier and fails on any divergence.
func requireTierAgreement(t *testing.T, m *core.Module) {
	t.Helper()
	ref := runTier(t, m, interp.TierInterp)
	for _, p := range allTiers[1:] {
		got := runTier(t, m, p)
		if got != ref {
			t.Errorf("tier %s diverged from interpreter:\n  tier 0: val=%d steps=%d err=%q out=%q\n  tier %s: val=%d steps=%d err=%q out=%q",
				p, ref.val, ref.steps, ref.err, ref.out, p, got.val, got.steps, got.err, got.out)
		}
	}
}

// parseExample loads one .ll example. The module is re-parsed per tier
// caller so machines never share mutable state.
func parseExample(t *testing.T, path string) *core.Module {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := asm.ParseModule(filepath.Base(path), string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return m
}

// TestCrossTierExamples pins all tiers to identical behavior — including
// trap positions — on the checker examples (several of which fault by
// design) and the validation examples.
func TestCrossTierExamples(t *testing.T) {
	var files []string
	for _, dir := range []string{"../../examples/checker", "../../examples/validate"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".ll" {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	}
	if len(files) == 0 {
		t.Fatal("no example modules found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			m := parseExample(t, path)
			if m.Func("main") == nil {
				t.Skipf("%s has no main", path)
			}
			requireTierAgreement(t, m)
		})
	}
}

// compileWorkload builds and links one benchmark's units.
func compileWorkload(t *testing.T, p workload.Profile) *core.Module {
	t.Helper()
	prog := workload.Generate(p)
	var mods []*core.Module
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			t.Fatalf("%s unit %d: %v", p.Name, i, err)
		}
		mods = append(mods, m)
	}
	linked, err := linker.Link(p.Name, mods...)
	if err != nil {
		t.Fatalf("%s link: %v", p.Name, err)
	}
	return linked
}

// TestCrossTierWorkloadSuite runs every SPEC-analogue benchmark at every
// tier, both as front-end output and after the link-time pipeline — and
// runs that pipeline at -j 1 and -j 8, so pass-manager parallelism and
// execution tier can be ruled out as behavior inputs in one matrix.
func TestCrossTierWorkloadSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite at every tier")
	}
	for _, p := range workload.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := compileWorkload(t, p)
			requireTierAgreement(t, m)
			ref := runTier(t, m, interp.TierInterp)

			for _, jobs := range []int{1, 8} {
				opt := compileWorkload(t, p)
				pm := passes.NewPassManager()
				pm.Parallelism = jobs
				pm.Add(passes.NewInternalize())
				pm.AddLinkTimePipeline()
				if _, err := pm.Run(opt); err != nil {
					t.Fatalf("-j %d pipeline: %v", jobs, err)
				}
				requireTierAgreement(t, opt)
				got := runTier(t, opt, interp.TierOpt)
				if got.val != ref.val || got.out != ref.out {
					t.Fatalf("-j %d optimized result diverged: val=%d out=%q, want val=%d out=%q",
						jobs, got.val, got.out, ref.val, ref.out)
				}
			}
		})
	}
}

const tierUpSrc = `
internal int %work(int %x) {
entry:
	%t = mul int %x, 3
	%r = add int %t, 1
	%m = rem int %r, 1000
	ret int %m
}

int %main() {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %inext, %loop ]
	%acc = phi int [ 0, %entry ], [ %accnext, %loop ]
	%w = call int %work(int %i)
	%sum = add int %acc, %w
	%accnext = rem int %sum, 100000
	%inext = add int %i, 1
	%done = setge int %inext, 100
	br bool %done, label %exit, label %loop
exit:
	ret int %accnext
}
`

func parseTierUpModule(t *testing.T) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("tierup", tierUpSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTierUpMidRunIdentity drops the hotness threshold so %work recompiles
// to tier 2 partway through main's loop, and requires the result to be
// identical to a pure interpreter run — promotion between activations must
// be observationally invisible.
func TestTierUpMidRunIdentity(t *testing.T) {
	m := parseTierUpModule(t)
	ref := runTier(t, m, interp.TierInterp)

	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc.SetTier(interp.TierAuto)
	mc.HotCalls = 8 // fires at call 8 of 100, mid-loop
	v, runErr := mc.RunMain()
	if runErr != nil {
		t.Fatalf("auto run: %v", runErr)
	}
	if uint64(v) != ref.val || mc.Steps != ref.steps {
		t.Fatalf("tier-up changed behavior: val=%d steps=%d, want val=%d steps=%d", v, mc.Steps, ref.val, ref.steps)
	}

	st := mc.TierStats()
	if st.TierUps < 1 {
		t.Fatalf("expected at least one mid-run tier-up, got %d", st.TierUps)
	}
	if st.Calls[1] == 0 || st.Calls[2] == 0 {
		t.Fatalf("expected calls at both tier 1 and tier 2, got %v", st.Calls)
	}
	for _, f := range st.Funcs {
		if f.Name == "work" && f.Tier != 2 {
			t.Fatalf("%%work should have settled at tier 2, is at %d", f.Tier)
		}
	}
}

// TestSeedProfileSkipsBaseline feeds the machine a cross-run profile hot
// enough that every function starts at tier 2: the baseline tier is never
// entered and no in-place promotion is counted.
func TestSeedProfileSkipsBaseline(t *testing.T) {
	m := parseTierUpModule(t)
	ref := runTier(t, m, interp.TierInterp)

	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc.SetTier(interp.TierAuto)
	// The shape a lifelong profile.Counts carries: per-block counts with
	// entry blocks far past the call threshold.
	mc.SeedProfile(map[string][]int64{
		"work": {5000, 5000},
		"main": {5000, 5000, 5000},
	})
	v, runErr := mc.RunMain()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if uint64(v) != ref.val {
		t.Fatalf("seeded run diverged: %d vs %d", v, ref.val)
	}
	st := mc.TierStats()
	if st.Calls[1] != 0 || st.Compiles[1] != 0 {
		t.Fatalf("seeded functions should skip the baseline tier entirely: %+v", st)
	}
	if st.TierUps != 0 {
		t.Fatalf("seeded promotion must not count as a tier-up, got %d", st.TierUps)
	}
	if st.Calls[2] == 0 {
		t.Fatal("no tier-2 activations recorded")
	}
}

// TestProgramSharesTranslations attaches one Program to two machines and
// proves the second run reuses the first's translations.
func TestProgramSharesTranslations(t *testing.T) {
	m := parseTierUpModule(t)
	prog := interp.NewProgram(m)

	var vals [2]uint64
	for i := 0; i < 2; i++ {
		mc, err := interp.NewMachine(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		mc.SetTier(interp.TierOpt)
		if err := mc.AttachProgram(prog); err != nil {
			t.Fatal(err)
		}
		v, runErr := mc.RunMain()
		if runErr != nil {
			t.Fatal(runErr)
		}
		vals[i] = uint64(v)
	}
	if vals[0] != vals[1] {
		t.Fatalf("shared-program runs diverged: %d vs %d", vals[0], vals[1])
	}
	st := prog.Stats()
	if st.T2Compiles != 2 { // %work and %main, compiled once each
		t.Fatalf("want 2 tier-2 compiles across both machines, got %d", st.T2Compiles)
	}
	if st.T2Reused < 2 {
		t.Fatalf("second machine should have reused both translations, got %d reuses", st.T2Reused)
	}

	// A program is bound to its module object; attaching elsewhere fails.
	other := parseTierUpModule(t)
	mc, err := interp.NewMachine(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.AttachProgram(prog); err == nil {
		t.Fatal("attaching a program to a different module should fail")
	}
}

// TestTierEnvOverride checks the LLVM_INTERP_TIER escape hatch the CI
// matrix uses.
func TestTierEnvOverride(t *testing.T) {
	t.Setenv("LLVM_INTERP_TIER", "2")
	m := parseTierUpModule(t)
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Tier() != interp.TierOpt {
		t.Fatalf("env override ignored: tier %s", mc.Tier())
	}
}

func TestParseTierPolicy(t *testing.T) {
	for in, want := range map[string]interp.TierPolicy{
		"0": interp.TierInterp, "interp": interp.TierInterp,
		"1": interp.TierBaseline, "baseline": interp.TierBaseline, "jit": interp.TierBaseline,
		"2": interp.TierOpt, "opt": interp.TierOpt,
		"auto": interp.TierAuto,
	} {
		got, ok := interp.ParseTierPolicy(in)
		if !ok || got != want {
			t.Errorf("ParseTierPolicy(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := interp.ParseTierPolicy("fast"); ok {
		t.Error("bogus policy accepted")
	}
}

// TestCrossTierStepLimitTraps sweeps tight step budgets over a looping
// module and requires every tier to trap with the same message — position
// included. A budget of n traps at the (n+1)-th executed instruction, so
// the sweep lands the overrun on many different instructions: mid-block,
// on terminators, and inside the callee. All tiers must attribute the
// trap to the instruction that was about to execute.
func TestCrossTierStepLimitTraps(t *testing.T) {
	for _, budget := range []int64{1, 2, 3, 5, 8, 13, 21, 100, 101, 1000} {
		m := parseTierUpModule(t)
		run := func(p interp.TierPolicy) tierOutcome {
			mc, err := interp.NewMachine(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			mc.SetTier(p)
			mc.MaxSteps = budget
			if p == interp.TierAuto {
				mc.HotCalls = 2 // promote early so tier 2 sees the overrun
			}
			v, runErr := mc.RunMain()
			if runErr == nil || !errors.Is(runErr, interp.ErrMaxSteps) {
				t.Fatalf("budget %d tier %s: want step-limit trap, got %v", budget, p, runErr)
			}
			return tierOutcome{val: uint64(v), steps: mc.Steps, err: runErr.Error()}
		}
		ref := run(interp.TierInterp)
		for _, p := range allTiers[1:] {
			if got := run(p); got != ref {
				t.Errorf("budget %d: tier %s diverged:\n  tier 0: %+v\n  tier %s: %+v", budget, p, ref, p, got)
			}
		}
	}
}
