package interp

import (
	"fmt"

	"repro/internal/core"
)

// execTier1 runs one activation of the baseline translation fs.t1.
func (mc *Machine) execTier1(fs *funcState, args []uint64) (rv uint64, res execResult, err error) {
	jf := fs.t1
	if mc.depth >= mc.MaxDepth {
		// Plain sentinel: the caller positions it at its call site.
		return 0, resReturn, ErrStackOverflow
	}
	mc.depth++
	prevFn := mc.curFn
	mc.curFn = jf.fn
	stackMark := mc.stackTop

	cur := int32(0)
	var ci *jinstr // instruction being executed, for trap positions
	defer func() {
		mc.stackTop = stackMark
		mc.curFn = prevFn
		mc.depth--
		if err != nil {
			var src core.Instruction
			if ci != nil {
				src = ci.src
			}
			err = positionErr(err, jf.fn, jf.fn.Blocks[cur], src)
		}
	}()

	regs := make([]uint64, jf.nSlots)
	copy(regs, args)
	var vaArgs []uint64
	if jf.fn.Sig.Variadic && len(args) > jf.nArgs {
		vaArgs = args[jf.nArgs:]
	}
	vaCur := 0

	rd := func(op joperand) uint64 {
		if op.isConst {
			return op.bits
		}
		return regs[op.slot]
	}

	counts := fs.counts
	prev := int32(-1)
	var phiTmp []uint64
	for {
		blk := jf.blocks[cur]
		// φ copies for the edge prev→cur, evaluated simultaneously.
		if prev >= 0 {
			if e := blk.phiFrom[prev]; e != nil {
				if cap(phiTmp) < len(e.srcs) {
					phiTmp = make([]uint64, len(e.srcs))
				}
				tmp := phiTmp[:len(e.srcs)]
				for i, s := range e.srcs {
					tmp[i] = rd(s)
				}
				for i, d := range e.dsts {
					regs[d] = tmp[i]
				}
			}
		}
		if counts != nil {
			counts[cur]++
		}

		for k := range blk.instrs {
			ji := &blk.instrs[k]
			ci = ji
			mc.Steps++
			if mc.Steps > mc.MaxSteps {
				return 0, resReturn, ErrMaxSteps
			}
			if mc.ctx != nil && mc.Steps&cancelCheckMask == 0 {
				if cerr := mc.ctx.Err(); cerr != nil {
					return 0, resReturn, fmt.Errorf("%w: %v", ErrCancelled, cerr)
				}
			}

			switch ji.kind {
			case jIntBin:
				r, ok := core.EvalIntBinary(ji.op, ji.ty, rd(ji.a), rd(ji.b))
				if !ok {
					return 0, resReturn, ErrDivideByZero
				}
				regs[ji.dst] = r
			case jIntCmp:
				r, _ := core.EvalIntCompare(ji.op, ji.ty, rd(ji.a), rd(ji.b))
				regs[ji.dst] = boolBits(r)
			case jFloatBin:
				r, _ := core.EvalFloatBinary(ji.op, ji.ty, bitsToFloat(ji.ty, rd(ji.a)), bitsToFloat(ji.ty, rd(ji.b)))
				regs[ji.dst] = floatBits(ji.ty, r)
			case jFloatCmp:
				r, _ := core.EvalFloatCompare(ji.op, bitsToFloat(ji.ty, rd(ji.a)), bitsToFloat(ji.ty, rd(ji.b)))
				regs[ji.dst] = boolBits(r)
			case jBoolLogic:
				a, b := rd(ji.a), rd(ji.b)
				switch ji.op {
				case core.OpAnd:
					regs[ji.dst] = a & b & 1
				case core.OpOr:
					regs[ji.dst] = (a | b) & 1
				default:
					regs[ji.dst] = (a ^ b) & 1
				}
			case jLoad:
				v, err := mc.loadBits(rd(ji.a), ji.ty)
				if err != nil {
					return 0, resReturn, err
				}
				regs[ji.dst] = v
			case jStore:
				if err := mc.storeBits(rd(ji.b), ji.ty, rd(ji.a)); err != nil {
					return 0, resReturn, err
				}
			case jGEP:
				addr := int64(rd(ji.a)) + ji.constOff
				for _, t := range ji.terms {
					addr += int64(signExtend(t.signed, rd(t.idx))) * t.scale
				}
				regs[ji.dst] = uint64(addr)
			case jCast:
				regs[ji.dst] = castBits(ji.tySrc, ji.ty, rd(ji.a))
			case jMallocFixed:
				a, err := mc.Malloc(ji.size)
				if err != nil {
					return 0, resReturn, err
				}
				regs[ji.dst] = a
			case jMallocVar:
				size, ok := mulNoOverflow(ji.size, rd(ji.a))
				if !ok {
					return 0, resReturn, ErrHeapLimit
				}
				a, err := mc.Malloc(size)
				if err != nil {
					return 0, resReturn, err
				}
				regs[ji.dst] = a
			case jAllocaFixed:
				a, err := mc.alloca(ji.size)
				if err != nil {
					return 0, resReturn, err
				}
				regs[ji.dst] = a
			case jAllocaVar:
				size, ok := mulNoOverflow(ji.size, rd(ji.a))
				if !ok {
					return 0, resReturn, ErrStackOverflow
				}
				a, err := mc.alloca(size)
				if err != nil {
					return 0, resReturn, err
				}
				regs[ji.dst] = a
			case jFree:
				if err := mc.Free(rd(ji.a)); err != nil {
					return 0, resReturn, err
				}
			case jVAArg:
				if vaCur < len(vaArgs) {
					regs[ji.dst] = vaArgs[vaCur]
					vaCur++
				} else if ji.dst >= 0 {
					regs[ji.dst] = 0
				}

			case jCallDirect, jCallIndirect, jInvokeDirect, jInvokeIndirect:
				mark := len(mc.argBuf)
				for _, a := range ji.args {
					mc.argBuf = append(mc.argBuf, rd(a))
				}
				target := ji.target
				if ji.kind == jCallIndirect || ji.kind == jInvokeIndirect {
					f, ok := mc.funcAt[rd(ji.a)]
					if !ok {
						mc.argBuf = mc.argBuf[:mark]
						return 0, resReturn, ErrBadIndirectCall
					}
					target = f
				}
				v, res, err := mc.call(target, mc.argBuf[mark:])
				mc.argBuf = mc.argBuf[:mark]
				if err != nil {
					return 0, resReturn, err
				}
				isInvoke := ji.kind == jInvokeDirect || ji.kind == jInvokeIndirect
				if res == resUnwind {
					if !isInvoke {
						return 0, resUnwind, nil
					}
					prev, cur = cur, ji.t2
					goto nextBlock
				}
				if ji.dst >= 0 {
					regs[ji.dst] = v
				}
				if isInvoke {
					prev, cur = cur, ji.t1
					goto nextBlock
				}

			case jRet:
				return rd(ji.a), resReturn, nil
			case jRetVoid:
				return 0, resReturn, nil
			case jBr:
				prev, cur = cur, ji.t1
				goto nextBlock
			case jCondBr:
				if rd(ji.a) != 0 {
					prev, cur = cur, ji.t1
				} else {
					prev, cur = cur, ji.t2
				}
				goto nextBlock
			case jSwitch:
				if t, ok := ji.cases[rd(ji.a)]; ok {
					prev, cur = cur, t
				} else {
					prev, cur = cur, ji.t1
				}
				goto nextBlock
			case jUnwind:
				// Stamp the position for a possible ErrUncaughtUnwind at the
				// top level, matching the interpreter's cursor.
				mc.curBlock = jf.fn.Blocks[cur]
				mc.curInst = ji.src
				return 0, resUnwind, nil
			default:
				return 0, resReturn, fmt.Errorf("interp: bad JIT instruction kind %d", ji.kind)
			}
		}
		return 0, resReturn, fmt.Errorf("interp: JIT block fell off the end in %%%s", jf.fn.Name())

	nextBlock:
	}
}
