package interp_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/workload"
)

// benchModule compiles and links one mid-sized suite benchmark for the
// tier microbenchmarks.
func benchModule(b *testing.B) *core.Module {
	b.Helper()
	var p workload.Profile
	for _, q := range workload.Suite() {
		if q.Name == "254.gap" {
			p = q
		}
	}
	prog := workload.Generate(p)
	var mods []*core.Module
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			b.Fatal(err)
		}
		mods = append(mods, m)
	}
	m, err := linker.Link(p.Name, mods...)
	if err != nil {
		b.Fatal(err)
	}
	// Optimize like the evaluation does, so the loop measures the tiers
	// on the code shape they actually execute in the reported numbers.
	pm := passes.NewPassManager()
	pm.Add(passes.NewInternalize())
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(m); err != nil {
		b.Fatal(err)
	}
	return m
}

// benchTier runs main to completion once per iteration at the given
// policy, sharing one translation cache across iterations so the loop
// measures steady-state execution, not translation.
func benchTier(b *testing.B, policy interp.TierPolicy) {
	m := benchModule(b)
	prog := interp.NewProgram(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Machine setup allocates the whole 4MB stack; pay its GC debt
		// outside the timed region so the loop measures execution.
		b.StopTimer()
		mc, err := interp.NewMachine(m, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		mc.SetTier(policy)
		mc.MaxSteps = 1 << 40
		if err := mc.AttachProgram(prog); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.StartTimer()
		if _, err := mc.RunMain(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierInterp(b *testing.B)   { benchTier(b, interp.TierInterp) }
func BenchmarkTierBaseline(b *testing.B) { benchTier(b, interp.TierBaseline) }
func BenchmarkTierOpt(b *testing.B)      { benchTier(b, interp.TierOpt) }
