package interp

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// registerStdBuiltins installs the standard external functions a C-style
// front-end runtime expects: printf/puts/putchar for output, abort/exit,
// and a few libc helpers (strlen, memset, memcpy, abs, rand).
func registerStdBuiltins(mc *Machine) {
	mc.RegisterBuiltin("printf", builtinPrintf)
	mc.RegisterBuiltin("puts", func(m *Machine, args []uint64) (uint64, error) {
		if len(args) < 1 {
			return 0, fmt.Errorf("puts: missing argument")
		}
		s, err := m.ReadCString(args[0])
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(m.Out, s)
		return uint64(len(s) + 1), nil
	})
	mc.RegisterBuiltin("putchar", func(m *Machine, args []uint64) (uint64, error) {
		if len(args) < 1 {
			return 0, fmt.Errorf("putchar: missing argument")
		}
		fmt.Fprintf(m.Out, "%c", byte(args[0]))
		return args[0], nil
	})
	mc.RegisterBuiltin("abort", func(m *Machine, args []uint64) (uint64, error) {
		return 0, fmt.Errorf("interp: program called abort")
	})
	mc.RegisterBuiltin("__bounds_check_fail", func(m *Machine, args []uint64) (uint64, error) {
		e := &BoundsError{}
		if len(args) > 0 {
			e.Index = int64(args[0])
		}
		if len(args) > 1 {
			e.Limit = int64(args[1])
		}
		return 0, e
	})
	mc.RegisterBuiltin("exit", func(m *Machine, args []uint64) (uint64, error) {
		code := int64(0)
		if len(args) > 0 {
			code = int64(int32(args[0]))
		}
		return 0, &ExitError{Code: code}
	})
	mc.RegisterBuiltin("strlen", func(m *Machine, args []uint64) (uint64, error) {
		s, err := m.ReadCString(args[0])
		if err != nil {
			return 0, err
		}
		return uint64(len(s)), nil
	})
	mc.RegisterBuiltin("memset", func(m *Machine, args []uint64) (uint64, error) {
		dst, val, n := args[0], byte(args[1]), args[2]
		b, err := m.mem(dst, int(n))
		if err != nil {
			return 0, err
		}
		for i := range b {
			b[i] = val
		}
		return dst, nil
	})
	mc.RegisterBuiltin("memcpy", func(m *Machine, args []uint64) (uint64, error) {
		dst, src, n := args[0], args[1], args[2]
		db, err := m.mem(dst, int(n))
		if err != nil {
			return 0, err
		}
		sb, err := m.mem(src, int(n))
		if err != nil {
			return 0, err
		}
		copy(db, sb)
		return dst, nil
	})
	mc.RegisterBuiltin("abs", func(m *Machine, args []uint64) (uint64, error) {
		v := int32(args[0])
		if v < 0 {
			v = -v
		}
		return uint64(uint32(v)), nil
	})
	// Deterministic linear congruential rand, so runs are reproducible.
	var seed uint64 = 0x2545F4914F6CDD1D
	mc.RegisterBuiltin("rand", func(m *Machine, args []uint64) (uint64, error) {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) & 0x7FFFFFFF, nil
	})
	mc.RegisterBuiltin("srand", func(m *Machine, args []uint64) (uint64, error) {
		if len(args) > 0 {
			seed = args[0] ^ 0x2545F4914F6CDD1D
		}
		return 0, nil
	})
}

// BoundsError reports a failed SAFECode-style bounds check.
type BoundsError struct{ Index, Limit int64 }

// Error describes the violation.
func (e *BoundsError) Error() string {
	return fmt.Sprintf("interp: array index %d out of bounds (limit %d)", e.Index, e.Limit)
}

// ExitError reports a program's explicit exit().
type ExitError struct{ Code int64 }

// Error describes the exit.
func (e *ExitError) Error() string { return fmt.Sprintf("interp: program exited with code %d", e.Code) }

// builtinPrintf implements the printf subset front-ends emit: %d %u %c %s
// %x %f %g %ld %lu %% with optional width. Arguments are raw bits; integer
// conversions assume the C front-end widened them appropriately.
func builtinPrintf(m *Machine, args []uint64) (uint64, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("printf: missing format")
	}
	format, err := m.ReadCString(args[0])
	if err != nil {
		return 0, err
	}
	var out strings.Builder
	argi := 1
	nextArg := func() uint64 {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return 0
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			out.WriteByte(c)
			i++
			continue
		}
		// Parse %[-][width][.prec][l]verb
		j := i + 1
		spec := "%"
		for j < len(format) && (format[j] == '-' || format[j] == '0' ||
			(format[j] >= '1' && format[j] <= '9') || format[j] == '.') {
			spec += string(format[j])
			j++
		}
		long := false
		for j < len(format) && format[j] == 'l' {
			long = true
			j++
		}
		if j >= len(format) {
			out.WriteString(spec)
			break
		}
		verb := format[j]
		switch verb {
		case '%':
			out.WriteByte('%')
		case 'd', 'i':
			v := nextArg()
			var sv int64
			if long {
				sv = int64(v)
			} else {
				sv = int64(int32(v))
			}
			fmt.Fprintf(&out, spec+"d", sv)
		case 'u':
			v := nextArg()
			if !long {
				v = uint64(uint32(v))
			}
			fmt.Fprintf(&out, spec+"d", v)
		case 'x':
			v := nextArg()
			if !long {
				v = uint64(uint32(v))
			}
			fmt.Fprintf(&out, spec+"x", v)
		case 'c':
			fmt.Fprintf(&out, spec+"c", rune(byte(nextArg())))
		case 's':
			s, err := m.ReadCString(nextArg())
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(&out, spec+"s", s)
		case 'f', 'g', 'e':
			f := bitsToFloat(core.DoubleType, nextArg())
			fmt.Fprintf(&out, spec+string(verb), f)
		case 'p':
			fmt.Fprintf(&out, "0x%x", nextArg())
		default:
			out.WriteString(spec)
			out.WriteByte(verb)
		}
		i = j + 1
	}
	s := out.String()
	fmt.Fprint(m.Out, s)
	return uint64(len(s)), nil
}
