package interp

// The optimizing execution tier: runs the flat, register-allocated form
// produced by codegen.LowerExec in one tight pc-indexed dispatch loop.
// Compared to the baseline tier there is no per-block dispatch, no
// per-operand const-vs-slot test, no φ evaluation at block entry (edges
// carry pre-sequentialized copies), and no per-activation allocation
// (frames are recycled per function). Opcodes are width-specialized at
// lowering time, so the loop does no type dispatch at all.
//
// Every arm mirrors the interpreter's semantics exactly — raw operate
// then mask for arithmetic (core.EvalIntBinary), truncate-then-compare
// for comparisons (core.EvalIntCompare) — so results, output, traps, and
// trap positions are bit-identical to tiers 0 and 1 even for
// non-canonical inputs (caller-supplied argument bits, bools loaded from
// punned memory).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
)

// execTier2 runs one activation of fs.t2.
func (mc *Machine) execTier2(fs *funcState, args []uint64) (rv uint64, res execResult, err error) {
	ef := fs.t2
	if mc.depth >= mc.MaxDepth {
		// Plain sentinel: the caller positions it at its call site, like
		// the interpreter does.
		return 0, resReturn, ErrStackOverflow
	}
	mc.depth++
	prevFn := mc.curFn
	mc.curFn = ef.Fn
	stackMark := mc.stackTop

	regs := fs.getFrame()
	if n := len(args); n > ef.NumArgs {
		copy(regs, args[:ef.NumArgs])
	} else {
		copy(regs, args)
		// A shortfall reads as zero, like the interpreter's missing
		// value-map entries; recycled frames are otherwise not cleared.
		clear(regs[n:ef.NumArgs])
	}
	var vaArgs []uint64
	if ef.Variadic && len(args) > ef.NumArgs {
		vaArgs = args[ef.NumArgs:]
	}
	vaCur := 0

	code := ef.Code
	counts := fs.counts
	steps := mc.Steps
	maxSteps := mc.MaxSteps
	ctx := mc.ctx
	pc := 0

	defer func() {
		mc.Steps = steps
		fs.putFrame(regs)
		mc.stackTop = stackMark
		mc.curFn = prevFn
		mc.depth--
		if err != nil {
			err = positionErr(err, ef.Fn, ef.Fn.Blocks[ef.BlockOf[pc]], ef.SrcOf[pc])
		}
	}()

	for {
		in := &code[pc]
		// Synthetic ops (ECount/EPhiMov/EJmp) do not count as executed
		// instructions; everything else steps exactly like the interpreter.
		if in.Op > codegen.EJmp {
			steps++
			if steps > maxSteps {
				return 0, resReturn, ErrMaxSteps
			}
			if ctx != nil && steps&cancelCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return 0, resReturn, fmt.Errorf("%w: %v", ErrCancelled, cerr)
				}
			}
		}

		switch in.Op {
		case codegen.ECount:
			if counts != nil {
				counts[in.Imm]++
			}
		case codegen.EPhiMov, codegen.EMov:
			regs[in.Dst] = regs[in.A]
		case codegen.EJmp:
			pc = int(in.Imm)
			continue

		case codegen.EAdd64:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case codegen.EAddM:
			regs[in.Dst] = (regs[in.A] + regs[in.B]) & uint64(in.Imm)
		case codegen.ESub64:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case codegen.ESubM:
			regs[in.Dst] = (regs[in.A] - regs[in.B]) & uint64(in.Imm)
		case codegen.EMul64:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case codegen.EMulM:
			regs[in.Dst] = (regs[in.A] * regs[in.B]) & uint64(in.Imm)
		case codegen.EAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B] & uint64(in.Imm)
		case codegen.EOr:
			regs[in.Dst] = (regs[in.A] | regs[in.B]) & uint64(in.Imm)
		case codegen.EXor:
			regs[in.Dst] = (regs[in.A] ^ regs[in.B]) & uint64(in.Imm)

		case codegen.EShl:
			sh := regs[in.B] & 0xFF
			if sh >= uint64(uint32(in.Aux)) {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = (regs[in.A] << sh) & uint64(in.Imm)
			}
		case codegen.EShrU:
			sh := regs[in.B] & 0xFF
			if sh >= uint64(uint32(in.Aux)) {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = (regs[in.A] >> sh) & uint64(in.Imm)
			}
		case codegen.EShrS:
			sh := regs[in.B] & 0xFF
			if sh >= 64 {
				sh = 63
			}
			ext := uint(uint32(in.Aux))
			regs[in.Dst] = uint64((int64(regs[in.A]<<ext)>>ext)>>sh) & uint64(in.Imm)

		case codegen.EDivU:
			b := regs[in.B]
			if b == 0 {
				return 0, resReturn, ErrDivideByZero
			}
			regs[in.Dst] = (regs[in.A] / b) & uint64(in.Imm)
		case codegen.EDivS:
			b := regs[in.B]
			if b == 0 {
				return 0, resReturn, ErrDivideByZero
			}
			ext := uint(uint32(in.Aux))
			sa := int64(regs[in.A]<<ext) >> ext
			sb := int64(b<<ext) >> ext
			regs[in.Dst] = uint64(sa/sb) & uint64(in.Imm)
		case codegen.ERemU:
			b := regs[in.B]
			if b == 0 {
				return 0, resReturn, ErrDivideByZero
			}
			regs[in.Dst] = (regs[in.A] % b) & uint64(in.Imm)
		case codegen.ERemS:
			b := regs[in.B]
			if b == 0 {
				return 0, resReturn, ErrDivideByZero
			}
			ext := uint(uint32(in.Aux))
			sa := int64(regs[in.A]<<ext) >> ext
			sb := int64(b<<ext) >> ext
			regs[in.Dst] = uint64(sa%sb) & uint64(in.Imm)

		case codegen.ECmpEq:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) == regs[in.B]&uint64(in.Imm))
		case codegen.ECmpNe:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) != regs[in.B]&uint64(in.Imm))
		case codegen.ECmpULt:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) < regs[in.B]&uint64(in.Imm))
		case codegen.ECmpUGt:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) > regs[in.B]&uint64(in.Imm))
		case codegen.ECmpULe:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) <= regs[in.B]&uint64(in.Imm))
		case codegen.ECmpUGe:
			regs[in.Dst] = boolBits(regs[in.A]&uint64(in.Imm) >= regs[in.B]&uint64(in.Imm))
		case codegen.ECmpSLt:
			sh := uint(in.Imm)
			regs[in.Dst] = boolBits(int64(regs[in.A]<<sh)>>sh < int64(regs[in.B]<<sh)>>sh)
		case codegen.ECmpSGt:
			sh := uint(in.Imm)
			regs[in.Dst] = boolBits(int64(regs[in.A]<<sh)>>sh > int64(regs[in.B]<<sh)>>sh)
		case codegen.ECmpSLe:
			sh := uint(in.Imm)
			regs[in.Dst] = boolBits(int64(regs[in.A]<<sh)>>sh <= int64(regs[in.B]<<sh)>>sh)
		case codegen.ECmpSGe:
			sh := uint(in.Imm)
			regs[in.Dst] = boolBits(int64(regs[in.A]<<sh)>>sh >= int64(regs[in.B]<<sh)>>sh)

		case codegen.EFBin:
			t := ef.Types[in.Aux]
			r, ok := core.EvalFloatBinary(core.Opcode(in.Imm), t, bitsToFloat(t, regs[in.A]), bitsToFloat(t, regs[in.B]))
			if !ok {
				return 0, resReturn, fmt.Errorf("interp: bad float op %s", core.Opcode(in.Imm))
			}
			regs[in.Dst] = floatBits(t, r)
		case codegen.EFCmp:
			t := ef.Types[in.Aux]
			r, _ := core.EvalFloatCompare(core.Opcode(in.Imm), bitsToFloat(t, regs[in.A]), bitsToFloat(t, regs[in.B]))
			regs[in.Dst] = boolBits(r)

		case codegen.ECastTrunc:
			regs[in.Dst] = regs[in.A] & uint64(in.Imm)
		case codegen.ECastSext:
			sh := uint(uint32(in.B))
			regs[in.Dst] = uint64(int64(regs[in.A]<<sh)>>sh) & uint64(in.Imm)
		case codegen.ECastBool:
			regs[in.Dst] = boolBits(regs[in.A] != 0)
		case codegen.ECastGen:
			p := ef.Casts[in.Aux]
			regs[in.Dst] = castBits(p.From, p.To, regs[in.A])

		case codegen.ELoad1:
			b, lerr := mc.mem(regs[in.A], 1)
			if lerr != nil {
				return 0, resReturn, lerr
			}
			regs[in.Dst] = uint64(b[0])
		case codegen.ELoad2:
			b, lerr := mc.mem(regs[in.A], 2)
			if lerr != nil {
				return 0, resReturn, lerr
			}
			regs[in.Dst] = uint64(binary.LittleEndian.Uint16(b))
		case codegen.ELoad4:
			b, lerr := mc.mem(regs[in.A], 4)
			if lerr != nil {
				return 0, resReturn, lerr
			}
			regs[in.Dst] = uint64(binary.LittleEndian.Uint32(b))
		case codegen.ELoad8:
			b, lerr := mc.mem(regs[in.A], 8)
			if lerr != nil {
				return 0, resReturn, lerr
			}
			regs[in.Dst] = binary.LittleEndian.Uint64(b)
		case codegen.EStore1:
			b, serr := mc.mem(regs[in.B], 1)
			if serr != nil {
				return 0, resReturn, serr
			}
			b[0] = byte(regs[in.A])
		case codegen.EStore2:
			b, serr := mc.mem(regs[in.B], 2)
			if serr != nil {
				return 0, resReturn, serr
			}
			binary.LittleEndian.PutUint16(b, uint16(regs[in.A]))
		case codegen.EStore4:
			b, serr := mc.mem(regs[in.B], 4)
			if serr != nil {
				return 0, resReturn, serr
			}
			binary.LittleEndian.PutUint32(b, uint32(regs[in.A]))
		case codegen.EStore8:
			b, serr := mc.mem(regs[in.B], 8)
			if serr != nil {
				return 0, resReturn, serr
			}
			binary.LittleEndian.PutUint64(b, regs[in.A])

		case codegen.EGepC:
			regs[in.Dst] = uint64(int64(regs[in.A]) + in.Imm)
		case codegen.EGep:
			addr := int64(regs[in.A]) + in.Imm
			for _, t := range ef.Geps[in.Aux] {
				v := regs[t.Reg]
				if t.Shift != 0 {
					v = uint64(int64(v<<t.Shift) >> t.Shift)
				}
				addr += int64(v) * t.Scale
			}
			regs[in.Dst] = uint64(addr)

		case codegen.EMallocF:
			a, merr := mc.Malloc(uint64(in.Imm))
			if merr != nil {
				return 0, resReturn, merr
			}
			regs[in.Dst] = a
		case codegen.EMallocV:
			size, ok := mulNoOverflow(uint64(in.Imm), regs[in.A])
			if !ok {
				return 0, resReturn, ErrHeapLimit
			}
			a, merr := mc.Malloc(size)
			if merr != nil {
				return 0, resReturn, merr
			}
			regs[in.Dst] = a
		case codegen.EAllocaF:
			a, aerr := mc.alloca(uint64(in.Imm))
			if aerr != nil {
				return 0, resReturn, aerr
			}
			regs[in.Dst] = a
		case codegen.EAllocaV:
			size, ok := mulNoOverflow(uint64(in.Imm), regs[in.A])
			if !ok {
				return 0, resReturn, ErrStackOverflow
			}
			a, aerr := mc.alloca(size)
			if aerr != nil {
				return 0, resReturn, aerr
			}
			regs[in.Dst] = a
		case codegen.EFree:
			if ferr := mc.Free(regs[in.A]); ferr != nil {
				return 0, resReturn, ferr
			}

		case codegen.EVAArg:
			if vaCur < len(vaArgs) {
				regs[in.Dst] = vaArgs[vaCur]
				vaCur++
			} else if in.Dst >= 0 {
				regs[in.Dst] = 0
			}

		case codegen.ECall:
			site := &ef.Calls[in.Aux]
			mark := len(mc.argBuf)
			for _, r := range site.Args {
				mc.argBuf = append(mc.argBuf, regs[r])
			}
			target := site.Target
			if target == nil {
				f, ok := mc.funcAt[regs[site.Callee]]
				if !ok {
					mc.argBuf = mc.argBuf[:mark]
					return 0, resReturn, ErrBadIndirectCall
				}
				target = f
			}
			mc.Steps = steps
			v, cres, cerr := mc.call(target, mc.argBuf[mark:])
			steps = mc.Steps
			mc.argBuf = mc.argBuf[:mark]
			if cerr != nil {
				return 0, resReturn, cerr
			}
			if cres == resUnwind {
				if !site.Invoke {
					return 0, resUnwind, nil
				}
				pc = int(site.Unwind)
				continue
			}
			if in.Dst >= 0 {
				regs[in.Dst] = v
			}
			if site.Invoke {
				pc = int(site.Normal)
				continue
			}

		case codegen.ERet:
			return regs[in.A], resReturn, nil
		case codegen.ERetVoid:
			return 0, resReturn, nil
		case codegen.EBr:
			pc = int(in.Imm)
			continue
		case codegen.ECondBr:
			if regs[in.A] != 0 {
				pc = int(in.Imm)
			} else {
				pc = int(in.Aux)
			}
			continue
		case codegen.ESwitch:
			tab := &ef.Switches[in.Aux]
			v := regs[in.A]
			pc = int(in.Imm)
			vals := tab.Vals
			lo, hi := 0, len(vals)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if vals[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(vals) && vals[lo] == v {
				pc = int(tab.Pcs[lo])
			}
			continue
		case codegen.EUnwind:
			// Stamp the position for a possible ErrUncaughtUnwind at the
			// top level, exactly where the interpreter leaves its cursor.
			mc.curBlock = ef.Fn.Blocks[ef.BlockOf[pc]]
			mc.curInst = ef.SrcOf[pc]
			return 0, resUnwind, nil

		default:
			return 0, resReturn, fmt.Errorf("interp: bad tier-2 opcode %d", in.Op)
		}
		pc++
	}
}
