package interp

// Tier policy and per-function tier state for the execution engine's
// tiered design (§3.4/§3.6): tier 0 is the tree-walking interpreter,
// tier 1 the baseline slot-register translation (jit.go), tier 2 the
// optimizing flat register-allocated form (codegen/execlower.go, run by
// tier2.go). Under TierAuto, per-function call and step counters trip a
// hotness threshold that recompiles the function to tier 2 in place
// mid-run — safe to do between activations because all tiers are
// bit-identical — and cross-run profile counts (SeedProfile) mark
// functions hot at start so warm paths skip the baseline tier entirely.

import (
	"errors"
	"sort"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
)

// TierPolicy selects how the machine executes function bodies.
type TierPolicy int8

const (
	// TierInterp (the zero value) is the portable tree-walking
	// interpreter: every instruction type-switched, values in per-frame
	// maps. Slowest, and the reference semantics.
	TierInterp TierPolicy = iota
	// TierBaseline forces the baseline translation: per-function slot
	// registers, pre-resolved constants, per-block dispatch.
	TierBaseline
	// TierOpt forces the optimizing tier: flat pc-indexed code, dense
	// register file, φs as edge copies, width-specialized opcodes.
	TierOpt
	// TierAuto starts functions at the baseline tier and promotes them to
	// the optimizing tier once profile counters cross the hotness
	// thresholds (HotCalls / HotTicks), or immediately when seeded hot.
	TierAuto
)

// ParseTierPolicy reads the llvm-run/-serve tier spelling: "0", "1", "2",
// or "auto".
func ParseTierPolicy(s string) (TierPolicy, bool) {
	switch s {
	case "0", "interp":
		return TierInterp, true
	case "1", "baseline", "jit":
		return TierBaseline, true
	case "2", "opt":
		return TierOpt, true
	case "auto":
		return TierAuto, true
	}
	return TierInterp, false
}

func (p TierPolicy) String() string {
	switch p {
	case TierBaseline:
		return "1"
	case TierOpt:
		return "2"
	case TierAuto:
		return "auto"
	}
	return "0"
}

// Default hotness thresholds: a function tiers up after this many calls,
// or once this many instructions have been executed inside it (inclusive
// of callees).
const (
	DefaultHotCalls = 32
	DefaultHotTicks = 4096
)

// Established per-function tier under TierAuto.
const (
	tierT0 int8 = iota
	tierT1
	tierT2
)

// funcState is the per-(machine, function) execution state: translations,
// profile counters, and the tier-2 frame freelist.
type funcState struct {
	fn   *core.Function
	tier int8 // current tier under TierAuto
	// seedHot marks the function hot from a persisted cross-run profile:
	// it goes straight to tier 2 on its first call.
	seedHot  bool
	t2Failed bool // tier-2 lowering failed; stop retrying

	calls int64 // activations (profile counter)
	ticks int64 // steps executed inside activations at tiers 0/1

	t1 *jitFunc
	t2 *codegen.EFunction
	// constBits resolves t2's constant pool against this machine's layout.
	constBits []uint64
	// frames recycles tier-2 activation frames (registers + constants).
	frames [][]uint64

	// counts is the per-block execution profile (same block indexing the
	// probe instrumentation and the lifelong store use); nil unless
	// EnableProfile was called.
	counts   []int64
	blockIdx map[*core.BasicBlock]int32
}

// fstate returns (creating on first use) the state for f.
func (mc *Machine) fstate(f *core.Function) *funcState {
	fs := mc.fstates[f]
	if fs == nil {
		if mc.fstates == nil {
			mc.fstates = map[*core.Function]*funcState{}
		}
		fs = &funcState{fn: f, tier: tierT1}
		mc.fstates[f] = fs
	}
	if mc.profiling && fs.counts == nil && len(f.Blocks) > 0 {
		fs.counts = make([]int64, len(f.Blocks))
		fs.blockIdx = make(map[*core.BasicBlock]int32, len(f.Blocks))
		for i, b := range f.Blocks {
			fs.blockIdx[b] = int32(i)
		}
	}
	return fs
}

// SetTier selects the machine's execution policy. The zero value is
// TierInterp; command-line tools default to TierAuto. Switching policy
// mid-run is safe (tiers are bit-identical) but resets no counters.
func (mc *Machine) SetTier(p TierPolicy) { mc.tier = p }

// Tier reports the machine's execution policy.
func (mc *Machine) Tier() TierPolicy { return mc.tier }

// EnableProfile turns on per-block execution counting in every tier. The
// counts use the same function-name/block-index shape the lifelong store
// persists (profile.Counts), so engine profiles feed tier-up seeding and
// reoptimization without instrumenting the module.
func (mc *Machine) EnableProfile() { mc.profiling = true }

// BlockCounts returns the accumulated per-block execution counts for every
// function that ran at least once, keyed by function name. The slices are
// copies.
func (mc *Machine) BlockCounts() map[string][]int64 {
	out := map[string][]int64{}
	for f, fs := range mc.fstates {
		if fs.counts == nil {
			continue
		}
		for _, c := range fs.counts {
			if c != 0 {
				out[f.Name()] = append([]int64(nil), fs.counts...)
				break
			}
		}
	}
	return out
}

// SeedProfile marks functions hot from a persisted profile (the
// profile.Counts block shape: function name -> per-block counts). A
// function whose recorded activity crosses the machine's hotness
// thresholds skips the baseline tier on its first call.
func (mc *Machine) SeedProfile(funcs map[string][]int64) {
	for _, f := range mc.Mod.Funcs {
		if f.IsDeclaration() {
			continue
		}
		counts := funcs[f.Name()]
		if counts == nil {
			continue
		}
		var total int64
		for _, c := range counts {
			total += c
		}
		if total >= mc.HotTicks || (len(counts) > 0 && counts[0] >= mc.HotCalls) {
			mc.fstate(f).seedHot = true
		}
	}
}

// ensureT1 compiles (or fetches from the attached Program) the baseline
// translation.
func (mc *Machine) ensureT1(fs *funcState) error {
	if fs.t1 != nil {
		return nil
	}
	start := time.Now()
	var (
		jf       *jitFunc
		compiled bool
		err      error
	)
	if mc.prog != nil {
		jf, compiled, err = mc.prog.t1For(mc, fs.fn)
	} else {
		jf, compiled = nil, true
		jf, err = mc.jitCompile(fs.fn)
	}
	if err != nil {
		return err
	}
	if compiled {
		mc.tierCompiles[1]++
		mc.tierCompileNs[1] += time.Since(start).Nanoseconds()
	}
	fs.t1 = jf
	return nil
}

// ensureT2 lowers (or fetches) the optimizing-tier translation and
// resolves its constant pool against this machine's memory layout.
func (mc *Machine) ensureT2(fs *funcState) error {
	if fs.t2 != nil {
		return nil
	}
	start := time.Now()
	var (
		ef       *codegen.EFunction
		compiled bool
		err      error
	)
	if mc.prog != nil {
		ef, compiled, err = mc.prog.t2For(fs.fn, fs.counts != nil)
	} else {
		compiled = true
		ef, err = codegen.LowerExec(fs.fn, fs.counts != nil)
	}
	if err != nil {
		return err
	}
	bits := make([]uint64, len(ef.Consts))
	for i, c := range ef.Consts {
		v, cerr := mc.evalConstant(c)
		if cerr != nil {
			return cerr
		}
		bits[i] = v
	}
	if compiled {
		mc.tierCompiles[2]++
		mc.tierCompileNs[2] += time.Since(start).Nanoseconds()
	}
	fs.t2 = ef
	fs.constBits = bits
	fs.frames = nil
	return nil
}

// getFrame hands out a tier-2 activation frame with the value region
// zeroed and the constant region populated.
func (fs *funcState) getFrame() []uint64 {
	// Recycled frames are NOT cleared: the verifier guarantees every
	// definition dominates its uses, so each register is written before
	// it is read in any activation (execTier2 zero-fills the one
	// exception, an argument shortfall). Clearing here would memclr the
	// whole register file on every call — the dominant cost for small
	// hot functions.
	if n := len(fs.frames); n > 0 {
		regs := fs.frames[n-1]
		fs.frames = fs.frames[:n-1]
		return regs
	}
	regs := make([]uint64, fs.t2.NumRegs)
	copy(regs[fs.t2.ConstBase:], fs.constBits)
	return regs
}

func (fs *funcState) putFrame(regs []uint64) {
	// Bound the freelist so deep recursion cannot pin frames forever.
	if len(fs.frames) < 8 {
		fs.frames = append(fs.frames, regs)
	}
}

// autoCall dispatches one activation under TierAuto: baseline by default,
// promoted in place to tier 2 when the hotness counters (or a seeded
// profile) say so, degraded to the interpreter if translation fails.
func (mc *Machine) autoCall(f *core.Function, args []uint64) (uint64, execResult, error) {
	fs := mc.fstate(f)
	fs.calls++
	if fs.tier != tierT2 && !fs.t2Failed &&
		(fs.seedHot || fs.calls >= mc.HotCalls || fs.ticks >= mc.HotTicks) {
		if err := mc.ensureT2(fs); err != nil {
			fs.t2Failed = true
		} else {
			if fs.calls > 1 {
				// An in-place promotion of a function that already ran at a
				// lower tier; seeded functions start at tier 2 instead.
				mc.tierUps++
			}
			fs.tier = tierT2
		}
	}
	switch fs.tier {
	case tierT2:
		mc.tierCalls[2]++
		return mc.execTier2(fs, args)
	case tierT0:
		mc.tierCalls[0]++
		s0 := mc.Steps
		v, res, err := mc.interpCall(f, fs, args)
		fs.ticks += mc.Steps - s0
		return v, res, err
	default:
		if fs.t1 == nil {
			if err := mc.ensureT1(fs); err != nil {
				fs.tier = tierT0
				mc.tierCalls[0]++
				s0 := mc.Steps
				v, res, ierr := mc.interpCall(f, fs, args)
				fs.ticks += mc.Steps - s0
				return v, res, ierr
			}
		}
		mc.tierCalls[1]++
		s0 := mc.Steps
		v, res, err := mc.execTier1(fs, args)
		fs.ticks += mc.Steps - s0
		return v, res, err
	}
}

// positionErr wraps an execution error with an explicit fault position
// (the translated tiers know their position from side tables, not from
// the interpreter's cur* bookkeeping). Already-positioned traps and
// explicit exits pass through untouched.
func positionErr(cause error, fn *core.Function, block *core.BasicBlock, inst core.Instruction) error {
	var t *Trap
	if errors.As(cause, &t) {
		return cause
	}
	var ee *ExitError
	if errors.As(cause, &ee) {
		return cause
	}
	t = &Trap{Cause: cause}
	if fn != nil {
		t.Fn = fn.Name()
	}
	if block != nil {
		t.Block = block.Name()
	}
	if inst != nil {
		t.Inst = core.InstDebugString(inst)
	}
	return t
}

// FuncTierStat is one function's row in TierStats.
type FuncTierStat struct {
	Name  string
	Tier  int   // tier the next call would run at
	Calls int64 // activations observed
}

// TierStats is the machine-level tiering report behind llvm-run -tier-stats.
type TierStats struct {
	Policy      TierPolicy
	Calls       [3]int64 // activations per tier
	Compiles    [3]int64 // translations performed by this machine (index 0 unused)
	CompileTime [3]time.Duration
	TierUps     int64 // in-place promotions after a function already ran
	Funcs       []FuncTierStat
}

// TierStats reports per-tier activation/compile counters and each
// function's current tier.
func (mc *Machine) TierStats() TierStats {
	st := TierStats{Policy: mc.tier, Calls: mc.tierCalls, TierUps: mc.tierUps}
	for t := 0; t < 3; t++ {
		st.Compiles[t] = mc.tierCompiles[t]
		st.CompileTime[t] = time.Duration(mc.tierCompileNs[t])
	}
	for _, fs := range mc.fstates {
		tier := int(fs.tier)
		switch mc.tier {
		case TierInterp:
			tier = 0
		case TierBaseline:
			tier = 1
		case TierOpt:
			tier = 2
		}
		st.Funcs = append(st.Funcs, FuncTierStat{Name: fs.fn.Name(), Tier: tier, Calls: fs.calls})
	}
	sort.Slice(st.Funcs, func(i, j int) bool { return st.Funcs[i].Name < st.Funcs[j].Name })
	return st
}
