package interp

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
)

// The JIT path of the execution engine (§3.4): "a just-in-time Execution
// Engine ... invokes the appropriate code generator at runtime, translating
// one function at a time for execution (or uses the portable interpreter if
// no native code generator is available)".
//
// Here the per-function translation targets an internal register machine:
// on a function's first call, its SSA values are assigned dense slots, all
// constant operands (including global and function addresses) are resolved
// to raw bits, getelementptr index arithmetic is compiled to a base +
// constant-offset + scaled-term plan, and φ-functions become per-edge copy
// lists. Subsequent calls execute the translated form, avoiding the
// tree-walking interpreter's per-instruction type dispatch and map lookups.
// Results are bit-identical to the interpreter (tested), just faster.

// EnableJIT turns on function-at-a-time baseline translation for this
// machine. Equivalent to SetTier(TierBaseline); kept as the historical
// entry point.
func (mc *Machine) EnableJIT() { mc.tier = TierBaseline }

// joperand is a pre-resolved operand: either constant bits or a slot.
type joperand struct {
	isConst bool
	bits    uint64
	slot    int32
}

// jkind enumerates translated instruction kinds.
type jkind uint8

const (
	jNop jkind = iota
	jIntBin
	jFloatBin
	jIntCmp
	jFloatCmp
	jBoolLogic
	jLoad
	jStore
	jGEP
	jCast
	jMallocFixed
	jMallocVar
	jAllocaFixed
	jAllocaVar
	jFree
	jCallDirect
	jCallIndirect
	jVAArg
	// Terminators.
	jRet
	jRetVoid
	jBr
	jCondBr
	jSwitch
	jUnwind
	jInvokeDirect
	jInvokeIndirect
)

// jscaled is one variable term of a GEP plan.
type jscaled struct {
	idx    joperand
	signed core.Type // index type for sign extension
	scale  int64
}

// jinstr is one translated instruction.
type jinstr struct {
	kind  jkind
	dst   int32 // result slot (-1 none)
	a, b  joperand
	op    core.Opcode
	ty    core.Type // operand/result type as the kind requires
	tySrc core.Type // cast source type

	// GEP plan.
	constOff int64
	terms    []jscaled

	// Calls.
	target *core.Function
	args   []joperand

	// Branch targets (block indices).
	t1, t2 int32
	// Switch table.
	cases map[uint64]int32

	// Fixed allocation size.
	size uint64

	// src is the IR instruction this one translates, for trap positions.
	src core.Instruction
}

// jedge is the φ-copy list for one CFG edge.
type jedge struct {
	dsts []int32
	srcs []joperand
}

// jblock is a translated basic block.
type jblock struct {
	instrs []jinstr
	// phiFrom maps predecessor block index to the copies for that edge.
	phiFrom map[int32]*jedge
}

// jitFunc is a translated function.
type jitFunc struct {
	fn     *core.Function
	nSlots int
	nArgs  int
	blocks []*jblock
}

// jitCompile translates f (once per machine).
func (mc *Machine) jitCompile(f *core.Function) (*jitFunc, error) {
	jf := &jitFunc{fn: f, nArgs: len(f.Args)}
	slots := map[core.Value]int32{}
	next := int32(0)
	for _, a := range f.Args {
		slots[a] = next
		next++
	}
	blockIdx := map[*core.BasicBlock]int32{}
	for i, b := range f.Blocks {
		blockIdx[b] = int32(i)
	}
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if inst.Type() != core.VoidType {
				slots[inst] = next
				next++
			}
		}
	}
	jf.nSlots = int(next)

	operand := func(v core.Value) (joperand, error) {
		if c, ok := v.(core.Constant); ok {
			switch c.(type) {
			case *core.Placeholder:
				return joperand{}, fmt.Errorf("interp: placeholder operand")
			}
			bits, err := mc.evalConstant(c)
			if err != nil {
				return joperand{}, err
			}
			return joperand{isConst: true, bits: bits}, nil
		}
		s, ok := slots[v]
		if !ok {
			return joperand{}, fmt.Errorf("interp: unslotted operand %T", v)
		}
		return joperand{slot: s}, nil
	}
	dstOf := func(inst core.Instruction) int32 {
		if s, ok := slots[inst]; ok {
			return s
		}
		return -1
	}

	for _, b := range f.Blocks {
		jb := &jblock{phiFrom: map[int32]*jedge{}}
		jf.blocks = append(jf.blocks, jb)
		for _, inst := range b.Instrs[b.FirstNonPhi():] {
			ji, err := mc.jitInstr(inst, operand, dstOf, blockIdx)
			if err != nil {
				return nil, err
			}
			ji.src = inst
			jb.instrs = append(jb.instrs, ji)
		}
	}
	// φ copies, grouped per incoming edge.
	for bi, b := range f.Blocks {
		for _, phi := range b.Phis() {
			dst := slots[phi]
			for n := 0; n < phi.NumIncoming(); n++ {
				v, pred := phi.Incoming(n)
				src, err := operand(v)
				if err != nil {
					return nil, err
				}
				pi := blockIdx[pred]
				e := jf.blocks[bi].phiFrom[pi]
				if e == nil {
					e = &jedge{}
					jf.blocks[bi].phiFrom[pi] = e
				}
				e.dsts = append(e.dsts, dst)
				e.srcs = append(e.srcs, src)
			}
		}
	}
	return jf, nil
}

// jitInstr translates one non-phi instruction.
func (mc *Machine) jitInstr(inst core.Instruction,
	operand func(core.Value) (joperand, error),
	dstOf func(core.Instruction) int32,
	blockIdx map[*core.BasicBlock]int32) (jinstr, error) {

	ji := jinstr{dst: dstOf(inst)}
	ops := func(vs ...core.Value) error {
		var err error
		if len(vs) > 0 {
			if ji.a, err = operand(vs[0]); err != nil {
				return err
			}
		}
		if len(vs) > 1 {
			if ji.b, err = operand(vs[1]); err != nil {
				return err
			}
		}
		return nil
	}

	switch i := inst.(type) {
	case *core.RetInst:
		if i.Value() == nil {
			ji.kind = jRetVoid
			return ji, nil
		}
		ji.kind = jRet
		return ji, ops(i.Value())

	case *core.BranchInst:
		if !i.IsConditional() {
			ji.kind = jBr
			ji.t1 = blockIdx[i.TrueDest()]
			return ji, nil
		}
		ji.kind = jCondBr
		ji.t1 = blockIdx[i.TrueDest()]
		ji.t2 = blockIdx[i.FalseDest()]
		return ji, ops(i.Cond())

	case *core.SwitchInst:
		ji.kind = jSwitch
		ji.t1 = blockIdx[i.Default()]
		ji.cases = map[uint64]int32{}
		for n := 0; n < i.NumCases(); n++ {
			cv, dest := i.Case(n)
			ji.cases[cv.Val] = blockIdx[dest]
		}
		return ji, ops(i.Value())

	case *core.UnwindInst:
		ji.kind = jUnwind
		return ji, nil

	case *core.BinaryInst:
		t := i.LHS().Type()
		ji.ty = t
		ji.op = i.Opcode()
		switch {
		case core.IsFloatingPoint(t):
			if core.IsComparisonOp(ji.op) {
				ji.kind = jFloatCmp
			} else {
				ji.kind = jFloatBin
			}
		case t.Kind() == core.BoolKind && !core.IsComparisonOp(ji.op):
			ji.kind = jBoolLogic
		case core.IsComparisonOp(ji.op):
			ji.kind = jIntCmp
			if !core.IsInteger(t) {
				ji.ty = core.ULongType // pointers/bools compare unsigned
			}
		default:
			ji.kind = jIntBin
			if !core.IsInteger(t) {
				ji.ty = core.ULongType
			}
		}
		return ji, ops(i.LHS(), i.RHS())

	case *core.MallocInst:
		esz := uint64(core.SizeOf(i.AllocType))
		if n := i.NumElems(); n != nil {
			ji.kind = jMallocVar
			ji.size = esz
			return ji, ops(n)
		}
		ji.kind = jMallocFixed
		ji.size = esz
		return ji, nil

	case *core.AllocaInst:
		esz := uint64(core.SizeOf(i.AllocType))
		if n := i.NumElems(); n != nil {
			ji.kind = jAllocaVar
			ji.size = esz
			return ji, ops(n)
		}
		ji.kind = jAllocaFixed
		ji.size = esz
		return ji, nil

	case *core.FreeInst:
		ji.kind = jFree
		return ji, ops(i.Ptr())

	case *core.LoadInst:
		ji.kind = jLoad
		ji.ty = i.Type()
		return ji, ops(i.Ptr())

	case *core.StoreInst:
		ji.kind = jStore
		ji.ty = i.Val().Type()
		return ji, ops(i.Val(), i.Ptr())

	case *core.GetElementPtrInst:
		ji.kind = jGEP
		if err := ops(i.Base()); err != nil {
			return ji, err
		}
		// Compile the index path with the shared address-arithmetic folder:
		// constant indices fold into constOff, variable ones become scaled
		// terms.
		var termErr error
		off, err := codegen.GEPPath(i.Base().Type(), i.Indices(), func(idx core.Value, scale int64) {
			op, e := operand(idx)
			if e != nil {
				termErr = e
				return
			}
			ji.terms = append(ji.terms, jscaled{idx: op, signed: idx.Type(), scale: scale})
		})
		if err != nil {
			return ji, err
		}
		if termErr != nil {
			return ji, termErr
		}
		ji.constOff = off
		return ji, nil

	case *core.CastInst:
		ji.kind = jCast
		ji.ty = i.Type()
		// Stash the source type in op-space via a second Type field: reuse
		// terms slot? Keep a dedicated field: use 'target' nil and store
		// source type in tySrc.
		ji.tySrc = i.Val().Type()
		return ji, ops(i.Val())

	case *core.CallInst:
		return mc.jitCall(ji, i.Callee(), i.Args(), false, 0, 0, operand, blockIdx)

	case *core.InvokeInst:
		return mc.jitCall(ji, i.Callee(), i.Args(), true,
			blockIdx[i.NormalDest()], blockIdx[i.UnwindDest()], operand, blockIdx)

	case *core.VAArgInst:
		ji.kind = jVAArg
		return ji, nil
	}
	return ji, fmt.Errorf("interp: cannot JIT %s", inst.Opcode())
}

func (mc *Machine) jitCall(ji jinstr, callee core.Value, argVals []core.Value,
	invoke bool, normal, unwind int32,
	operand func(core.Value) (joperand, error),
	blockIdx map[*core.BasicBlock]int32) (jinstr, error) {

	for _, a := range argVals {
		op, err := operand(a)
		if err != nil {
			return ji, err
		}
		ji.args = append(ji.args, op)
	}
	if f, ok := callee.(*core.Function); ok {
		ji.target = f
		if invoke {
			ji.kind = jInvokeDirect
		} else {
			ji.kind = jCallDirect
		}
	} else {
		op, err := operand(callee)
		if err != nil {
			return ji, err
		}
		ji.a = op
		if invoke {
			ji.kind = jInvokeIndirect
		} else {
			ji.kind = jCallIndirect
		}
	}
	ji.t1, ji.t2 = normal, unwind
	return ji, nil
}
