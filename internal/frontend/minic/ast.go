package minic

// TypeExpr is a syntactic type: a base name (primitive or struct), pointer
// depth, optional array dimensions, or a function-pointer shape.
type TypeExpr struct {
	Base     string // "int", "char", ..., or struct tag
	IsStruct bool
	Unsigned bool
	Ptr      int   // number of '*'
	ArrayLen []int // outermost-first array dimensions
	// Function pointer: Ret(params...)*
	IsFuncPtr bool
	Ret       *TypeExpr
	Params    []*TypeExpr
	Variadic  bool
}

// Param is a named parameter or struct field.
type Param struct {
	Name string
	Type *TypeExpr
}

// Decl is a top-level declaration.
type Decl interface{ isDecl() }

// StructDecl declares "struct Name { fields };".
type StructDecl struct {
	Name   string
	Fields []Param
}

// VarDecl declares a global variable.
type VarDecl struct {
	Name     string
	Type     *TypeExpr
	Init     Expr   // may be nil
	InitList []Expr // array/struct initializer { ... }
	Extern   bool
	Static   bool
	Const    bool
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	Name     string
	Ret      *TypeExpr
	Params   []Param
	Variadic bool
	Body     *BlockStmt // nil for declarations
	Extern   bool
	Static   bool
}

func (*StructDecl) isDecl() {}
func (*VarDecl) isDecl()    {}
func (*FuncDecl) isDecl()   {}

// Stmt is a statement.
type Stmt interface{ isStmt() }

// BlockStmt is "{ ... }".
type BlockStmt struct{ Stmts []Stmt }

// LocalDecl declares a local variable.
type LocalDecl struct {
	Name     string
	Type     *TypeExpr
	Init     Expr
	InitList []Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
}

// ForStmt is a for loop; any clause may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns (Value may be nil).
type ReturnStmt struct{ Value Expr }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// BreakStmt and ContinueStmt.
type BreakStmt struct{}
type ContinueStmt struct{}

// SwitchStmt with C fallthrough semantics.
type SwitchStmt struct {
	Value   Expr
	Cases   []SwitchCase
	Default []Stmt // nil if absent
	// DefaultPos is the index in Cases before which default appears
	// (len(Cases) if it is last / absent).
	DefaultPos int
}

// SwitchCase is one "case N:" arm.
type SwitchCase struct {
	Value int64
	Body  []Stmt
}

func (*BlockStmt) isStmt()    {}
func (*LocalDecl) isStmt()    {}
func (*IfStmt) isStmt()       {}
func (*WhileStmt) isStmt()    {}
func (*DoWhileStmt) isStmt()  {}
func (*ForStmt) isStmt()      {}
func (*ReturnStmt) isStmt()   {}
func (*ExprStmt) isStmt()     {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*SwitchStmt) isStmt()   {}

// Expr is an expression.
type Expr interface{ isExpr() }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// FloatLit is a floating literal.
type FloatLit struct{ Val float64 }

// StrLit is a string literal.
type StrLit struct{ Val string }

// Ident names a variable or function.
type Ident struct{ Name string }

// Unary is -x, !x, ~x, *p, &x, ++x, --x (and postfix forms via Postfix).
type Unary struct {
	Op      string
	X       Expr
	Postfix bool // x++ / x--
}

// Binary is a binary operator (arith, compare, logic, shifts).
type Binary struct {
	Op   string
	L, R Expr
}

// Assign is L = R or compound (op is "", "+", "-", ...).
type Assign struct {
	Op   string
	L, R Expr
}

// Call is fun(args...).
type Call struct {
	Fun  Expr
	Args []Expr
}

// Index is x[i].
type Index struct{ X, I Expr }

// Member is x.name or x->name.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is (type)x.
type CastExpr struct {
	Type *TypeExpr
	X    Expr
}

// SizeOf is sizeof(type).
type SizeOf struct{ Type *TypeExpr }

func (*IntLit) isExpr()   {}
func (*FloatLit) isExpr() {}
func (*StrLit) isExpr()   {}
func (*Ident) isExpr()    {}
func (*Unary) isExpr()    {}
func (*Binary) isExpr()   {}
func (*Assign) isExpr()   {}
func (*Call) isExpr()     {}
func (*Index) isExpr()    {}
func (*Member) isExpr()   {}
func (*CastExpr) isExpr() {}
func (*SizeOf) isExpr()   {}
