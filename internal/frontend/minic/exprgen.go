package minic

import (
	"repro/internal/core"
)

// ---------------------------------------------------------------------------
// Expressions

// expr generates an rvalue.
func (g *irgen) expr(e Expr) (core.Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return core.NewInt(core.IntType, x.Val), nil
	case *FloatLit:
		return core.NewFloat(core.DoubleType, x.Val), nil
	case *StrLit:
		gv := g.stringGlobal(x.Val)
		return core.NewConstGEP(gv, core.NewInt(core.LongType, 0), core.NewInt(core.LongType, 0)), nil

	case *Ident:
		if lv := g.lookup(x.Name); lv != nil {
			return g.loadFrom(lv.addr, lv.ty)
		}
		if gv := g.m.Global(x.Name); gv != nil {
			return g.loadFrom(gv, gv.ValueType)
		}
		if f := g.m.Func(x.Name); f != nil {
			return f, nil // function name as a value: function pointer
		}
		return nil, g.errf("undefined identifier %q", x.Name)

	case *Unary:
		return g.unary(x)

	case *Binary:
		return g.binary(x)

	case *Assign:
		return g.assign(x)

	case *Call:
		return g.call(x)

	case *Index, *Member:
		addr, ty, err := g.lvalue(e)
		if err != nil {
			return nil, err
		}
		return g.loadFrom(addr, ty)

	case *CastExpr:
		return g.castExpr(x)

	case *SizeOf:
		t, err := g.resolveType(x.Type)
		if err != nil {
			return nil, err
		}
		return core.NewInt(core.UIntType, int64(core.SizeOf(t))), nil
	}
	return nil, g.errf("unhandled expression %T", e)
}

// loadFrom reads a value of type ty at addr; arrays decay to element
// pointers instead of loading.
func (g *irgen) loadFrom(addr core.Value, ty core.Type) (core.Value, error) {
	if _, isArr := ty.(*core.ArrayType); isArr {
		return g.b.CreateGEP(addr, []core.Value{
			core.NewInt(core.LongType, 0), core.NewInt(core.LongType, 0)}, ""), nil
	}
	if !core.IsFirstClass(ty) {
		return nil, g.errf("cannot load aggregate of type %s", ty)
	}
	return g.b.CreateLoad(addr, ""), nil
}

// lvalue returns (address, pointee type) for an assignable expression.
func (g *irgen) lvalue(e Expr) (core.Value, core.Type, error) {
	switch x := e.(type) {
	case *Ident:
		if lv := g.lookup(x.Name); lv != nil {
			return lv.addr, lv.ty, nil
		}
		if gv := g.m.Global(x.Name); gv != nil {
			return gv, gv.ValueType, nil
		}
		return nil, nil, g.errf("undefined identifier %q", x.Name)

	case *Unary:
		if x.Op == "*" {
			p, err := g.expr(x.X)
			if err != nil {
				return nil, nil, err
			}
			pt, ok := p.Type().(*core.PointerType)
			if !ok {
				return nil, nil, g.errf("dereference of non-pointer %s", p.Type())
			}
			return p, pt.Elem, nil
		}

	case *Index:
		idx, err := g.expr(x.I)
		if err != nil {
			return nil, nil, err
		}
		idx, err = g.convert(idx, core.LongType)
		if err != nil {
			return nil, nil, err
		}
		// Index a true array in place (keeping the array type visible to
		// analyses like bounds checking, §3.2's "expose arrays") when the
		// base is an array lvalue; otherwise decay to pointer indexing.
		if g.isArrayLValue(x.X) {
			addr, ty, err := g.lvalue(x.X)
			if err == nil {
				if at, ok := ty.(*core.ArrayType); ok {
					p := g.b.CreateGEP(addr, []core.Value{core.NewInt(core.LongType, 0), idx}, "")
					return p, at.Elem, nil
				}
			}
		}
		base, err := g.expr(x.X)
		if err != nil {
			return nil, nil, err
		}
		pt, ok := base.Type().(*core.PointerType)
		if !ok {
			return nil, nil, g.errf("indexing non-pointer %s", base.Type())
		}
		addr := g.b.CreateGEP(base, []core.Value{idx}, "")
		return addr, pt.Elem, nil

	case *Member:
		var base core.Value
		var sty core.Type
		if x.Arrow {
			p, err := g.expr(x.X)
			if err != nil {
				return nil, nil, err
			}
			pt, ok := p.Type().(*core.PointerType)
			if !ok {
				return nil, nil, g.errf("-> on non-pointer %s", p.Type())
			}
			base, sty = p, pt.Elem
		} else {
			addr, ty, err := g.lvalue(x.X)
			if err != nil {
				return nil, nil, err
			}
			base, sty = addr, ty
		}
		st, ok := sty.(*core.StructType)
		if !ok {
			return nil, nil, g.errf("member access on non-struct %s", sty)
		}
		si := g.structs[st.Name]
		if si == nil {
			return nil, nil, g.errf("unknown struct %s", st.Name)
		}
		fi, ok := si.fields[x.Name]
		if !ok {
			return nil, nil, g.errf("struct %s has no field %q", st.Name, x.Name)
		}
		addr := g.b.CreateStructGEP(base, fi, "")
		return addr, st.Fields[fi], nil
	}
	return nil, nil, g.errf("expression is not assignable")
}

func (g *irgen) unary(x *Unary) (core.Value, error) {
	switch x.Op {
	case "-":
		v, err := g.expr(x.X)
		if err != nil {
			return nil, err
		}
		if core.IsFloatingPoint(v.Type()) {
			return g.b.CreateSub(core.NewFloat(v.Type(), 0), v, ""), nil
		}
		v, err = g.promote(v)
		if err != nil {
			return nil, err
		}
		return g.b.CreateSub(core.NewInt(v.Type(), 0), v, ""), nil
	case "~":
		v, err := g.expr(x.X)
		if err != nil {
			return nil, err
		}
		v, err = g.promote(v)
		if err != nil {
			return nil, err
		}
		return g.b.CreateXor(v, core.NewInt(v.Type(), -1), ""), nil
	case "!":
		c, err := g.condition(x.X)
		if err != nil {
			return nil, err
		}
		nb := g.b.CreateXor(c, core.True(), "")
		return g.b.CreateCast(nb, core.IntType, ""), nil
	case "*":
		addr, ty, err := g.lvalue(x)
		if err != nil {
			return nil, err
		}
		return g.loadFrom(addr, ty)
	case "&":
		addr, _, err := g.lvalue(x.X)
		if err != nil {
			return nil, err
		}
		return addr, nil
	case "++", "--":
		addr, ty, err := g.lvalue(x.X)
		if err != nil {
			return nil, err
		}
		old, err := g.loadFrom(addr, ty)
		if err != nil {
			return nil, err
		}
		var nv core.Value
		switch {
		case core.IsInteger(ty):
			one := core.NewInt(ty, 1)
			if x.Op == "++" {
				nv = g.b.CreateAdd(old, one, "")
			} else {
				nv = g.b.CreateSub(old, one, "")
			}
		case core.IsFloatingPoint(ty):
			one := core.NewFloat(ty, 1)
			if x.Op == "++" {
				nv = g.b.CreateAdd(old, one, "")
			} else {
				nv = g.b.CreateSub(old, one, "")
			}
		case ty.Kind() == core.PointerKind:
			d := int64(1)
			if x.Op == "--" {
				d = -1
			}
			nv = g.b.CreateGEP(old, []core.Value{core.NewInt(core.LongType, d)}, "")
		default:
			return nil, g.errf("cannot %s value of type %s", x.Op, ty)
		}
		g.b.CreateStore(nv, addr)
		if x.Postfix {
			return old, nil
		}
		return nv, nil
	}
	return nil, g.errf("unhandled unary %q", x.Op)
}

func (g *irgen) binary(x *Binary) (core.Value, error) {
	switch x.Op {
	case "&&", "||":
		return g.shortCircuit(x)
	}
	l, err := g.expr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := g.expr(x.R)
	if err != nil {
		return nil, err
	}

	// Pointer arithmetic: p + i, p - i, p == q etc.
	if l.Type().Kind() == core.PointerKind || r.Type().Kind() == core.PointerKind {
		return g.pointerBinary(x.Op, l, r)
	}

	l, r, err = g.usualArith(l, r)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+":
		return g.b.CreateAdd(l, r, ""), nil
	case "-":
		return g.b.CreateSub(l, r, ""), nil
	case "*":
		return g.b.CreateMul(l, r, ""), nil
	case "/":
		return g.b.CreateDiv(l, r, ""), nil
	case "%":
		return g.b.CreateRem(l, r, ""), nil
	case "&":
		return g.b.CreateAnd(l, r, ""), nil
	case "|":
		return g.b.CreateOr(l, r, ""), nil
	case "^":
		return g.b.CreateXor(l, r, ""), nil
	case "<<", ">>":
		amt, err := g.convert(r, core.UByteType)
		if err != nil {
			return nil, err
		}
		if x.Op == "<<" {
			return g.b.CreateShl(l, amt, ""), nil
		}
		return g.b.CreateShr(l, amt, ""), nil
	case "==", "!=", "<", ">", "<=", ">=":
		cmp := g.b.CreateBinary(cmpOpcode(x.Op), l, r, "")
		return g.b.CreateCast(cmp, core.IntType, ""), nil
	}
	return nil, g.errf("unhandled binary %q", x.Op)
}

func cmpOpcode(op string) core.Opcode {
	switch op {
	case "==":
		return core.OpSetEQ
	case "!=":
		return core.OpSetNE
	case "<":
		return core.OpSetLT
	case ">":
		return core.OpSetGT
	case "<=":
		return core.OpSetLE
	default:
		return core.OpSetGE
	}
}

func (g *irgen) pointerBinary(op string, l, r core.Value) (core.Value, error) {
	lp := l.Type().Kind() == core.PointerKind
	rp := r.Type().Kind() == core.PointerKind
	switch op {
	case "+", "-":
		if lp && !rp {
			idx, err := g.convert(r, core.LongType)
			if err != nil {
				return nil, err
			}
			if op == "-" {
				idx = g.b.CreateSub(core.NewInt(core.LongType, 0), idx, "")
			}
			return g.b.CreateGEP(l, []core.Value{idx}, ""), nil
		}
		if rp && !lp && op == "+" {
			idx, err := g.convert(l, core.LongType)
			if err != nil {
				return nil, err
			}
			return g.b.CreateGEP(r, []core.Value{idx}, ""), nil
		}
		if lp && rp && op == "-" {
			// Pointer difference in elements.
			elemSz := int64(core.SizeOf(l.Type().(*core.PointerType).Elem))
			li := g.b.CreateCast(l, core.LongType, "")
			ri := g.b.CreateCast(r, core.LongType, "")
			d := g.b.CreateSub(li, ri, "")
			if elemSz > 1 {
				return g.b.CreateDiv(d, core.NewInt(core.LongType, elemSz), ""), nil
			}
			return d, nil
		}
	case "==", "!=", "<", ">", "<=", ">=":
		// Make both sides the same pointer type (allow null/int 0).
		if !rp {
			var err error
			r, err = g.convert(r, l.Type())
			if err != nil {
				return nil, err
			}
		} else if !lp {
			var err error
			l, err = g.convert(l, r.Type())
			if err != nil {
				return nil, err
			}
		} else if !core.TypesEqual(l.Type(), r.Type()) {
			r = g.b.CreateCast(r, l.Type(), "")
		}
		cmp := g.b.CreateBinary(cmpOpcode(op), l, r, "")
		return g.b.CreateCast(cmp, core.IntType, ""), nil
	}
	return nil, g.errf("invalid pointer operation %q", op)
}

func (g *irgen) shortCircuit(x *Binary) (core.Value, error) {
	lc, err := g.condition(x.L)
	if err != nil {
		return nil, err
	}
	lBlock := g.b.Block()
	rhsB := g.newBlock("sc.rhs")
	endB := g.newBlock("sc.end")
	if x.Op == "&&" {
		g.b.CreateCondBr(lc, rhsB, endB)
	} else {
		g.b.CreateCondBr(lc, endB, rhsB)
	}
	g.b.SetInsertPoint(rhsB)
	rc, err := g.condition(x.R)
	if err != nil {
		return nil, err
	}
	rBlock := g.b.Block() // condition may have added blocks
	if !g.terminated() {
		g.b.CreateBr(endB)
	}
	g.b.SetInsertPoint(endB)
	phi := g.b.CreatePhi(core.BoolType, "")
	short := core.NewBool(x.Op == "||")
	phi.AddIncoming(short, lBlock)
	phi.AddIncoming(rc, rBlock)
	return g.b.CreateCast(phi, core.IntType, ""), nil
}

func (g *irgen) assign(x *Assign) (core.Value, error) {
	addr, ty, err := g.lvalue(x.L)
	if err != nil {
		return nil, err
	}
	var v core.Value
	if x.Op == "" {
		v, err = g.expr(x.R)
		if err != nil {
			return nil, err
		}
	} else {
		// Compound assignment: load, combine, store.
		v, err = g.binary(&Binary{Op: x.Op, L: x.L, R: x.R})
		if err != nil {
			return nil, err
		}
	}
	v, err = g.convert(v, ty)
	if err != nil {
		return nil, err
	}
	g.b.CreateStore(v, addr)
	return v, nil
}

// call handles direct calls, indirect calls through function pointers, and
// the malloc/free lowering to the typed allocation instructions (§2.3: the
// front-end emits malloc/free instructions; native codegen turns them back
// into library calls).
func (g *irgen) call(x *Call) (core.Value, error) {
	if id, ok := x.Fun.(*Ident); ok {
		switch id.Name {
		case "malloc":
			if len(x.Args) != 1 {
				return nil, g.errf("malloc takes one argument")
			}
			return g.genMalloc(core.SByteType, x.Args[0])
		case "free":
			if len(x.Args) != 1 {
				return nil, g.errf("free takes one argument")
			}
			p, err := g.expr(x.Args[0])
			if err != nil {
				return nil, err
			}
			if p.Type().Kind() != core.PointerKind {
				return nil, g.errf("free of non-pointer")
			}
			g.b.CreateFree(p)
			return core.NewInt(core.IntType, 0), nil
		}
	}

	var callee core.Value
	if id, ok := x.Fun.(*Ident); ok {
		if lv := g.lookup(id.Name); lv != nil {
			// Function-pointer variable.
			v, err := g.loadFrom(lv.addr, lv.ty)
			if err != nil {
				return nil, err
			}
			callee = v
		} else if f := g.m.Func(id.Name); f != nil {
			callee = f
		} else if gv := g.m.Global(id.Name); gv != nil {
			v, err := g.loadFrom(gv, gv.ValueType)
			if err != nil {
				return nil, err
			}
			callee = v
		} else {
			return nil, g.errf("call to undeclared function %q", id.Name)
		}
	} else {
		v, err := g.expr(x.Fun)
		if err != nil {
			return nil, err
		}
		callee = v
	}

	ft := core.CalleeFunctionType(callee)
	if ft == nil {
		return nil, g.errf("called value is not a function")
	}
	if len(x.Args) < len(ft.Params) || (!ft.Variadic && len(x.Args) != len(ft.Params)) {
		return nil, g.errf("wrong number of arguments")
	}
	var args []core.Value
	for i, ae := range x.Args {
		v, err := g.expr(ae)
		if err != nil {
			return nil, err
		}
		if i < len(ft.Params) {
			v, err = g.convert(v, ft.Params[i])
			if err != nil {
				return nil, err
			}
		} else {
			// Default argument promotions for variadics.
			switch {
			case v.Type().Kind() == core.FloatKind:
				v = g.b.CreateCast(v, core.DoubleType, "")
			case core.IsInteger(v.Type()) && core.BitWidth(v.Type()) < 32:
				v = g.b.CreateCast(v, core.IntType, "")
			case v.Type().Kind() == core.BoolKind:
				v = g.b.CreateCast(v, core.IntType, "")
			}
		}
		args = append(args, v)
	}
	return g.b.CreateCall(callee, args, ""), nil
}

// genMalloc emits "malloc elemType, n" computing n from the byte-count
// argument when it is sizeof-shaped; otherwise a byte allocation.
func (g *irgen) genMalloc(elem core.Type, sizeArg Expr) (core.Value, error) {
	n, err := g.expr(sizeArg)
	if err != nil {
		return nil, err
	}
	n, err = g.convert(n, core.UIntType)
	if err != nil {
		return nil, err
	}
	return g.b.CreateMalloc(elem, n, ""), nil
}

// castExpr handles (T)x, including the allocation-raising peephole:
// (T*)malloc(sizeof(T)) and (T*)malloc(n * sizeof(T)) become typed malloc
// instructions, like llvm-gcc's RaiseAllocations pass.
func (g *irgen) castExpr(x *CastExpr) (core.Value, error) {
	t, err := g.resolveType(x.Type)
	if err != nil {
		return nil, err
	}
	if pt, ok := t.(*core.PointerType); ok {
		if call, ok := x.X.(*Call); ok {
			if id, ok := call.Fun.(*Ident); ok && id.Name == "malloc" && len(call.Args) == 1 {
				if count, ok := g.matchSizeofCount(call.Args[0], pt.Elem); ok {
					n, err := g.expr(count)
					if err != nil {
						return nil, err
					}
					n, err = g.convert(n, core.UIntType)
					if err != nil {
						return nil, err
					}
					return g.b.CreateMalloc(pt.Elem, n, ""), nil
				}
				if g.matchSizeofExact(call.Args[0], pt.Elem) {
					return g.b.CreateMalloc(pt.Elem, nil, ""), nil
				}
			}
		}
	}
	v, err := g.expr(x.X)
	if err != nil {
		return nil, err
	}
	if core.TypesEqual(v.Type(), t) {
		return v, nil
	}
	if t == core.VoidType {
		return v, nil // (void)expr: discard
	}
	return g.b.CreateCast(v, t, ""), nil
}

// matchSizeofExact recognizes "sizeof(T)" for the given T.
func (g *irgen) matchSizeofExact(e Expr, want core.Type) bool {
	so, ok := e.(*SizeOf)
	if !ok {
		return false
	}
	t, err := g.resolveType(so.Type)
	return err == nil && core.TypesEqual(t, want)
}

// matchSizeofCount recognizes "n * sizeof(T)" or "sizeof(T) * n".
func (g *irgen) matchSizeofCount(e Expr, want core.Type) (Expr, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != "*" {
		return nil, false
	}
	if g.matchSizeofExact(b.R, want) {
		return b.L, true
	}
	if g.matchSizeofExact(b.L, want) {
		return b.R, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Conversions

// condition evaluates e as a branch condition (bool).
func (g *irgen) condition(e Expr) (core.Value, error) {
	v, err := g.expr(e)
	if err != nil {
		return nil, err
	}
	t := v.Type()
	switch {
	case t.Kind() == core.BoolKind:
		return v, nil
	case core.IsInteger(t):
		return g.b.CreateSetNE(v, core.NewInt(t, 0), ""), nil
	case core.IsFloatingPoint(t):
		return g.b.CreateSetNE(v, core.NewFloat(t, 0), ""), nil
	case t.Kind() == core.PointerKind:
		return g.b.CreateSetNE(v, core.NewNull(t.(*core.PointerType)), ""), nil
	}
	return nil, g.errf("invalid condition type %s", t)
}

// convert coerces v to type t (C-style implicit conversion).
func (g *irgen) convert(v core.Value, t core.Type) (core.Value, error) {
	if core.TypesEqual(v.Type(), t) {
		return v, nil
	}
	from := v.Type()
	switch {
	case core.IsFirstClass(from) && core.IsFirstClass(t):
		// Integer literal to pointer: only 0 makes sense, but cast covers.
		if ci, ok := v.(*core.ConstantInt); ok {
			if core.IsInteger(t) {
				return core.NewInt(t, ci.SExt()), nil
			}
			if t.Kind() == core.PointerKind && ci.IsZero() {
				return core.NewNull(t.(*core.PointerType)), nil
			}
			if core.IsFloatingPoint(t) {
				return core.NewFloat(t, float64(ci.SExt())), nil
			}
		}
		return g.b.CreateCast(v, t, ""), nil
	}
	return nil, g.errf("cannot convert %s to %s", from, t)
}

// intRank orders integer types for the usual arithmetic conversions.
func intRank(t core.Type) int {
	switch core.BitWidth(t) {
	case 8:
		return 1
	case 16:
		return 2
	case 32:
		return 3
	default:
		return 4
	}
}

// promote applies the C integer promotions (small ints -> int).
func (g *irgen) promote(v core.Value) (core.Value, error) {
	t := v.Type()
	if t.Kind() == core.BoolKind {
		return g.convert(v, core.IntType)
	}
	if core.IsInteger(t) && core.BitWidth(t) < 32 {
		if core.IsUnsigned(t) {
			return g.convert(v, core.IntType)
		}
		return g.convert(v, core.IntType)
	}
	return v, nil
}

// usualArith applies the usual arithmetic conversions to a pair.
func (g *irgen) usualArith(l, r core.Value) (core.Value, core.Value, error) {
	var err error
	if l, err = g.promote(l); err != nil {
		return nil, nil, err
	}
	if r, err = g.promote(r); err != nil {
		return nil, nil, err
	}
	lt, rt := l.Type(), r.Type()
	if core.TypesEqual(lt, rt) {
		return l, r, nil
	}
	// Floating point dominates.
	switch {
	case lt.Kind() == core.DoubleKind || rt.Kind() == core.DoubleKind:
		if l, err = g.convert(l, core.DoubleType); err != nil {
			return nil, nil, err
		}
		r, err = g.convert(r, core.DoubleType)
		return l, r, err
	case lt.Kind() == core.FloatKind || rt.Kind() == core.FloatKind:
		if l, err = g.convert(l, core.FloatType); err != nil {
			return nil, nil, err
		}
		r, err = g.convert(r, core.FloatType)
		return l, r, err
	}
	// Integer: higher rank wins; unsigned wins ties.
	target := lt
	lr, rr := intRank(lt), intRank(rt)
	switch {
	case rr > lr:
		target = rt
	case lr > rr:
		target = lt
	case core.IsUnsigned(rt):
		target = rt
	}
	if l, err = g.convert(l, target); err != nil {
		return nil, nil, err
	}
	r, err = g.convert(r, target)
	return l, r, err
}

// lvalueType statically determines the type of a simple lvalue expression
// without generating code, or nil when it cannot. Used to decide whether
// indexing can stay on the array type (preserving bounds information)
// rather than decaying to a pointer.
func (g *irgen) lvalueType(e Expr) core.Type {
	switch x := e.(type) {
	case *Ident:
		if lv := g.lookup(x.Name); lv != nil {
			return lv.ty
		}
		if gv := g.m.Global(x.Name); gv != nil {
			return gv.ValueType
		}
	case *Member:
		var sty core.Type
		if x.Arrow {
			bt := g.lvalueType(x.X)
			pt, ok := bt.(*core.PointerType)
			if !ok {
				return nil
			}
			sty = pt.Elem
		} else {
			sty = g.lvalueType(x.X)
		}
		st, ok := sty.(*core.StructType)
		if !ok {
			return nil
		}
		si := g.structs[st.Name]
		if si == nil {
			return nil
		}
		fi, ok := si.fields[x.Name]
		if !ok {
			return nil
		}
		return st.Fields[fi]
	case *Index:
		if at, ok := g.lvalueType(x.X).(*core.ArrayType); ok {
			return at.Elem
		}
	case *Unary:
		if x.Op == "*" {
			if pt, ok := g.lvalueType(x.X).(*core.PointerType); ok {
				return pt.Elem
			}
		}
	}
	return nil
}

// isArrayLValue reports whether e is an lvalue of array type.
func (g *irgen) isArrayLValue(e Expr) bool {
	_, ok := g.lvalueType(e).(*core.ArrayType)
	return ok
}
