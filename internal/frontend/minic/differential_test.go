package minic

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/passes"
)

// A deterministic random-program generator for differential testing: every
// generated program must produce the same exit value before and after the
// full optimization pipeline, after a bytecode round trip, and after a
// text round trip. This is the harness that catches miscompiles the
// hand-written tests miss.

type pgen struct {
	s   uint64
	buf strings.Builder
	// vars in scope (all int for simplicity of generation).
	vars   []string
	nextID int
	depth  int
}

func (g *pgen) rnd(n int) int {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return int((g.s >> 33) % uint64(n))
}

func (g *pgen) newVar() string {
	g.nextID++
	return fmt.Sprintf("v%d", g.nextID)
}

// expr emits a random int expression from the in-scope variables.
func (g *pgen) expr(depth int) string {
	if depth <= 0 || g.rnd(3) == 0 {
		switch g.rnd(3) {
		case 0:
			return fmt.Sprintf("%d", g.rnd(100)-50)
		default:
			if len(g.vars) == 0 {
				return fmt.Sprintf("%d", g.rnd(10))
			}
			return g.vars[g.rnd(len(g.vars))]
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", ">", "==", "!="}
	op := ops[g.rnd(len(ops))]
	l, r := g.expr(depth-1), g.expr(depth-1)
	if op == "/" || op == "%" {
		// Avoid division by zero entirely.
		return fmt.Sprintf("(%s %s (1 + ((%s) & 7)))", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

// stmt emits a random statement.
func (g *pgen) stmt(depth int) {
	switch g.rnd(6) {
	case 0: // declaration
		v := g.newVar()
		fmt.Fprintf(&g.buf, "int %s = %s;\n", v, g.expr(2))
		g.vars = append(g.vars, v)
	case 1: // assignment
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		v := g.vars[g.rnd(len(g.vars))]
		fmt.Fprintf(&g.buf, "%s = %s;\n", v, g.expr(2))
	case 2: // if/else
		if depth <= 0 {
			g.stmt(0)
			return
		}
		fmt.Fprintf(&g.buf, "if (%s) {\n", g.expr(1))
		g.block(depth-1, 2)
		if g.rnd(2) == 0 {
			g.buf.WriteString("} else {\n")
			g.block(depth-1, 2)
		}
		g.buf.WriteString("}\n")
	case 3: // bounded loop
		if depth <= 0 {
			g.stmt(0)
			return
		}
		i := g.newVar()
		acc := ""
		if len(g.vars) > 0 {
			acc = g.vars[g.rnd(len(g.vars))]
		}
		// The induction variable is deliberately NOT exposed to nested
		// statements: a generated assignment to it could loop forever.
		fmt.Fprintf(&g.buf, "{ int %s;\nfor (%s = 0; %s < %d; %s++) {\n", i, i, i, 2+g.rnd(8), i)
		g.block(depth-1, 2)
		if acc != "" {
			fmt.Fprintf(&g.buf, "%s += %s;\n", acc, i)
		}
		g.buf.WriteString("} }\n")
	case 4: // array traffic
		a := g.newVar()
		fmt.Fprintf(&g.buf, "{ int %s[4];\n%s[0] = %s;\n%s[1] = %s[0] + 1;\n%s[2] = %s[1] * 2;\n%s[3] = %s[2] - %s[0];\n",
			a, a, g.expr(1), a, a, a, a, a, a, a)
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.buf, "%s += %s[3];\n", g.vars[g.rnd(len(g.vars))], a)
		}
		g.buf.WriteString("}\n")
	default: // switch
		if depth <= 0 || len(g.vars) == 0 {
			g.stmt(0)
			return
		}
		v := g.vars[g.rnd(len(g.vars))]
		fmt.Fprintf(&g.buf, "switch ((%s) & 3) {\n", v)
		for c := 0; c < 3; c++ {
			fmt.Fprintf(&g.buf, "case %d: %s = %s; break;\n", c, v, g.expr(1))
		}
		fmt.Fprintf(&g.buf, "default: %s = %s + 1;\n}\n", v, v)
	}
}

func (g *pgen) block(depth, n int) {
	mark := len(g.vars)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
	g.vars = g.vars[:mark]
}

// genProgram builds a whole program with a couple of helper functions.
func genProgram(seed uint64) string {
	g := &pgen{s: seed}
	var out strings.Builder

	// Helper functions with 1-2 int parameters.
	nHelpers := 1 + g.rnd(3)
	var helperSigs []struct {
		name  string
		nargs int
	}
	for h := 0; h < nHelpers; h++ {
		name := fmt.Sprintf("helper%d", h)
		nargs := 1 + g.rnd(2)
		helperSigs = append(helperSigs, struct {
			name  string
			nargs int
		}{name, nargs})
		params := "int a0"
		g.vars = []string{"a0"}
		if nargs == 2 {
			params += ", int a1"
			g.vars = append(g.vars, "a1")
		}
		g.buf.Reset()
		g.block(2, 3)
		fmt.Fprintf(&out, "static int %s(%s) {\n%sreturn %s;\n}\n",
			name, params, g.buf.String(), g.expr(2))
	}

	// main: locals, statements, helper calls, checksum return.
	g.buf.Reset()
	g.vars = nil
	g.nextID = 1000
	var body strings.Builder
	body.WriteString("int acc = 1;\n")
	g.vars = append(g.vars, "acc")
	for s := 0; s < 4; s++ {
		g.buf.Reset()
		g.block(3, 2)
		body.WriteString(g.buf.String())
		h := helperSigs[g.rnd(len(helperSigs))]
		args := g.expr(1)
		if h.nargs == 2 {
			args += ", " + g.expr(1)
		}
		fmt.Fprintf(&body, "acc = acc * 31 + %s(%s);\n", h.name, args)
	}
	fmt.Fprintf(&out, "int main() {\n%sreturn acc & 255;\n}\n", body.String())
	return out.String()
}

func runModule(t *testing.T, m *core.Module, what string) int64 {
	t.Helper()
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	mc.MaxSteps = 20_000_000
	v, err := mc.RunMain()
	if err != nil {
		t.Fatalf("%s run: %v\n%s", what, err, m)
	}
	return v
}

func TestDifferentialOptimization(t *testing.T) {
	const trials = 60
	for seed := uint64(1); seed <= trials; seed++ {
		src := genProgram(seed * 7919)
		m1, err := Compile("ref", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\nsource:\n%s", seed, err, src)
		}
		if err := core.Verify(m1); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		want := runModule(t, m1, "reference")

		// Full optimization.
		m2, _ := Compile("opt", src)
		pm := passes.NewPassManager()
		pm.VerifyEach = true
		pm.Add(passes.NewInternalize())
		pm.AddLinkTimePipeline()
		if _, err := pm.Run(m2); err != nil {
			t.Fatalf("seed %d: optimize: %v\nsource:\n%s", seed, err, src)
		}
		if got := runModule(t, m2, "optimized"); got != want {
			t.Fatalf("seed %d: optimization miscompile: %d vs %d\nsource:\n%s\nIR:\n%s",
				seed, got, want, src, m2)
		}

		// JIT execution of the optimized module.
		{
			mc, err := interp.NewMachine(m2, nil)
			if err != nil {
				t.Fatal(err)
			}
			mc.MaxSteps = 20_000_000
			mc.EnableJIT()
			got, err := mc.RunMain()
			if err != nil {
				t.Fatalf("seed %d: jit run: %v", seed, err)
			}
			if got != want {
				t.Fatalf("seed %d: JIT divergence: %d vs %d", seed, got, want)
			}
		}

		// Bytecode round trip of the optimized module.
		bc, err := bytecode.Encode(m2)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		m3, err := bytecode.Decode(bc)
		if err != nil {
			t.Fatalf("seed %d: bytecode: %v", seed, err)
		}
		if got := runModule(t, m3, "bytecode"); got != want {
			t.Fatalf("seed %d: bytecode round trip changed behavior: %d vs %d", seed, got, want)
		}

		// Text round trip of the unoptimized module.
		m4, err := asm.ParseModule("text", m1.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if got := runModule(t, m4, "text"); got != want {
			t.Fatalf("seed %d: text round trip changed behavior: %d vs %d", seed, got, want)
		}
	}
}
