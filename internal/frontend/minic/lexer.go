// Package minic is a front-end for a C subset ("MiniC") that compiles to
// the IR, playing the role of the paper's C front-end (Figure 4): it
// performs no optimization and builds no SSA — locals live on the stack via
// alloca and are promoted later by the optimizer's stack-promotion pass
// (§3.2). It supports the C features the synthetic benchmark suite needs:
// structs, pointers, fixed arrays, function pointers, casts, sizeof,
// short-circuit logic, loops, switch, string literals, and variadic extern
// declarations. A small "raise allocations" step turns
// (T*)malloc(sizeof(T)...) into typed malloc instructions, as llvm-gcc did.
package minic

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tStr
	tChar
	tPunct
	tKeyword
)

type tok struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"struct": true, "if": true, "else": true, "while": true, "for": true,
	"do": true, "return": true, "break": true, "continue": true,
	"switch": true, "case": true, "default": true, "sizeof": true,
	"extern": true, "static": true, "const": true,
}

var punct2 = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
	"<<": true, ">>": true, "->": true, "++": true, "--": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []tok
}

func lex(src string) ([]tok, error) {
	lx := &lexer{src: src, line: 1}
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, t)
		if t.kind == tEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("minic: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (tok, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos+1 >= len(lx.src) {
				return tok{}, lx.errf("unterminated block comment")
			}
			lx.pos += 2
		case c == '#':
			// Preprocessor lines are ignored (the tests feed plain code).
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return tok{kind: tEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case isAlpha(c):
		for lx.pos < len(lx.src) && isAlnum(lx.src[lx.pos]) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if keywords[text] {
			return tok{kind: tKeyword, text: text, line: lx.line}, nil
		}
		return tok{kind: tIdent, text: text, line: lx.line}, nil

	case isDigit(c):
		isFloat := false
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) ||
			lx.src[lx.pos] == '.' || lx.src[lx.pos] == 'x' || lx.src[lx.pos] == 'X' ||
			isHexDigit(lx.src[lx.pos])) {
			if lx.src[lx.pos] == '.' {
				isFloat = true
			}
			lx.pos++
		}
		// Suffixes (L, U, UL) are accepted and dropped.
		for lx.pos < len(lx.src) && (lx.src[lx.pos] == 'l' || lx.src[lx.pos] == 'L' ||
			lx.src[lx.pos] == 'u' || lx.src[lx.pos] == 'U') {
			lx.pos++
		}
		text := strings.TrimRight(lx.src[start:lx.pos], "lLuU")
		if isFloat {
			return tok{kind: tFloat, text: text, line: lx.line}, nil
		}
		return tok{kind: tInt, text: text, line: lx.line}, nil

	case c == '"':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			ch, err := lx.escChar()
			if err != nil {
				return tok{}, err
			}
			b.WriteByte(ch)
		}
		if lx.pos >= len(lx.src) {
			return tok{}, lx.errf("unterminated string")
		}
		lx.pos++
		return tok{kind: tStr, text: b.String(), line: lx.line}, nil

	case c == '\'':
		lx.pos++
		ch, err := lx.escChar()
		if err != nil {
			return tok{}, err
		}
		if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
			return tok{}, lx.errf("unterminated char literal")
		}
		lx.pos++
		return tok{kind: tChar, text: string(ch), line: lx.line}, nil

	default:
		if lx.pos+1 < len(lx.src) {
			two := lx.src[lx.pos : lx.pos+2]
			if punct2[two] {
				lx.pos += 2
				return tok{kind: tPunct, text: two, line: lx.line}, nil
			}
		}
		if strings.IndexByte("+-*/%<>=!&|^~()[]{};,.?:", c) >= 0 {
			lx.pos++
			return tok{kind: tPunct, text: string(c), line: lx.line}, nil
		}
		return tok{}, lx.errf("unexpected character %q", c)
	}
}

func (lx *lexer) escChar() (byte, error) {
	c := lx.src[lx.pos]
	if c != '\\' {
		if c == '\n' {
			return 0, lx.errf("newline in literal")
		}
		lx.pos++
		return c, nil
	}
	lx.pos++
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("truncated escape")
	}
	e := lx.src[lx.pos]
	lx.pos++
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, lx.errf("bad escape \\%c", e)
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isHexDigit(c byte) bool {
	return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
