package minic

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/passes"
)

// compileRun compiles MiniC source, verifies the module, runs main, and
// returns (exit value, output).
func compileRun(t *testing.T, src string) (int64, string, *core.Module) {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	var out bytes.Buffer
	mc, err := interp.NewMachine(m, &out)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	v, err := mc.RunMain()
	if err != nil {
		t.Fatalf("run: %v\noutput: %s\nmodule:\n%s", err, out.String(), m)
	}
	return v, out.String(), m
}

func TestReturnConstant(t *testing.T) {
	v, _, _ := compileRun(t, "int main() { return 42; }")
	if v != 42 {
		t.Fatalf("got %d", v)
	}
}

func TestArithmeticAndLocals(t *testing.T) {
	v, _, _ := compileRun(t, `
int main() {
	int a = 6;
	int b = 7;
	int c = a * b + 10 / 2 - 5;
	return c;
}`)
	if v != 42 {
		t.Fatalf("got %d", v)
	}
}

func TestControlFlow(t *testing.T) {
	v, _, _ := compileRun(t, `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) s = s + i;
	}
	while (s > 25) s--;
	do { s++; } while (s < 26);
	return s;
}`)
	// evens 0+2+4+6+8 = 20; while skipped (20<=25); do-while: to 26.
	if v != 26 {
		t.Fatalf("got %d", v)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	v, _, _ := compileRun(t, `
static int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(15); }`)
	if v != 610 {
		t.Fatalf("fib(15) = %d", v)
	}
}

func TestPointersAndArrays(t *testing.T) {
	v, _, _ := compileRun(t, `
int sum(int *a, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += a[i];
	return s;
}
int main() {
	int data[5] = {1, 2, 3, 4, 5};
	int *p = data;
	*p = 10;
	p[1] = 20;
	*(p + 2) = 30;
	return sum(data, 5);
}`)
	if v != 69 {
		t.Fatalf("got %d", v)
	}
}

func TestStructsAndLinkedList(t *testing.T) {
	v, _, _ := compileRun(t, `
struct node {
	int value;
	struct node *next;
};

int main() {
	struct node *head = 0;
	int i;
	for (i = 1; i <= 5; i++) {
		struct node *n = (struct node*)malloc(sizeof(struct node));
		n->value = i * i;
		n->next = head;
		head = n;
	}
	int total = 0;
	struct node *cur = head;
	while (cur) {
		total += cur->value;
		struct node *dead = cur;
		cur = cur->next;
		free(dead);
	}
	return total;
}`)
	if v != 55 {
		t.Fatalf("sum of squares = %d", v)
	}
}

func TestTypedMallocRaising(t *testing.T) {
	// (T*)malloc(sizeof(T)) must become a typed malloc instruction.
	_, _, m := compileRun(t, `
struct pair { int a; int b; };
int main() {
	struct pair *p = (struct pair*)malloc(sizeof(struct pair));
	p->a = 1;
	int r = p->a;
	free(p);
	return r;
}`)
	var typed bool
	m.Func("main").ForEachInst(func(inst core.Instruction) bool {
		if mi, ok := inst.(*core.MallocInst); ok {
			if mi.AllocType.Kind() == core.StructKind {
				typed = true
			}
		}
		return true
	})
	if !typed {
		t.Fatalf("malloc not raised to typed form:\n%s", m)
	}
}

func TestRawMallocStaysBytes(t *testing.T) {
	_, _, m := compileRun(t, `
int main() {
	char *buf = malloc(100);
	buf[0] = 7;
	int r = buf[0];
	free(buf);
	return r;
}`)
	var sawByteMalloc bool
	m.Func("main").ForEachInst(func(inst core.Instruction) bool {
		if mi, ok := inst.(*core.MallocInst); ok && mi.AllocType == core.Type(core.SByteType) {
			sawByteMalloc = true
		}
		return true
	})
	if !sawByteMalloc {
		t.Fatalf("raw malloc(100) should be byte allocation:\n%s", m)
	}
}

func TestGlobalsAndStrings(t *testing.T) {
	v, out, _ := compileRun(t, `
extern int printf(char *fmt, ...);
int counter = 10;
int table[4] = {1, 2, 3, 4};

int main() {
	counter += table[2];
	printf("counter=%d\n", counter);
	return counter;
}`)
	if v != 13 {
		t.Fatalf("got %d", v)
	}
	if out != "counter=13\n" {
		t.Fatalf("output %q", out)
	}
}

func TestShortCircuit(t *testing.T) {
	v, _, _ := compileRun(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
	int a = 0 && bump();
	int b = 1 || bump();
	if (calls != 0) return 100;
	int c = 1 && bump();
	int d = 0 || bump();
	if (calls != 2) return 200;
	return a * 1000 + b * 100 + c * 10 + d;
}`)
	if v != 111 {
		t.Fatalf("short circuit: got %d", v)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `
int classify(int x) {
	int r = 0;
	switch (x) {
	case 1:
		r += 1;
	case 2:
		r += 2;
		break;
	case 3:
		r += 100;
		break;
	default:
		r = -1;
	}
	return r;
}
int main() { return classify(%d); }
`
	cases := map[int]int64{1: 3, 2: 2, 3: 100, 9: -1}
	for in, want := range cases {
		v, _, _ := compileRun(t, strings.Replace(src, "%d", itoa(in), 1))
		if v != want {
			t.Fatalf("classify(%d) = %d, want %d", in, v, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFunctionPointers(t *testing.T) {
	v, _, _ := compileRun(t, `
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }
int apply(int (*f)(int), int x) { return f(x); }
int main() {
	int (*op)(int) = twice;
	int a = apply(op, 10);
	op = thrice;
	int b = op(10);
	return a + b;
}`)
	if v != 50 {
		t.Fatalf("function pointers: got %d", v)
	}
}

func TestCastsAndUnsigned(t *testing.T) {
	v, _, _ := compileRun(t, `
int main() {
	unsigned int u = (unsigned int)-1;
	u = u >> 24;
	char c = (char)300;
	long big = (long)1000000 * 1000000;
	int lo = (int)(big % 1000);
	return (int)u + c + lo;
}`)
	// u>>24 = 255; (char)300 = 44; big%1000 = 0.
	if v != 299 {
		t.Fatalf("got %d", v)
	}
}

func TestSizeofAndComments(t *testing.T) {
	v, _, _ := compileRun(t, `
// line comment
/* block
   comment */
struct big { double d; int i; char c; };
int main() {
	return sizeof(int) + sizeof(char*) + sizeof(struct big);
}`)
	// 4 + 8 + 16 = 28 ({double,int,char} pads to 16)
	if v != 28 {
		t.Fatalf("sizeof sums = %d", v)
	}
}

func TestNestedStructsAndMatrix(t *testing.T) {
	v, _, _ := compileRun(t, `
struct point { int x; int y; };
struct rect { struct point min; struct point max; };

int area(struct rect *r) {
	return (r->max.x - r->min.x) * (r->max.y - r->min.y);
}

int main() {
	struct rect r;
	r.min.x = 1; r.min.y = 2;
	r.max.x = 5; r.max.y = 10;
	int m[3][3];
	int i; int j;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 3; j++)
			m[i][j] = i * 3 + j;
	return area(&r) + m[2][2];
}`)
	if v != 40 {
		t.Fatalf("got %d", v)
	}
}

func TestFloatArithmetic(t *testing.T) {
	v, _, _ := compileRun(t, `
double avg(double a, double b) { return (a + b) / 2.0; }
int main() {
	double x = avg(3.0, 4.0);
	float f = (float)x;
	return (int)(x * 10.0) + (int)f;
}`)
	if v != 38 {
		t.Fatalf("got %d", v)
	}
}

func TestBreakContinue(t *testing.T) {
	v, _, _ := compileRun(t, `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 100; i++) {
		if (i == 10) break;
		if (i % 2) continue;
		s += i;
	}
	return s;
}`)
	if v != 20 {
		t.Fatalf("got %d", v)
	}
}

func TestOptimizedMiniCProgramSameResult(t *testing.T) {
	src := `
static int work(int n) {
	int acc = 0;
	int i;
	for (i = 0; i < n; i++) {
		int t = i * i;
		acc += t - (i * i) + i;
	}
	return acc;
}
int main() { return work(100); }
`
	m1, err := Compile("raw", src)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Compile("opt", src)
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewPassManager()
	pm.VerifyEach = true
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(m2); err != nil {
		t.Fatal(err)
	}
	mc1, _ := interp.NewMachine(m1, nil)
	mc2, _ := interp.NewMachine(m2, nil)
	v1, err1 := mc1.RunMain()
	v2, err2 := mc2.RunMain()
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if v1 != v2 || v1 != 4950 {
		t.Fatalf("results differ: %d vs %d", v1, v2)
	}
	if mc2.Steps >= mc1.Steps {
		t.Errorf("optimization did not reduce work: %d vs %d", mc2.Steps, mc1.Steps)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { undeclared(); return 0; }",
		"int main() { struct nope *p; return 0; }",
		"int main() { int x = \"str\" }",
	}
	for _, src := range cases {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	v, _, _ := compileRun(t, `
int main() {
	int x = 10;
	x += 5;
	x -= 3;
	x *= 2;
	x /= 4;
	x %= 5;
	int y = x++;
	int z = ++x;
	return x * 100 + y * 10 + z;
}`)
	// x: 10+5=15-3=12*2=24/4=6%5=1; y=1 (x=2); z=3 (x=3) => 313.
	if v != 313 {
		t.Fatalf("got %d", v)
	}
}

func TestStaticLinkage(t *testing.T) {
	_, _, m := compileRun(t, `
static int hidden() { return 1; }
static int g = 5;
int main() { return hidden() + g - 6; }`)
	if m.Func("hidden").Linkage != core.InternalLinkage {
		t.Error("static function not internal")
	}
	if m.Global("g").Linkage != core.InternalLinkage {
		t.Error("static global not internal")
	}
}

func TestArrayIndexingKeepsArrayType(t *testing.T) {
	// table[i] must index the [N x int] type directly (not decay to int*),
	// so bounds information survives into the IR (§3.2 "expose arrays").
	_, _, m := compileRun(t, `
int table[10];
int main() {
	int i;
	for (i = 0; i < 10; i++) table[i] = i;
	return table[9];
}`)
	sawArrayGEP := false
	m.Func("main").ForEachInst(func(inst core.Instruction) bool {
		if gep, ok := inst.(*core.GetElementPtrInst); ok {
			if pt, ok := gep.Base().Type().(*core.PointerType); ok {
				if _, isArr := pt.Elem.(*core.ArrayType); isArr && len(gep.Indices()) == 2 {
					sawArrayGEP = true
				}
			}
		}
		return true
	})
	if !sawArrayGEP {
		t.Fatalf("array indexing decayed to pointer arithmetic:\n%s", m)
	}
}

func TestStructMemberArrayIndexing(t *testing.T) {
	v, _, _ := compileRun(t, `
struct buf { int len; int data[8]; };
int main() {
	struct buf b;
	b.len = 3;
	int i;
	for (i = 0; i < b.len; i++) b.data[i] = i * 10;
	return b.data[0] + b.data[1] + b.data[2] + b.len;
}`)
	if v != 33 {
		t.Fatalf("got %d", v)
	}
}

func TestPointerToStructArrayArrow(t *testing.T) {
	v, _, _ := compileRun(t, `
struct buf { int data[4]; };
int fill(struct buf *p) {
	int i;
	for (i = 0; i < 4; i++) p->data[i] = i + 1;
	return p->data[3];
}
int main() {
	struct buf b;
	return fill(&b);
}`)
	if v != 4 {
		t.Fatalf("got %d", v)
	}
}

func TestArrayParamStillDecays(t *testing.T) {
	// Array parameters are pointers in C; indexing them is pointer
	// arithmetic and must keep working.
	v, _, _ := compileRun(t, `
int sum(int a[], int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) s += a[i];
	return s;
}
int main() {
	int d[3] = {5, 6, 7};
	return sum(d, 3);
}`)
	if v != 18 {
		t.Fatalf("got %d", v)
	}
}
