package minic

import (
	"fmt"

	"repro/internal/core"
)

// Compile parses and translates MiniC source into an IR module. The output
// is unoptimized front-end code: locals are stack allocas, no SSA
// construction is performed (§3.2 of the paper: the stack promotion and
// scalar expansion passes build SSA later).
func Compile(moduleName, src string) (*core.Module, error) {
	decls, err := Parse(src)
	if err != nil {
		return nil, err
	}
	g := &irgen{
		m:       core.NewModule(moduleName),
		structs: map[string]*structInfo{},
		strings: map[string]*core.GlobalVariable{},
	}
	if err := g.program(decls); err != nil {
		return nil, err
	}
	return g.m, nil
}

type structInfo struct {
	ty     *core.StructType
	fields map[string]int
}

type localVar struct {
	addr core.Value // alloca (or argument alloca)
	ty   core.Type  // variable type (pointee of addr)
}

type irgen struct {
	m       *core.Module
	structs map[string]*structInfo
	strings map[string]*core.GlobalVariable

	b         *core.Builder
	fn        *core.Function
	entry     *core.BasicBlock
	allocaPos int
	locals    []map[string]*localVar
	breaks    []*core.BasicBlock
	continues []*core.BasicBlock
	blockN    int
	strN      int
}

func (g *irgen) errf(format string, args ...interface{}) error {
	where := ""
	if g.fn != nil {
		where = " in function " + g.fn.Name()
	}
	return fmt.Errorf("minic%s: %s", where, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Types

func (g *irgen) resolveType(te *TypeExpr) (core.Type, error) {
	if te.IsFuncPtr {
		ret, err := g.resolveType(te.Ret)
		if err != nil {
			return nil, err
		}
		ft := &core.FunctionType{Ret: ret, Variadic: te.Variadic}
		for _, pt := range te.Params {
			p, err := g.resolveType(pt)
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, p)
		}
		return core.NewPointer(ft), nil
	}
	var t core.Type
	if te.IsStruct {
		si, ok := g.structs[te.Base]
		if !ok {
			return nil, g.errf("unknown struct %q", te.Base)
		}
		t = si.ty
	} else {
		switch te.Base {
		case "void":
			t = core.VoidType
		case "char":
			if te.Unsigned {
				t = core.UByteType
			} else {
				t = core.SByteType
			}
		case "short":
			if te.Unsigned {
				t = core.UShortType
			} else {
				t = core.ShortType
			}
		case "int":
			if te.Unsigned {
				t = core.UIntType
			} else {
				t = core.IntType
			}
		case "long":
			if te.Unsigned {
				t = core.ULongType
			} else {
				t = core.LongType
			}
		case "float":
			t = core.FloatType
		case "double":
			t = core.DoubleType
		default:
			return nil, g.errf("unknown type %q", te.Base)
		}
	}
	for i := 0; i < te.Ptr; i++ {
		t = core.NewPointer(t)
	}
	for i := len(te.ArrayLen) - 1; i >= 0; i-- {
		t = core.NewArray(t, te.ArrayLen[i])
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Top level

func (g *irgen) program(decls []Decl) error {
	// Structs first (single pass is enough: MiniC requires declaration
	// before use; self-references go through pointers which we patch).
	for _, d := range decls {
		sd, ok := d.(*StructDecl)
		if !ok {
			continue
		}
		st := &core.StructType{Name: sd.Name}
		g.m.AddTypeName(sd.Name, st)
		g.structs[sd.Name] = &structInfo{ty: st, fields: map[string]int{}}
	}
	for _, d := range decls {
		sd, ok := d.(*StructDecl)
		if !ok {
			continue
		}
		si := g.structs[sd.Name]
		for i, f := range sd.Fields {
			ft, err := g.resolveType(f.Type)
			if err != nil {
				return err
			}
			si.ty.Fields = append(si.ty.Fields, ft)
			si.fields[f.Name] = i
		}
	}

	// Function prototypes (so forward calls resolve).
	for _, d := range decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		if err := g.declareFunction(fd); err != nil {
			return err
		}
	}
	// Globals.
	for _, d := range decls {
		vd, ok := d.(*VarDecl)
		if !ok {
			continue
		}
		if err := g.globalVar(vd); err != nil {
			return err
		}
	}
	// Bodies.
	for _, d := range decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if err := g.functionBody(fd); err != nil {
			return err
		}
	}
	return nil
}

func (g *irgen) declareFunction(fd *FuncDecl) error {
	ret, err := g.resolveType(fd.Ret)
	if err != nil {
		return err
	}
	sig := &core.FunctionType{Ret: ret, Variadic: fd.Variadic}
	for _, p := range fd.Params {
		pt, err := g.resolveType(p.Type)
		if err != nil {
			return err
		}
		sig.Params = append(sig.Params, pt)
	}
	if existing := g.m.Func(fd.Name); existing != nil {
		if !core.TypesEqual(existing.Sig, sig) {
			return g.errf("conflicting declarations of %q", fd.Name)
		}
		return nil
	}
	f := core.NewFunction(fd.Name, sig)
	if fd.Static {
		f.Linkage = core.InternalLinkage
	}
	for i, p := range fd.Params {
		f.Args[i].SetName(p.Name)
	}
	g.m.AddFunc(f)
	return nil
}

func (g *irgen) globalVar(vd *VarDecl) error {
	t, err := g.resolveType(vd.Type)
	if err != nil {
		return err
	}
	var init core.Constant
	if !vd.Extern {
		init, err = g.constInit(t, vd.Init, vd.InitList)
		if err != nil {
			return err
		}
	}
	gv := core.NewGlobal(vd.Name, t, init)
	gv.IsConst = vd.Const
	if vd.Static {
		gv.Linkage = core.InternalLinkage
	}
	g.m.AddGlobal(gv)
	return nil
}

// constInit builds a global initializer.
func (g *irgen) constInit(t core.Type, init Expr, list []Expr) (core.Constant, error) {
	if init == nil && list == nil {
		return core.ZeroValueOf(t), nil
	}
	if list != nil {
		switch tt := t.(type) {
		case *core.ArrayType:
			elems := make([]core.Constant, tt.Len)
			for i := 0; i < tt.Len; i++ {
				if i < len(list) {
					e, err := g.constExpr(tt.Elem, list[i])
					if err != nil {
						return nil, err
					}
					elems[i] = e
				} else {
					elems[i] = core.ZeroValueOf(tt.Elem)
				}
			}
			return core.NewArrayConst(tt.Elem, elems), nil
		case *core.StructType:
			fields := make([]core.Constant, len(tt.Fields))
			for i := range tt.Fields {
				if i < len(list) {
					e, err := g.constExpr(tt.Fields[i], list[i])
					if err != nil {
						return nil, err
					}
					fields[i] = e
				} else {
					fields[i] = core.ZeroValueOf(tt.Fields[i])
				}
			}
			return core.NewStructConst(tt, fields), nil
		}
		return nil, g.errf("initializer list for non-aggregate type %s", t)
	}
	return g.constExpr(t, init)
}

// constExpr evaluates a compile-time constant expression.
func (g *irgen) constExpr(t core.Type, e Expr) (core.Constant, error) {
	switch x := e.(type) {
	case *IntLit:
		if core.IsFloatingPoint(t) {
			return core.NewFloat(t, float64(x.Val)), nil
		}
		if core.IsInteger(t) {
			return core.NewInt(t, x.Val), nil
		}
		if t.Kind() == core.PointerKind && x.Val == 0 {
			return core.NewNull(t.(*core.PointerType)), nil
		}
		if t.Kind() == core.BoolKind {
			return core.NewBool(x.Val != 0), nil
		}
	case *FloatLit:
		if core.IsFloatingPoint(t) {
			return core.NewFloat(t, x.Val), nil
		}
	case *StrLit:
		gv := g.stringGlobal(x.Val)
		return core.NewConstGEP(gv, core.NewInt(core.LongType, 0), core.NewInt(core.LongType, 0)), nil
	case *Unary:
		if x.Op == "-" {
			inner, err := g.constExpr(t, x.X)
			if err != nil {
				return nil, err
			}
			if ci, ok := inner.(*core.ConstantInt); ok {
				return core.NewInt(t, -ci.SExt()), nil
			}
			if cf, ok := inner.(*core.ConstantFloat); ok {
				return core.NewFloat(t, -cf.Val), nil
			}
		}
		if x.Op == "&" {
			if id, ok := x.X.(*Ident); ok {
				if gv := g.m.Global(id.Name); gv != nil {
					return gv, nil
				}
			}
		}
	case *SizeOf:
		st, err := g.resolveType(x.Type)
		if err != nil {
			return nil, err
		}
		return core.NewInt(t, int64(core.SizeOf(st))), nil
	case *Ident:
		if f := g.m.Func(x.Name); f != nil {
			return f, nil
		}
	}
	return nil, g.errf("unsupported constant initializer")
}

func (g *irgen) stringGlobal(s string) *core.GlobalVariable {
	if gv, ok := g.strings[s]; ok {
		return gv
	}
	g.strN++
	gv := core.NewGlobal(g.m.UniqueSymbol(fmt.Sprintf(".str%d", g.strN)), core.NewArray(core.SByteType, len(s)+1), core.NewString(s))
	gv.IsConst = true
	gv.Linkage = core.InternalLinkage
	g.m.AddGlobal(gv)
	g.strings[s] = gv
	return gv
}

// ---------------------------------------------------------------------------
// Function bodies

func (g *irgen) functionBody(fd *FuncDecl) error {
	f := g.m.Func(fd.Name)
	g.fn = f
	g.b = core.NewBuilder()
	g.entry = core.NewBlock("entry")
	f.AddBlock(g.entry)
	g.b.SetInsertPoint(g.entry)
	g.allocaPos = 0
	g.locals = []map[string]*localVar{{}}
	g.blockN = 0

	// Parameters get stack homes so they are assignable (mem2reg cleans
	// this up).
	for i, p := range fd.Params {
		if p.Name == "" {
			continue
		}
		a := g.newAlloca(f.Args[i].Type(), p.Name+".addr")
		g.b.CreateStore(f.Args[i], a)
		g.locals[0][p.Name] = &localVar{addr: a, ty: f.Args[i].Type()}
	}

	if err := g.block(fd.Body); err != nil {
		return err
	}
	// Implicit return.
	if g.b.Block().Terminator() == nil {
		if f.Sig.Ret == core.VoidType {
			g.b.CreateRet(nil)
		} else {
			g.b.CreateRet(core.ZeroValueOf(f.Sig.Ret))
		}
	}
	g.fn = nil
	return nil
}

// newAlloca inserts an alloca at the top of the entry block.
func (g *irgen) newAlloca(t core.Type, name string) *core.AllocaInst {
	a := core.NewAlloca(t, nil)
	a.SetName(name)
	g.entry.InsertAt(g.allocaPos, a)
	g.allocaPos++
	return a
}

func (g *irgen) newBlock(hint string) *core.BasicBlock {
	g.blockN++
	b := core.NewBlock(fmt.Sprintf("%s%d", hint, g.blockN))
	g.fn.AddBlock(b)
	return b
}

func (g *irgen) pushScope() { g.locals = append(g.locals, map[string]*localVar{}) }
func (g *irgen) popScope()  { g.locals = g.locals[:len(g.locals)-1] }

func (g *irgen) lookup(name string) *localVar {
	for i := len(g.locals) - 1; i >= 0; i-- {
		if v, ok := g.locals[i][name]; ok {
			return v
		}
	}
	return nil
}

// terminated reports whether the current block already ends control flow.
func (g *irgen) terminated() bool { return g.b.Block().Terminator() != nil }

// seal starts a fresh (unreachable) block if the current one is terminated,
// so statement generation can continue.
func (g *irgen) seal() {
	if g.terminated() {
		g.b.SetInsertPoint(g.newBlock("dead"))
	}
}

func (g *irgen) block(b *BlockStmt) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *irgen) stmt(s Stmt) error {
	g.seal()
	switch st := s.(type) {
	case *BlockStmt:
		return g.block(st)
	case *LocalDecl:
		return g.localDecl(st)
	case *ExprStmt:
		_, err := g.expr(st.X)
		return err
	case *ReturnStmt:
		if st.Value == nil {
			g.b.CreateRet(nil)
			return nil
		}
		v, err := g.expr(st.Value)
		if err != nil {
			return err
		}
		v, err = g.convert(v, g.fn.Sig.Ret)
		if err != nil {
			return err
		}
		g.b.CreateRet(v)
		return nil
	case *IfStmt:
		return g.ifStmt(st)
	case *WhileStmt:
		return g.whileStmt(st)
	case *DoWhileStmt:
		return g.doWhileStmt(st)
	case *ForStmt:
		return g.forStmt(st)
	case *BreakStmt:
		if len(g.breaks) == 0 {
			return g.errf("break outside loop/switch")
		}
		g.b.CreateBr(g.breaks[len(g.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(g.continues) == 0 {
			return g.errf("continue outside loop")
		}
		g.b.CreateBr(g.continues[len(g.continues)-1])
		return nil
	case *SwitchStmt:
		return g.switchStmt(st)
	}
	return g.errf("unhandled statement %T", s)
}

func (g *irgen) localDecl(st *LocalDecl) error {
	t, err := g.resolveType(st.Type)
	if err != nil {
		return err
	}
	a := g.newAlloca(t, st.Name)
	g.locals[len(g.locals)-1][st.Name] = &localVar{addr: a, ty: t}
	if st.Init != nil {
		v, err := g.expr(st.Init)
		if err != nil {
			return err
		}
		v, err = g.convert(v, t)
		if err != nil {
			return err
		}
		g.b.CreateStore(v, a)
	}
	if st.InitList != nil {
		at, ok := t.(*core.ArrayType)
		if !ok {
			return g.errf("initializer list for non-array local %q", st.Name)
		}
		for i, e := range st.InitList {
			v, err := g.expr(e)
			if err != nil {
				return err
			}
			v, err = g.convert(v, at.Elem)
			if err != nil {
				return err
			}
			p := g.b.CreateGEP(a, []core.Value{core.NewInt(core.LongType, 0), core.NewInt(core.LongType, int64(i))}, "")
			g.b.CreateStore(v, p)
		}
	}
	return nil
}

func (g *irgen) ifStmt(st *IfStmt) error {
	cond, err := g.condition(st.Cond)
	if err != nil {
		return err
	}
	thenB := g.newBlock("if.then")
	endB := g.newBlock("if.end")
	elseB := endB
	if st.Else != nil {
		elseB = g.newBlock("if.else")
	}
	g.b.CreateCondBr(cond, thenB, elseB)

	g.b.SetInsertPoint(thenB)
	if err := g.stmt(st.Then); err != nil {
		return err
	}
	if !g.terminated() {
		g.b.CreateBr(endB)
	}
	if st.Else != nil {
		g.b.SetInsertPoint(elseB)
		if err := g.stmt(st.Else); err != nil {
			return err
		}
		if !g.terminated() {
			g.b.CreateBr(endB)
		}
	}
	g.b.SetInsertPoint(endB)
	return nil
}

func (g *irgen) whileStmt(st *WhileStmt) error {
	condB := g.newBlock("while.cond")
	bodyB := g.newBlock("while.body")
	endB := g.newBlock("while.end")
	g.b.CreateBr(condB)
	g.b.SetInsertPoint(condB)
	cond, err := g.condition(st.Cond)
	if err != nil {
		return err
	}
	g.b.CreateCondBr(cond, bodyB, endB)

	g.breaks = append(g.breaks, endB)
	g.continues = append(g.continues, condB)
	g.b.SetInsertPoint(bodyB)
	if err := g.stmt(st.Body); err != nil {
		return err
	}
	if !g.terminated() {
		g.b.CreateBr(condB)
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.continues = g.continues[:len(g.continues)-1]
	g.b.SetInsertPoint(endB)
	return nil
}

func (g *irgen) doWhileStmt(st *DoWhileStmt) error {
	bodyB := g.newBlock("do.body")
	condB := g.newBlock("do.cond")
	endB := g.newBlock("do.end")
	g.b.CreateBr(bodyB)

	g.breaks = append(g.breaks, endB)
	g.continues = append(g.continues, condB)
	g.b.SetInsertPoint(bodyB)
	if err := g.stmt(st.Body); err != nil {
		return err
	}
	if !g.terminated() {
		g.b.CreateBr(condB)
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.continues = g.continues[:len(g.continues)-1]

	g.b.SetInsertPoint(condB)
	cond, err := g.condition(st.Cond)
	if err != nil {
		return err
	}
	g.b.CreateCondBr(cond, bodyB, endB)
	g.b.SetInsertPoint(endB)
	return nil
}

func (g *irgen) forStmt(st *ForStmt) error {
	g.pushScope()
	defer g.popScope()
	if st.Init != nil {
		if err := g.stmt(st.Init); err != nil {
			return err
		}
	}
	condB := g.newBlock("for.cond")
	bodyB := g.newBlock("for.body")
	postB := g.newBlock("for.post")
	endB := g.newBlock("for.end")
	g.b.CreateBr(condB)

	g.b.SetInsertPoint(condB)
	if st.Cond != nil {
		cond, err := g.condition(st.Cond)
		if err != nil {
			return err
		}
		g.b.CreateCondBr(cond, bodyB, endB)
	} else {
		g.b.CreateBr(bodyB)
	}

	g.breaks = append(g.breaks, endB)
	g.continues = append(g.continues, postB)
	g.b.SetInsertPoint(bodyB)
	if err := g.stmt(st.Body); err != nil {
		return err
	}
	if !g.terminated() {
		g.b.CreateBr(postB)
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.continues = g.continues[:len(g.continues)-1]

	g.b.SetInsertPoint(postB)
	if st.Post != nil {
		if _, err := g.expr(st.Post); err != nil {
			return err
		}
	}
	g.b.CreateBr(condB)
	g.b.SetInsertPoint(endB)
	return nil
}

func (g *irgen) switchStmt(st *SwitchStmt) error {
	v, err := g.expr(st.Value)
	if err != nil {
		return err
	}
	if !core.IsInteger(v.Type()) {
		return g.errf("switch on non-integer")
	}
	endB := g.newBlock("sw.end")

	// Arms in source order (cases with default spliced at DefaultPos).
	type arm struct {
		body    []Stmt
		block   *core.BasicBlock
		caseVal *core.ConstantInt
	}
	var arms []arm
	for i, c := range st.Cases {
		if i == st.DefaultPos && st.Default != nil {
			arms = append(arms, arm{body: st.Default, block: g.newBlock("sw.default")})
		}
		arms = append(arms, arm{body: c.Body, block: g.newBlock("sw.case"),
			caseVal: core.NewInt(v.Type(), c.Value)})
	}
	if st.DefaultPos >= len(st.Cases) && st.Default != nil {
		arms = append(arms, arm{body: st.Default, block: g.newBlock("sw.default")})
	}

	defaultB := endB
	for _, a := range arms {
		if a.caseVal == nil {
			defaultB = a.block
		}
	}
	sw := g.b.CreateSwitch(v, defaultB)
	for _, a := range arms {
		if a.caseVal != nil {
			sw.AddCase(a.caseVal, a.block)
		}
	}

	g.breaks = append(g.breaks, endB)
	for i, a := range arms {
		g.b.SetInsertPoint(a.block)
		for _, s := range a.body {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		if !g.terminated() {
			// C fallthrough into the next arm (or the end).
			if i+1 < len(arms) {
				g.b.CreateBr(arms[i+1].block)
			} else {
				g.b.CreateBr(endB)
			}
		}
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.b.SetInsertPoint(endB)
	return nil
}
