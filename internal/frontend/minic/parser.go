package minic

import (
	"fmt"
	"strconv"
)

// Parse turns MiniC source into an AST.
func Parse(src string) ([]Decl, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var decls []Decl
	for !p.atEOF() {
		d, err := p.parseTopLevel()
		if err != nil {
			return nil, err
		}
		if d != nil {
			decls = append(decls, d)
		}
	}
	return decls, nil
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) cur() tok    { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tEOF }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("minic: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) atPunct(s string) bool { return p.cur().kind == tPunct && p.cur().text == s }
func (p *parser) atKw(s string) bool    { return p.cur().kind == tKeyword && p.cur().text == s }

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) eatKw(s string) bool {
	if p.atKw(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tIdent {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	return p.advance().text, nil
}

// atTypeStart reports whether the current token can begin a type.
func (p *parser) atTypeStart() bool {
	if p.cur().kind != tKeyword {
		return false
	}
	switch p.cur().text {
	case "void", "char", "short", "int", "long", "float", "double",
		"unsigned", "signed", "struct", "const":
		return true
	}
	return false
}

// parseBaseType parses the type-specifier part (no declarator).
func (p *parser) parseBaseType() (*TypeExpr, error) {
	p.eatKw("const")
	te := &TypeExpr{}
	if p.eatKw("unsigned") {
		te.Unsigned = true
	} else if p.eatKw("signed") {
		// default
	}
	switch {
	case p.eatKw("struct"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		te.Base = name
		te.IsStruct = true
	case p.cur().kind == tKeyword:
		switch p.cur().text {
		case "void", "char", "short", "int", "long", "float", "double":
			te.Base = p.advance().text
			// "long long" and "unsigned long" combinations.
			if te.Base == "long" && p.atKw("long") {
				p.advance()
			}
			if te.Base == "long" && p.atKw("int") {
				p.advance()
			}
		default:
			return nil, p.errf("expected type, got %q", p.cur().text)
		}
	default:
		if te.Unsigned {
			te.Base = "int" // bare "unsigned"
		} else {
			return nil, p.errf("expected type, got %q", p.cur().text)
		}
	}
	return te, nil
}

// parseAbstractType parses a full type with pointers (for casts/sizeof):
// base '*'*.
func (p *parser) parseAbstractType() (*TypeExpr, error) {
	te, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("*") {
		te = cloneType(te)
		te.Ptr++
	}
	return te, nil
}

func cloneType(t *TypeExpr) *TypeExpr {
	c := *t
	c.ArrayLen = append([]int(nil), t.ArrayLen...)
	return &c
}

// parseDeclarator parses '*'* (name | '(' '*' name ')' '(' params ')')
// '[' N ']'* against the given base type. Returns the declared name and
// final type.
func (p *parser) parseDeclarator(base *TypeExpr) (string, *TypeExpr, error) {
	t := cloneType(base)
	for p.eatPunct("*") {
		t.Ptr++
	}
	// Function pointer: ( * name ) ( params )
	if p.atPunct("(") {
		save := p.pos
		p.advance()
		if p.eatPunct("*") {
			name, err := p.expectIdent()
			if err != nil {
				return "", nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return "", nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return "", nil, err
			}
			fp := &TypeExpr{IsFuncPtr: true, Ret: t}
			for !p.atPunct(")") {
				if len(fp.Params) > 0 {
					if err := p.expectPunct(","); err != nil {
						return "", nil, err
					}
				}
				if p.atPunct(".") || p.cur().text == "." {
					return "", nil, p.errf("unexpected token in parameter list")
				}
				if p.cur().kind == tPunct && p.cur().text == "." {
					break
				}
				pt, err := p.parseAbstractType()
				if err != nil {
					return "", nil, err
				}
				// Parameter name is optional in prototypes.
				if p.cur().kind == tIdent {
					p.advance()
				}
				fp.Params = append(fp.Params, pt)
			}
			if err := p.expectPunct(")"); err != nil {
				return "", nil, err
			}
			return name, fp, nil
		}
		p.pos = save
	}
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	for p.eatPunct("[") {
		if p.eatPunct("]") {
			// Unsized dimension (parameter syntax): decays to a pointer.
			if len(t.ArrayLen) > 0 || p.atPunct("[") {
				return "", nil, p.errf("unsized dimension only allowed as the sole dimension")
			}
			t.Ptr++
			return name, t, nil
		}
		if p.cur().kind != tInt {
			return "", nil, p.errf("expected array length")
		}
		n, _ := strconv.Atoi(p.advance().text)
		if err := p.expectPunct("]"); err != nil {
			return "", nil, err
		}
		t.ArrayLen = append(t.ArrayLen, n)
	}
	return name, t, nil
}

func (p *parser) parseTopLevel() (Decl, error) {
	// struct declaration?
	if p.atKw("struct") && p.pos+2 < len(p.toks) && p.toks[p.pos+2].text == "{" {
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		sd := &StructDecl{Name: name}
		for !p.atPunct("}") {
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			for {
				fname, ft, err := p.parseDeclarator(base)
				if err != nil {
					return nil, err
				}
				sd.Fields = append(sd.Fields, Param{Name: fname, Type: ft})
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
		p.advance() // }
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return sd, nil
	}

	extern := p.eatKw("extern")
	static := p.eatKw("static")
	isConst := p.atKw("const")
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	name, t, err := p.parseDeclarator(base)
	if err != nil {
		return nil, err
	}

	// Function?
	if p.atPunct("(") && !t.IsFuncPtr {
		return p.parseFunctionRest(name, t, extern, static)
	}

	vd := &VarDecl{Name: name, Type: t, Extern: extern, Static: static, Const: isConst}
	if p.eatPunct("=") {
		if p.atPunct("{") {
			p.advance()
			for !p.atPunct("}") {
				if len(vd.InitList) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				vd.InitList = append(vd.InitList, e)
			}
			p.advance()
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *parser) parseFunctionRest(name string, ret *TypeExpr, extern, static bool) (Decl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name, Ret: ret, Extern: extern, Static: static}
	if p.atKw("void") && p.toks[p.pos+1].text == ")" {
		p.advance() // f(void)
	}
	for !p.atPunct(")") {
		if len(fd.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		if p.atPunct(".") {
			// "..." is lexed as three dots.
			p.advance()
			if !p.eatPunct(".") || !p.eatPunct(".") {
				return nil, p.errf("expected '...'")
			}
			fd.Variadic = true
			break
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if p.atPunct(")") || p.atPunct(",") {
			// Unnamed prototype parameter.
			fd.Params = append(fd.Params, Param{Type: base})
			continue
		}
		pname, pt, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		// Array parameters decay to pointers.
		if len(pt.ArrayLen) > 0 {
			pt = cloneType(pt)
			pt.ArrayLen = pt.ArrayLen[1:]
			pt.Ptr++
		}
		fd.Params = append(fd.Params, Param{Name: pname, Type: pt})
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.eatPunct(";") {
		return fd, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.atPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atKw("if"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.eatKw("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.atKw("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.atKw("do"):
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.eatKw("while") {
			return nil, p.errf("expected 'while' after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, nil
	case p.atKw("for"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &ForStmt{}
		if !p.atPunct(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.atKw("return"):
		p.advance()
		st := &ReturnStmt{}
		if !p.atPunct(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.atKw("break"):
		p.advance()
		return &BreakStmt{}, p.expectPunct(";")
	case p.atKw("continue"):
		p.advance()
		return &ContinueStmt{}, p.expectPunct(";")
	case p.atKw("switch"):
		return p.parseSwitch()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")
	}
}

// parseSimpleStmt parses a local declaration or expression (no ';').
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.atTypeStart() {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		name, t, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		ld := &LocalDecl{Name: name, Type: t}
		if p.eatPunct("=") {
			if p.atPunct("{") {
				p.advance()
				for !p.atPunct("}") {
					if len(ld.InitList) > 0 {
						if err := p.expectPunct(","); err != nil {
							return nil, err
						}
					}
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					ld.InitList = append(ld.InitList, e)
				}
				p.advance()
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ld.Init = e
			}
		}
		return ld, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e}, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Value: v, DefaultPos: -1}
	for !p.atPunct("}") {
		switch {
		case p.eatKw("case"):
			neg := p.eatPunct("-")
			if p.cur().kind != tInt && p.cur().kind != tChar {
				return nil, p.errf("expected case constant")
			}
			ct := p.advance()
			var cv int64
			if ct.kind == tChar {
				cv = int64(ct.text[0])
			} else {
				cv, _ = strconv.ParseInt(ct.text, 0, 64)
			}
			if neg {
				cv = -cv
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: cv, Body: body})
		case p.eatKw("default"):
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
			st.DefaultPos = len(st.Cases)
		default:
			return nil, p.errf("expected 'case' or 'default' in switch, got %q", p.cur().text)
		}
	}
	p.advance()
	if st.DefaultPos < 0 {
		st.DefaultPos = len(st.Cases)
	}
	return st, nil
}

func (p *parser) parseCaseBody() ([]Stmt, error) {
	var out []Stmt
	for !p.atKw("case") && !p.atKw("default") && !p.atPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated switch")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^",
}

func (p *parser) parseAssign() (Expr, error) {
	l, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.atPunct("=") {
		p.advance()
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{L: l, R: r}, nil
	}
	if p.cur().kind == tPunct {
		if base, ok := compoundOps[p.cur().text]; ok {
			p.advance()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: base, L: l, R: r}, nil
		}
	}
	return l, nil
}

// Binary precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.atPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.advance()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: matched, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.atPunct("-") || p.atPunct("!") || p.atPunct("~") || p.atPunct("*") || p.atPunct("&"):
		op := p.advance().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	case p.atPunct("++") || p.atPunct("--"):
		op := p.advance().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	case p.atKw("sizeof"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		t, err := p.parseAbstractType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &SizeOf{Type: t}, nil
	case p.atPunct("("):
		// Cast or parenthesized expression.
		save := p.pos
		p.advance()
		if p.atTypeStart() {
			t, err := p.parseAbstractType()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: t, X: x}, nil
		}
		p.pos = save
		return p.parsePostfix()
	default:
		return p.parsePostfix()
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("("):
			p.advance()
			call := &Call{Fun: x}
			for !p.atPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.advance()
			x = call
		case p.atPunct("["):
			p.advance()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: i}
		case p.atPunct("."):
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name}
		case p.atPunct("->"):
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name, Arrow: true}
		case p.atPunct("++") || p.atPunct("--"):
			op := p.advance().text
			x = &Unary{Op: op, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(t.text, 0, 64)
			if uerr != nil {
				return nil, p.errf("bad integer %q", t.text)
			}
			v = int64(u)
		}
		return &IntLit{Val: v}, nil
	case tFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return &FloatLit{Val: v}, nil
	case tStr:
		p.advance()
		return &StrLit{Val: t.text}, nil
	case tChar:
		p.advance()
		return &IntLit{Val: int64(t.text[0])}, nil
	case tIdent:
		p.advance()
		return &Ident{Name: t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
