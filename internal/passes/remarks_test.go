package passes_test

// Golden determinism for the optimization-remark stream: the rendered
// remarks from a full standard-pipeline run must be byte-identical at any
// worker count and across repeated runs. One pass execution hands each
// function to exactly one worker, and Remarks.Sorted orders by (pass run,
// function), so scheduling must never leak into the stream.

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/tooling"
	"repro/internal/workload"
)

// runStdRemarks runs the standard pipeline over m at the given parallelism
// and returns the rendered remark stream.
func runStdRemarks(t testing.TB, m *core.Module, parallelism int) string {
	t.Helper()
	pm := passes.NewPassManager()
	pm.Parallelism = parallelism
	pm.Remarks = obs.NewRemarks()
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pipeline (j=%d): %v", parallelism, err)
	}
	var buf bytes.Buffer
	if err := obs.WriteRemarksText(&buf, pm.Remarks.Sorted()); err != nil {
		t.Fatalf("rendering remarks: %v", err)
	}
	return buf.String()
}

// TestRemarkDeterminismWorkload pins the remark stream over the synthetic
// workload suite: byte-identical at -j1 vs -j8 and across two -j8 runs.
func TestRemarkDeterminismWorkload(t *testing.T) {
	for _, p := range workload.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			serial := runStdRemarks(t, buildRaw(t, p), 1)
			par1 := runStdRemarks(t, buildRaw(t, p), 8)
			par2 := runStdRemarks(t, buildRaw(t, p), 8)
			if serial != par1 {
				t.Errorf("remarks differ between -j1 and -j8 (%d vs %d bytes)",
					len(serial), len(par1))
			}
			if par1 != par2 {
				t.Errorf("remarks differ across two -j8 runs (%d vs %d bytes)",
					len(par1), len(par2))
			}
			if serial == "" {
				t.Error("standard pipeline emitted no remarks over a real workload")
			}
		})
	}
}

// TestRemarkDeterminismExamples runs the same check over the checked-in
// example modules, which exercise the allocas, loops, and redundancy the
// remark-emitting passes report on.
func TestRemarkDeterminismExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/checker/*.ll")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example modules found: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			t.Parallel()
			load := func() *core.Module {
				m, err := tooling.LoadModule(file)
				if err != nil {
					t.Fatalf("loading %s: %v", file, err)
				}
				return m
			}
			serial := runStdRemarks(t, load(), 1)
			par1 := runStdRemarks(t, load(), 8)
			par2 := runStdRemarks(t, load(), 8)
			if serial != par1 {
				t.Errorf("remarks differ between -j1 and -j8:\n--- j1 ---\n%s--- j8 ---\n%s", serial, par1)
			}
			if par1 != par2 {
				t.Error("remarks differ across two -j8 runs")
			}
		})
	}
}
