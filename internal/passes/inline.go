package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
)

// DefaultInlineThreshold is the callee size (in instructions) below which
// call sites are inlined unconditionally.
const DefaultInlineThreshold = 40

// maxCallerGrowth caps how large a caller may grow through inlining.
const maxCallerGrowth = 3000

// Inline is the function integration pass the paper times in Table 2. It
// processes functions bottom-up over the call graph, splicing callee bodies
// into direct call sites when the callee is small (or has a single caller
// and internal linkage), and deletes internal functions left without
// references — the paper reports "inline inlines 1368 functions (deleting
// 438 which are no longer referenced) in 176.gcc".
type Inline struct {
	Threshold int
	// SingleCallerAlways integrates internal functions with exactly one
	// call site regardless of size (they disappear afterwards, so code
	// never grows). On by default; the ablation bench disables it to
	// isolate the threshold's effect.
	SingleCallerAlways bool
	// NumInlined and NumDeleted report what the last run did.
	NumInlined int
	NumDeleted int

	rem *obs.Remarks
}

// NewInline returns the pass with the given size threshold.
func NewInline(threshold int) *Inline {
	return &Inline{Threshold: threshold, SingleCallerAlways: true}
}

// Name returns the pass name.
func (*Inline) Name() string { return "inline" }

// Preserves: nothing — inlining splices blocks into callers and deletes
// functions, invalidating CFG analyses and the call graph alike.
func (*Inline) Preserves() analysis.Preserved { return analysis.PreserveNone }

func (inl *Inline) setRemarks(r *obs.Remarks) { inl.rem = r }

// RunOnModule inlines eligible call sites and removes dead internal
// functions; the returned count is sites inlined plus functions deleted.
func (inl *Inline) RunOnModule(m *core.Module) int {
	return inl.runOnModuleWith(m, nil)
}

func (inl *Inline) runOnModuleWith(m *core.Module, am *analysis.Manager) int {
	inl.NumInlined, inl.NumDeleted = 0, 0
	cg := am.CallGraph(m)
	order := cg.PostOrder()

	for _, caller := range order {
		if caller.IsDeclaration() {
			continue
		}
		// Snapshot call sites; inlining appends blocks.
		for {
			site := inl.findSite(caller)
			if site == nil {
				break
			}
			callee := core.CalledFunctionOf(site)
			switch s := site.(type) {
			case *core.CallInst:
				InlineCall(s)
				inl.NumInlined++
			case *core.InvokeInst:
				if !InlineInvoke(s) {
					// Not safely inlinable after all; stop scanning this
					// caller rather than loop on the same site.
					goto nextCaller
				}
				inl.NumInlined++
			}
			if inl.rem.Enabled() && callee != nil {
				inl.rem.Appliedf("inline", diag.Pos{Fn: caller.Name()},
					"inlined call to %%%s (%d instructions)", callee.Name(), callee.NumInstructions())
			}
		}
	nextCaller:
	}

	// Delete internal functions with no remaining references (references
	// from global initializers do not appear in use lists, so consult the
	// address-taken scan too).
	for changed := true; changed; {
		changed = false
		taken := analysis.AddressTakenFunctions(m)
		for _, f := range append([]*core.Function(nil), m.Funcs...) {
			if f.Linkage == core.InternalLinkage && !core.HasUses(f) && !taken[f] && !f.IsDeclaration() {
				if inl.rem.Enabled() {
					inl.rem.Analysisf("inline", diag.Pos{Fn: f.Name()},
						"deleted internal function: no references remain after inlining")
				}
				dropFunctionBody(f)
				m.RemoveFunc(f)
				inl.NumDeleted++
				changed = true
			}
		}
	}
	if inl.rem.Enabled() {
		inl.reportMissed(m)
	}
	return inl.NumInlined + inl.NumDeleted
}

// reportMissed scans the call sites that survived inlining and records why
// each defined callee was left alone.
func (inl *Inline) reportMissed(m *core.Module) {
	for _, caller := range m.Funcs {
		if caller.IsDeclaration() {
			continue
		}
		caller.ForEachInst(func(inst core.Instruction) bool {
			switch inst.(type) {
			case *core.CallInst, *core.InvokeInst:
			default:
				return true
			}
			callee := core.CalledFunctionOf(inst)
			if callee == nil || callee.IsDeclaration() || callee == caller {
				return true
			}
			pos := diag.Pos{Fn: caller.Name(), Block: inst.Parent().Name()}
			switch {
			case callee.Sig.Variadic:
				inl.rem.Missedf("inline", pos, "not inlining %%%s: variadic callee", callee.Name())
			case callee.NumInstructions() > inl.Threshold:
				inl.rem.Missedf("inline", pos, "not inlining %%%s: size %d exceeds threshold %d",
					callee.Name(), callee.NumInstructions(), inl.Threshold)
			}
			return true
		})
	}
}

// findSite returns the next inlinable call or invoke site in caller, or nil.
func (inl *Inline) findSite(caller *core.Function) core.Instruction {
	if caller.NumInstructions() > maxCallerGrowth {
		return nil
	}
	var found core.Instruction
	caller.ForEachInst(func(inst core.Instruction) bool {
		switch inst.(type) {
		case *core.CallInst, *core.InvokeInst:
		default:
			return true
		}
		call := inst
		callee := core.CalledFunctionOf(inst)
		if callee == nil || callee.IsDeclaration() || callee == caller {
			return true
		}
		if callee.Sig.Variadic {
			return true // vaarg lowering is call-frame-specific
		}
		size := callee.NumInstructions()
		single := inl.SingleCallerAlways && callee.Linkage == core.InternalLinkage &&
			len(callee.Callers()) == 1 && !callee.HasAddressTaken()
		if size <= inl.Threshold || (single && size <= maxCallerGrowth) {
			// Invoke sites are only attempted when the quick result-use
			// precondition of InlineInvoke can hold.
			_ = call
			// Self-recursive callees never shrink; skip them.
			for _, cs := range callee.Callers() {
				if cs.Parent() != nil && cs.Parent().Parent() == callee {
					return true
				}
			}
			found = call
			return false
		}
		return true
	})
	return found
}

// InlineCall splices the body of the (direct, non-variadic) callee into the
// call site. The call instruction is destroyed.
func InlineCall(call *core.CallInst) {
	callee := call.CalledFunction()
	caller := call.Parent().Parent()
	callBlock := call.Parent()

	// Split the block after the call.
	after := core.NewBlock(callBlock.Name() + ".after")
	caller.InsertBlockAfter(after, callBlock)
	idx := callBlock.IndexOf(call)
	tail := append([]core.Instruction(nil), callBlock.Instrs[idx+1:]...)
	for _, inst := range tail {
		callBlock.Remove(inst)
		after.Append(inst)
	}
	// Phis in old successors now see 'after' as the predecessor.
	for _, u := range append([]core.Use(nil), callBlock.Uses()...) {
		if phi, ok := u.User.(*core.PhiInst); ok && phi.Parent() != nil {
			phi.SetOperand(u.Index, after)
		}
	}

	// Clone the callee with arguments bound.
	vmap := map[core.Value]core.Value{}
	for i, a := range callee.Args {
		vmap[a] = call.Args()[i]
	}
	clones := core.CloneBlocks(callee, vmap)
	mark := after
	for _, nb := range clones {
		caller.InsertBlockAfter(nb, mark)
		mark = nb
	}

	// Rewrite returns into branches to 'after', collecting return values.
	type retEdge struct {
		val  core.Value
		from *core.BasicBlock
	}
	var rets []retEdge
	for _, nb := range clones {
		ret, ok := nb.Terminator().(*core.RetInst)
		if !ok {
			continue
		}
		rets = append(rets, retEdge{ret.Value(), nb})
		nb.Erase(ret)
		nb.Append(core.NewBr(after))
	}

	// Bind the call result.
	if call.Type() != core.VoidType {
		var result core.Value
		switch len(rets) {
		case 0:
			result = core.NewUndef(call.Type())
		case 1:
			result = rets[0].val
		default:
			phi := core.NewPhi(call.Type())
			phi.SetName(call.Name())
			for _, re := range rets {
				phi.AddIncoming(re.val, re.from)
			}
			after.InsertAt(0, phi)
			result = phi
		}
		core.ReplaceAllUses(call, result)
	}

	// Replace the call with a branch into the inlined entry.
	callBlock.Erase(call)
	callBlock.Append(core.NewBr(clones[0]))
}

// dropFunctionBody erases all blocks of f, dropping every operand use.
func dropFunctionBody(f *core.Function) {
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			core.DropOperands(inst)
		}
		b.Instrs = nil
	}
	f.Blocks = nil
}
