package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// GlobalLoadElim eliminates redundant loads of global variables using the
// interprocedural Mod/Ref analysis (§3.3): a reload of a global is
// replaced by the previously loaded (or stored) value when no intervening
// instruction — including calls, checked against the callee's Mod set —
// can have modified it. Loads of constant globals are always reusable.
type GlobalLoadElim struct{}

// NewGlobalLoadElim returns the pass.
func NewGlobalLoadElim() *GlobalLoadElim { return &GlobalLoadElim{} }

// Name returns the pass name.
func (*GlobalLoadElim) Name() string { return "gloadelim" }

// Preserves: replacing a reload with an earlier value and erasing the load
// keeps blocks, edges, and calls intact; mod/ref summaries only become more
// conservative (a pruned Ref), never wrong.
func (*GlobalLoadElim) Preserves() analysis.Preserved { return analysis.PreserveAll }

// RunOnModule eliminates redundant global loads in every function.
func (p *GlobalLoadElim) RunOnModule(m *core.Module) int {
	return p.runOnModuleWith(m, nil)
}

func (p *GlobalLoadElim) runOnModuleWith(m *core.Module, am *analysis.Manager) int {
	mr := am.ModRef(m)
	changed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			changed += p.runBlock(b, mr)
		}
	}
	return changed
}

func (p *GlobalLoadElim) runBlock(b *core.BasicBlock, mr map[*core.Function]*analysis.ModRefInfo) int {
	// known maps a global to the value its scalar cell currently holds.
	known := map[*core.GlobalVariable]core.Value{}
	changed := 0

	invalidateAll := func() {
		for g := range known {
			if !g.IsConst {
				delete(known, g)
			}
		}
	}

	for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
		switch i := inst.(type) {
		case *core.LoadInst:
			g, direct := i.Ptr().(*core.GlobalVariable)
			if !direct {
				continue
			}
			if v, ok := known[g]; ok {
				core.ReplaceAllUses(i, v)
				b.Erase(i)
				changed++
				continue
			}
			known[g] = i

		case *core.StoreInst:
			if g, direct := i.Ptr().(*core.GlobalVariable); direct {
				known[g] = i.Val()
				continue
			}
			// A store through an arbitrary pointer may alias any
			// non-constant global (unless it provably targets the frame).
			if !storesToFrame(i.Ptr()) {
				invalidateAll()
			}

		case *core.CallInst:
			p.applyCallEffects(i.Callee(), i.Args(), known, mr, invalidateAll)
		case *core.InvokeInst:
			p.applyCallEffects(i.Callee(), i.Args(), known, mr, invalidateAll)
		case *core.VAArgInst, *core.FreeInst:
			// free cannot legally target a global; vaarg reads only.
		}
	}
	return changed
}

func (p *GlobalLoadElim) applyCallEffects(callee core.Value, args []core.Value,
	known map[*core.GlobalVariable]core.Value, mr map[*core.Function]*analysis.ModRefInfo,
	invalidateAll func()) {
	targets, ok := analysis.CallTargets(callee)
	if !ok {
		// Unresolvable indirect call: anything may be written.
		invalidateAll()
		return
	}
	// Per-argument summaries: a callee that writes only through pointer
	// arguments invalidates just the globals those actuals may address,
	// not every known global.
	for g := range known {
		if g.IsConst {
			continue
		}
		for _, t := range targets {
			if analysis.CallWritesGlobal(mr[t], args, g) {
				delete(known, g)
				break
			}
		}
	}
}

// storesToFrame reports whether the pointer provably addresses a local
// alloca (so the store cannot touch any global).
func storesToFrame(ptr core.Value) bool {
	for {
		switch v := ptr.(type) {
		case *core.AllocaInst:
			return true
		case *core.GetElementPtrInst:
			ptr = v.Base()
		case *core.CastInst:
			if v.Val().Type().Kind() != core.PointerKind {
				return false
			}
			ptr = v.Val()
		default:
			return false
		}
	}
}
