package passes_test

// Tests for the parallel function-pass scheduler and its analysis cache:
// the transformed module must be byte-identical to a serial run at any
// worker count, per-function panics must compose with the pass manager's
// failure policies, and concurrent runs must be -race-clean. The tests
// live in an external package so they can link real workloads through
// internal/frontend and internal/linker (which import passes).

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/workload"
)

// buildRaw links a workload program from unoptimized front-end output, so
// the standard pipeline has real work to do. Generation is seeded, so two
// calls with the same profile produce structurally identical modules.
func buildRaw(t testing.TB, p workload.Profile) *core.Module {
	t.Helper()
	prog := workload.Generate(p)
	mods := make([]*core.Module, 0, len(prog.Units))
	for i, src := range prog.Units {
		m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
		if err != nil {
			t.Fatalf("%s unit %d: %v", p.Name, i, err)
		}
		mods = append(mods, m)
	}
	m, err := linker.Link(p.Name, mods...)
	if err != nil {
		t.Fatalf("link %s: %v", p.Name, err)
	}
	return m
}

// runStd runs the standard pipeline at the given parallelism and returns
// the printed module.
func runStd(t testing.TB, m *core.Module, parallelism int) (*passes.PassManager, string) {
	t.Helper()
	pm := passes.NewPassManager()
	pm.Parallelism = parallelism
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pipeline (j=%d): %v", parallelism, err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("module invalid after pipeline (j=%d): %v", parallelism, err)
	}
	return pm, m.String()
}

// TestParallelDeterminism is the golden determinism check: for every
// workload profile, the IR printed after StandardFunctionPasses is
// byte-identical between Parallelism 1 and Parallelism 8.
func TestParallelDeterminism(t *testing.T) {
	for _, p := range workload.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			_, serial := runStd(t, buildRaw(t, p), 1)
			_, parallel := runStd(t, buildRaw(t, p), 8)
			if serial != parallel {
				t.Errorf("IR differs between -j1 and -j8 (%d vs %d bytes)",
					len(serial), len(parallel))
			}
		})
	}
}

// TestParallelStatsDeterministic asserts the per-pass change counts and
// analysis cache counters do not depend on the worker count either.
func TestParallelStatsDeterministic(t *testing.T) {
	p, _ := workload.ByName("176.gcc")
	pm1, _ := runStd(t, buildRaw(t, p), 1)
	pm8, _ := runStd(t, buildRaw(t, p), 8)
	for i, r1 := range pm1.Results {
		r8 := pm8.Results[i]
		if r1.Changed != r8.Changed || r1.AnalysisHits != r8.AnalysisHits ||
			r1.AnalysisMisses != r8.AnalysisMisses ||
			r1.AnalysisInvalidations != r8.AnalysisInvalidations {
			t.Errorf("pass %s: j=1 {chg %d, %d/%d/%d} vs j=8 {chg %d, %d/%d/%d}",
				r1.Pass, r1.Changed, r1.AnalysisHits, r1.AnalysisMisses, r1.AnalysisInvalidations,
				r8.Changed, r8.AnalysisHits, r8.AnalysisMisses, r8.AnalysisInvalidations)
		}
	}
}

// TestAnalysisCacheHitsInPipeline asserts the manager actually eliminates
// redundant builds across the standard pipeline: mem2reg computes the
// dominator tree, and cse/licm reuse it.
func TestAnalysisCacheHitsInPipeline(t *testing.T) {
	p, _ := workload.ByName("164.gzip")
	pm, _ := runStd(t, buildRaw(t, p), runtime.GOMAXPROCS(0))
	s := pm.AnalysisStats()
	if s.Hits == 0 {
		t.Fatalf("standard pipeline recorded no analysis cache hits: %+v", s)
	}
	if s.Misses == 0 {
		t.Fatalf("implausible: no misses either: %+v", s)
	}
}

// TestParallelSharedModule drives the parallel scheduler at full width over
// one module whose functions share callees, globals, and constants; under
// -race this is the shared-use-list check for the whole pipeline.
func TestParallelSharedModule(t *testing.T) {
	p, _ := workload.ByName("176.gcc")
	m := buildRaw(t, p)
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	runStd(t, m, workers)
}

// TestConcurrentPipelinesShareConstants runs two independent pass managers
// over a module and its clone concurrently. CloneModule shares scalar
// constants between the two, so cross-module use-list edits collide unless
// the core locks them.
func TestConcurrentPipelinesShareConstants(t *testing.T) {
	p, _ := workload.ByName("186.crafty")
	m1 := buildRaw(t, p)
	m2 := core.CloneModule(m1)
	var wg sync.WaitGroup
	for _, m := range []*core.Module{m1, m2} {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			pm := passes.NewPassManager()
			pm.Parallelism = 4
			pm.AddStandardPipeline()
			if _, err := pm.Run(m); err != nil {
				t.Errorf("pipeline: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := core.Verify(m1); err != nil {
		t.Errorf("original invalid: %v", err)
	}
	if err := core.Verify(m2); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if m1.String() != m2.String() {
		t.Error("identical modules diverged under concurrent optimization")
	}
}

// panicOnFunc is a function pass that panics on one victim function and
// counts a change on every other.
type panicOnFunc struct{ victim string }

func (panicOnFunc) Name() string { return "panic-on-func" }
func (p panicOnFunc) RunOnFunction(f *core.Function) int {
	if f.Name() == p.victim {
		panic("boom in " + p.victim)
	}
	return 1
}

// TestParallelPanicComposesWithPolicy checks per-function panic recovery
// feeds the existing Policy machinery: under SkipAndContinue the failed
// pass's changes are rolled back and the pipeline continues; under FailFast
// the error surfaces without killing the process.
func TestParallelPanicComposesWithPolicy(t *testing.T) {
	p, _ := workload.ByName("181.mcf")
	m := buildRaw(t, p)
	var victim string
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			victim = f.Name()
		}
	}
	if victim == "" {
		t.Fatal("no defined functions in workload")
	}

	t.Run("skip", func(t *testing.T) {
		mm := core.CloneModule(m)
		golden := mm.String()
		pm := passes.NewPassManager()
		pm.Policy = passes.SkipAndContinue
		pm.Parallelism = 4
		pm.AddFunctionPass(panicOnFunc{victim: victim})
		if _, err := pm.Run(mm); err != nil {
			t.Fatalf("SkipAndContinue should swallow the failure: %v", err)
		}
		fails := pm.Failures()
		if len(fails) != 1 || !fails[0].RolledBack {
			t.Fatalf("failures = %+v, want one rolled-back failure", fails)
		}
		if !strings.Contains(fails[0].Err.Error(), "panicked") ||
			!strings.Contains(fails[0].Err.Error(), victim) {
			t.Errorf("error should name the panicking function: %v", fails[0].Err)
		}
		if mm.String() != golden {
			t.Error("module changed despite rollback")
		}
	})

	t.Run("failfast", func(t *testing.T) {
		mm := core.CloneModule(m)
		pm := passes.NewPassManager()
		pm.Parallelism = 4
		pm.AddFunctionPass(panicOnFunc{victim: victim})
		if _, err := pm.Run(mm); err == nil {
			t.Fatal("FailFast should report the panic as an error")
		}
	})
}
