package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
)

// LICM hoists loop-invariant pure computations (arithmetic, comparisons,
// casts, getelementptrs) into the loop preheader. Division and remainder
// are not speculated (they can trap); memory operations are not touched
// (no memory dependence analysis is attempted — the paper keeps memory out
// of SSA form, §2.1, and so do we).
type LICM struct {
	rem *obs.Remarks
}

// NewLICM returns the pass.
func NewLICM() *LICM { return &LICM{} }

// Name returns the pass name.
func (*LICM) Name() string { return "licm" }

// Preserves: hoisting moves instructions between existing blocks; the CFG
// and call sites are untouched.
func (*LICM) Preserves() analysis.Preserved { return analysis.PreserveAll }

func (l *LICM) setRemarks(r *obs.Remarks) { l.rem = r }

// RunOnFunction hoists invariants out of every natural loop, innermost
// loops first so code migrates as far out as it can in one run.
func (l *LICM) RunOnFunction(f *core.Function) int {
	return l.runOnFunctionWith(f, nil)
}

func (l *LICM) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) < 2 {
		return 0
	}
	li := am.LoopInfo(f)
	loops := li.All()
	// Innermost first: reverse of outer-first order.
	hoisted := 0
	for i := len(loops) - 1; i >= 0; i-- {
		hoisted += l.runLoop(loops[i])
	}
	return hoisted
}

// hoistable reports whether an instruction may be moved to the preheader
// when its operands are invariant: pure, non-trapping, produces a value.
func hoistable(inst core.Instruction) bool {
	switch i := inst.(type) {
	case *core.BinaryInst:
		op := i.Opcode()
		if op == core.OpDiv || op == core.OpRem {
			// Trap hazard: only safe with a provably nonzero divisor.
			c, ok := i.RHS().(*core.ConstantInt)
			return ok && !c.IsZero()
		}
		return true
	case *core.CastInst, *core.GetElementPtrInst:
		return true
	}
	return false
}

func (l *LICM) runLoop(loop *analysis.Loop) int {
	pre := loop.Preheader()
	if pre == nil {
		return 0
	}
	// Iterate loop blocks in the function's block order, not map order: the
	// hoist sequence (and with it the preheader layout and the remark
	// stream) must not depend on Go's map iteration.
	f := loop.Header.Parent()
	var blocks []*core.BasicBlock
	for _, b := range f.Blocks {
		if loop.Blocks[b] {
			blocks = append(blocks, b)
		}
	}
	// Fixed point: hoisting one instruction can make its users invariant.
	invariant := func(v core.Value) bool {
		def, ok := v.(core.Instruction)
		if !ok {
			return true // constants, arguments, globals
		}
		return !loop.Blocks[def.Parent()]
	}
	allInvariant := func(inst core.Instruction) bool {
		for _, op := range inst.Operands() {
			if !invariant(op) {
				return false
			}
		}
		return true
	}
	hoisted := 0
	firstRound := true
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
				if inst.Parent() != b {
					continue
				}
				if !hoistable(inst) {
					// The one near-miss worth reporting: a division whose
					// operands are invariant but whose divisor is not
					// provably nonzero cannot be speculated into the
					// preheader. Reported once (first round) per site.
					if firstRound && l.rem.Enabled() {
						if bi, ok := inst.(*core.BinaryInst); ok &&
							(bi.Opcode() == core.OpDiv || bi.Opcode() == core.OpRem) &&
							allInvariant(inst) {
							l.rem.Missedf("licm",
								diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
								"loop-invariant division not hoisted: divisor may be zero")
						}
					}
					continue
				}
				if !allInvariant(inst) {
					continue
				}
				if l.rem.Enabled() {
					l.rem.Appliedf("licm",
						diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
						"hoisted loop-invariant computation to preheader %%%s", pre.Name())
				}
				// Move before the preheader's terminator.
				b.Remove(inst)
				pre.InsertAt(len(pre.Instrs)-1, inst)
				hoisted++
				changed = true
			}
		}
		firstRound = false
	}
	return hoisted
}
