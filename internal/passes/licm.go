package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// LICM hoists loop-invariant pure computations (arithmetic, comparisons,
// casts, getelementptrs) into the loop preheader. Division and remainder
// are not speculated (they can trap). Loop-invariant loads from trap-safe
// addresses are hoisted too, when the points-to analysis proves no store,
// free, or call in the loop can modify the loaded object.
type LICM struct {
	rem *obs.Remarks
	// NoAlias disables points-to-based load hoisting (ablation baseline
	// for llvm-bench -alias).
	NoAlias bool
}

// NewLICM returns the pass.
func NewLICM() *LICM { return &LICM{} }

// Name returns the pass name.
func (*LICM) Name() string { return "licm" }

// Preserves: hoisting moves instructions between existing blocks; the CFG
// and call sites are untouched, and moving instructions adds no points-to
// edges, so the cached DSA result stays a valid over-approximation.
func (*LICM) Preserves() analysis.Preserved { return analysis.PreserveAll | dsa.Key.Mask() }

func (l *LICM) setRemarks(r *obs.Remarks) { l.rem = r }

// RunOnFunction hoists invariants out of every natural loop, innermost
// loops first so code migrates as far out as it can in one run.
func (l *LICM) RunOnFunction(f *core.Function) int {
	return l.runOnFunctionWith(f, nil)
}

func (l *LICM) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) < 2 {
		return 0
	}
	li := am.LoopInfo(f)
	loops := li.All()
	var pt *dsa.Result
	if !l.NoAlias {
		pt = dsa.Of(am, f.Parent())
	}
	// Innermost first: reverse of outer-first order.
	hoisted := 0
	for i := len(loops) - 1; i >= 0; i-- {
		hoisted += l.runLoop(loops[i], pt)
	}
	return hoisted
}

// hoistable reports whether an instruction may be moved to the preheader
// when its operands are invariant: pure, non-trapping, produces a value.
func hoistable(inst core.Instruction) bool {
	switch i := inst.(type) {
	case *core.BinaryInst:
		op := i.Opcode()
		if op == core.OpDiv || op == core.OpRem {
			// Trap hazard: only safe with a provably nonzero divisor.
			c, ok := i.RHS().(*core.ConstantInt)
			return ok && !c.IsZero()
		}
		return true
	case *core.CastInst, *core.GetElementPtrInst:
		return true
	}
	return false
}

// loopMem is the set of loop operations that can modify memory, gathered
// once per loop for the load-hoisting legality check.
type loopMem struct {
	storePtrs []core.Value // store and free targets
	calls     []core.Value // callee operands of calls/invokes
}

// collectLoopMem gathers the loop's memory writers in block order.
func collectLoopMem(blocks []*core.BasicBlock) *loopMem {
	mem := &loopMem{}
	for _, b := range blocks {
		for _, inst := range b.Instrs {
			switch i := inst.(type) {
			case *core.StoreInst:
				mem.storePtrs = append(mem.storePtrs, i.Ptr())
			case *core.FreeInst:
				mem.storePtrs = append(mem.storePtrs, i.Ptr())
			case *core.CallInst:
				mem.calls = append(mem.calls, i.Callee())
			case *core.InvokeInst:
				mem.calls = append(mem.calls, i.Callee())
			}
		}
	}
	return mem
}

// loadHoistable reports whether a loop-invariant load may move to the
// preheader: the address must be trap-safe to speculate (the loop may run
// zero times), and no store, free, or call in the loop may modify the
// loaded memory.
func (l *LICM) loadHoistable(pt *dsa.Result, mem *loopMem, ld *core.LoadInst) bool {
	if pt == nil {
		return false
	}
	p := ld.Ptr()
	if !trapSafeAddress(p) {
		return false
	}
	for _, s := range mem.storePtrs {
		if pt.Alias(p, s) != dsa.NoAlias {
			return false
		}
	}
	if len(mem.calls) > 0 {
		n := pt.NodeFor(p)
		for _, c := range mem.calls {
			if pt.CallSiteMayMod(c, n) {
				return false
			}
		}
	}
	return true
}

// trapSafeAddress reports whether dereferencing p is safe to speculate:
// a global or alloca base reached through constant, statically in-bounds
// gep indices. Such an address always maps allocated storage.
func trapSafeAddress(p core.Value) bool {
	for {
		switch v := p.(type) {
		case *core.GlobalVariable:
			return true
		case *core.AllocaInst:
			return v.NumElems() == nil // dynamic-size alloca: unknown extent
		case *core.GetElementPtrInst:
			if !gepStaticallyInBounds(v.Base().Type(), v.Indices()) {
				return false
			}
			p = v.Base()
		case *core.ConstantExpr:
			if v.Op != core.OpGetElementPtr {
				return false
			}
			idx := make([]core.Value, 0, len(v.Operands())-1)
			for i := 1; i < len(v.Operands()); i++ {
				idx = append(idx, v.Operand(i))
			}
			if !gepStaticallyInBounds(v.Operand(0).Type(), idx) {
				return false
			}
			p = v.Operand(0)
		default:
			return false
		}
	}
}

// gepStaticallyInBounds checks that every index is a constant selecting a
// real field/element of the statically known object (first index must be 0:
// no pointer arithmetic past the object).
func gepStaticallyInBounds(baseTy core.Type, indices []core.Value) bool {
	pt, ok := baseTy.(*core.PointerType)
	if !ok {
		return false
	}
	cur := core.Type(pt.Elem)
	for k, idx := range indices {
		ci, ok := idx.(*core.ConstantInt)
		if !ok {
			return false
		}
		i := ci.SExt()
		if k == 0 {
			if i != 0 {
				return false
			}
			continue
		}
		switch t := cur.(type) {
		case *core.StructType:
			if i < 0 || int(i) >= len(t.Fields) {
				return false
			}
			cur = t.Fields[int(i)]
		case *core.ArrayType:
			if i < 0 || int(i) >= t.Len {
				return false
			}
			cur = t.Elem
		default:
			return false
		}
	}
	return true
}

func (l *LICM) runLoop(loop *analysis.Loop, pt *dsa.Result) int {
	pre := loop.Preheader()
	if pre == nil {
		return 0
	}
	// Iterate loop blocks in the function's block order, not map order: the
	// hoist sequence (and with it the preheader layout and the remark
	// stream) must not depend on Go's map iteration.
	f := loop.Header.Parent()
	var blocks []*core.BasicBlock
	for _, b := range f.Blocks {
		if loop.Blocks[b] {
			blocks = append(blocks, b)
		}
	}
	// Fixed point: hoisting one instruction can make its users invariant.
	invariant := func(v core.Value) bool {
		def, ok := v.(core.Instruction)
		if !ok {
			return true // constants, arguments, globals
		}
		return !loop.Blocks[def.Parent()]
	}
	allInvariant := func(inst core.Instruction) bool {
		for _, op := range inst.Operands() {
			if !invariant(op) {
				return false
			}
		}
		return true
	}
	mem := collectLoopMem(blocks)
	hoisted := 0
	firstRound := true
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
				if inst.Parent() != b {
					continue
				}
				if ld, isLoad := inst.(*core.LoadInst); isLoad {
					if !allInvariant(inst) || !l.loadHoistable(pt, mem, ld) {
						continue
					}
					if l.rem.Enabled() {
						l.rem.Appliedf("licm",
							diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
							"hoisted loop-invariant load to preheader %%%s: no aliasing store or modifying call in loop", pre.Name())
					}
					b.Remove(inst)
					pre.InsertAt(len(pre.Instrs)-1, inst)
					hoisted++
					changed = true
					continue
				}
				if !hoistable(inst) {
					// The one near-miss worth reporting: a division whose
					// operands are invariant but whose divisor is not
					// provably nonzero cannot be speculated into the
					// preheader. Reported once (first round) per site.
					if firstRound && l.rem.Enabled() {
						if bi, ok := inst.(*core.BinaryInst); ok &&
							(bi.Opcode() == core.OpDiv || bi.Opcode() == core.OpRem) &&
							allInvariant(inst) {
							l.rem.Missedf("licm",
								diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
								"loop-invariant division not hoisted: divisor may be zero")
						}
					}
					continue
				}
				if !allInvariant(inst) {
					continue
				}
				if l.rem.Enabled() {
					l.rem.Appliedf("licm",
						diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
						"hoisted loop-invariant computation to preheader %%%s", pre.Name())
				}
				// Move before the preheader's terminator.
				b.Remove(inst)
				pre.InsertAt(len(pre.Instrs)-1, inst)
				hoisted++
				changed = true
			}
		}
		firstRound = false
	}
	return hoisted
}
