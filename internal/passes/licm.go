package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// LICM hoists loop-invariant pure computations (arithmetic, comparisons,
// casts, getelementptrs) into the loop preheader. Division and remainder
// are not speculated (they can trap); memory operations are not touched
// (no memory dependence analysis is attempted — the paper keeps memory out
// of SSA form, §2.1, and so do we).
type LICM struct{}

// NewLICM returns the pass.
func NewLICM() *LICM { return &LICM{} }

// Name returns the pass name.
func (*LICM) Name() string { return "licm" }

// Preserves: hoisting moves instructions between existing blocks; the CFG
// and call sites are untouched.
func (*LICM) Preserves() analysis.Preserved { return analysis.PreserveAll }

// RunOnFunction hoists invariants out of every natural loop, innermost
// loops first so code migrates as far out as it can in one run.
func (l *LICM) RunOnFunction(f *core.Function) int {
	return l.runOnFunctionWith(f, nil)
}

func (l *LICM) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) < 2 {
		return 0
	}
	li := am.LoopInfo(f)
	loops := li.All()
	// Innermost first: reverse of outer-first order.
	hoisted := 0
	for i := len(loops) - 1; i >= 0; i-- {
		hoisted += l.runLoop(loops[i])
	}
	return hoisted
}

// hoistable reports whether an instruction may be moved to the preheader
// when its operands are invariant: pure, non-trapping, produces a value.
func hoistable(inst core.Instruction) bool {
	switch i := inst.(type) {
	case *core.BinaryInst:
		op := i.Opcode()
		if op == core.OpDiv || op == core.OpRem {
			// Trap hazard: only safe with a provably nonzero divisor.
			c, ok := i.RHS().(*core.ConstantInt)
			return ok && !c.IsZero()
		}
		return true
	case *core.CastInst, *core.GetElementPtrInst:
		return true
	}
	return false
}

func (l *LICM) runLoop(loop *analysis.Loop) int {
	pre := loop.Preheader()
	if pre == nil {
		return 0
	}
	// Fixed point: hoisting one instruction can make its users invariant.
	invariant := func(v core.Value) bool {
		def, ok := v.(core.Instruction)
		if !ok {
			return true // constants, arguments, globals
		}
		return !loop.Blocks[def.Parent()]
	}
	hoisted := 0
	for changed := true; changed; {
		changed = false
		for b := range loop.Blocks {
			for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
				if inst.Parent() != b || !hoistable(inst) {
					continue
				}
				allInv := true
				for _, op := range inst.Operands() {
					if !invariant(op) {
						allInv = false
						break
					}
				}
				if !allInv {
					continue
				}
				// Move before the preheader's terminator.
				b.Remove(inst)
				pre.InsertAt(len(pre.Instrs)-1, inst)
				hoisted++
				changed = true
			}
		}
	}
	return hoisted
}
