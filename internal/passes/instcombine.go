package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// InstCombine performs local algebraic simplification: constant folding,
// identity/absorption rules (x+0, x*1, x*0, x-x, x&0, x|x, ...), constant
// canonicalization to the right of commutative operators, reassociation of
// constant chains ((x+c1)+c2 → x+(c1+c2)), cast elimination, and branch
// condition simplification. It iterates to a local fixed point.
type InstCombine struct{}

// NewInstCombine returns the pass.
func NewInstCombine() *InstCombine { return &InstCombine{} }

// Name returns the pass name.
func (*InstCombine) Name() string { return "instcombine" }

// Preserves: algebraic rewrites replace values, never edges or call sites
// (a folded branch condition still leaves both successors in place for
// SimplifyCFG).
func (*InstCombine) Preserves() analysis.Preserved { return analysis.PreserveAll }

// RunOnFunction applies simplifications until none fire.
func (ic *InstCombine) RunOnFunction(f *core.Function) int {
	total := 0
	for {
		n := ic.onePass(f)
		total += n
		if n == 0 {
			return total
		}
	}
}

func (ic *InstCombine) onePass(f *core.Function) int {
	changed := 0
	for _, b := range f.Blocks {
		// Iterate over a snapshot; replacements erase in place.
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			if inst.Parent() == nil {
				continue // already erased
			}
			repl, mutated := ic.simplify(inst)
			if repl != nil {
				core.ReplaceAllUses(inst, repl)
				b.Erase(inst)
				changed++
			} else if mutated {
				changed++
			}
		}
	}
	return changed
}

// simplify returns a replacement value for inst (nil if none) plus whether
// the instruction was rewritten in place (operand canonicalization or
// reassociation) without producing a replacement.
func (ic *InstCombine) simplify(inst core.Instruction) (core.Value, bool) {
	switch i := inst.(type) {
	case *core.BinaryInst:
		return ic.simplifyBinary(i)
	case *core.CastInst:
		return ic.simplifyCast(i), false
	case *core.PhiInst:
		return ic.simplifyPhi(i), false
	case *core.GetElementPtrInst:
		// getelementptr p, 0 (single zero index) is p.
		if len(i.Indices()) == 1 {
			if c, ok := i.Indices()[0].(*core.ConstantInt); ok && c.IsZero() {
				return i.Base(), false
			}
		}
	}
	return nil, false
}

func (ic *InstCombine) simplifyBinary(i *core.BinaryInst) (core.Value, bool) {
	op := i.Opcode()
	lhs, rhs := i.LHS(), i.RHS()
	lc, lIsC := lhs.(core.Constant)
	rc, rIsC := rhs.(core.Constant)

	// Full constant folding.
	if lIsC && rIsC {
		if folded := core.FoldBinary(op, lc, rc); folded != nil {
			return folded, false
		}
	}

	// Canonicalize: constant to the RHS of commutative operators.
	if lIsC && !rIsC && core.IsCommutative(op) {
		i.SetOperand(0, rhs)
		i.SetOperand(1, lhs)
		lhs, rhs = i.LHS(), i.RHS()
		lc, lIsC = nil, false
		rc, rIsC = rhs.(core.Constant), true
		_ = lc
	}

	t := lhs.Type()
	isInt := core.IsInteger(t)

	// Identity / absorption with a constant RHS.
	if rIsC {
		switch op {
		case core.OpAdd, core.OpSub, core.OpOr, core.OpXor, core.OpShl, core.OpShr:
			if isZeroConst(rc) {
				return lhs, false // x op 0 = x
			}
		case core.OpMul:
			if isZeroConst(rc) && isInt {
				return rc, false // x * 0 = 0 (int only; FP has NaN)
			}
			if isIntConst(rc, 1) {
				return lhs, false // x * 1 = x
			}
		case core.OpDiv:
			if isIntConst(rc, 1) {
				return lhs, false // x / 1 = x
			}
		case core.OpAnd:
			if isZeroConst(rc) && isInt {
				return rc, false // x & 0 = 0
			}
			if isAllOnes(rc) {
				return lhs, false // x & ~0 = x
			}
		case core.OpRem:
			if isIntConst(rc, 1) && isInt {
				return core.NewInt(t, 0), false // x % 1 = 0
			}
		}
		// Reassociate (x op c1) op c2 for associative-commutative ops.
		if inner, ok := lhs.(*core.BinaryInst); ok && inner.Opcode() == op && core.IsCommutative(op) && op != core.OpSetEQ && op != core.OpSetNE {
			if ic2, ok := inner.RHS().(core.Constant); ok {
				if folded := core.FoldBinary(op, ic2, rc); folded != nil {
					i.SetOperand(0, inner.LHS())
					i.SetOperand(1, folded)
					return nil, true // mutated in place; re-checked next iteration
				}
			}
		}
	}

	// x - x = 0; x ^ x = 0; x & x = x; x | x = x; seteq x,x = true ...
	if lhs == rhs {
		switch op {
		case core.OpSub, core.OpXor:
			if isInt {
				return core.NewInt(t, 0), false
			}
			if t.Kind() == core.BoolKind && op == core.OpXor {
				return core.NewBool(false), false
			}
		case core.OpAnd, core.OpOr:
			return lhs, false
		case core.OpSetEQ, core.OpSetLE, core.OpSetGE:
			// FP NaN makes x==x false; only safe for non-FP.
			if !core.IsFloatingPoint(t) {
				return core.NewBool(true), false
			}
		case core.OpSetNE, core.OpSetLT, core.OpSetGT:
			if !core.IsFloatingPoint(t) {
				return core.NewBool(false), false
			}
		}
	}
	return nil, false
}

func (ic *InstCombine) simplifyCast(i *core.CastInst) core.Value {
	src := i.Val()
	// cast x to sametype = x.
	if core.TypesEqual(src.Type(), i.Type()) {
		return src
	}
	// Fold constant casts.
	if c, ok := src.(core.Constant); ok {
		if folded := core.FoldCast(c, i.Type()); folded != nil {
			return folded
		}
	}
	// cast (cast x to B) to A = x when the round trip is lossless and
	// A is x's type.
	if inner, ok := src.(*core.CastInst); ok {
		x := inner.Val()
		if core.TypesEqual(x.Type(), i.Type()) && core.IsLosslesslyConvertible(x.Type(), inner.Type()) {
			return x
		}
	}
	return nil
}

func (ic *InstCombine) simplifyPhi(i *core.PhiInst) core.Value {
	// A phi whose incoming values are all the same value (or the phi
	// itself) is that value.
	var same core.Value
	for n := 0; n < i.NumIncoming(); n++ {
		v, _ := i.Incoming(n)
		if v == core.Value(i) {
			continue
		}
		if same == nil {
			same = v
			continue
		}
		if v != same {
			// Distinct constants with equal value also merge.
			ca, aok := same.(*core.ConstantInt)
			cb, bok := v.(*core.ConstantInt)
			if aok && bok && ca.Val == cb.Val && core.TypesEqual(ca.Type(), cb.Type()) {
				continue
			}
			return nil
		}
	}
	return same
}

func isZeroConst(c core.Constant) bool { return core.IsConstantZero(c) }

func isIntConst(c core.Constant, v int64) bool {
	ci, ok := c.(*core.ConstantInt)
	return ok && ci.SExt() == v
}

func isAllOnes(c core.Constant) bool {
	ci, ok := c.(*core.ConstantInt)
	return ok && ci.SExt() == -1
}
