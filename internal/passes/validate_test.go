package passes_test

// Interplay between the translation-validation oracle and the pass
// manager's failure policies: a confirmed miscompile must behave exactly
// like a pass failure — rolled back under Rollback, skipped under
// SkipAndContinue, aborting under FailFast — and never leak the broken
// pass's changes into the caller's module. The remarks golden pins the
// validate stream's determinism across worker counts.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/tooling"
	"repro/internal/validate"
	"repro/internal/workload"
)

// loadCorpus loads a seeded-miscompile corpus module and the broken pass
// named after it.
func loadCorpus(t *testing.T, name string) (*core.Module, passes.ModulePass) {
	t.Helper()
	m, err := tooling.LoadModule("../../examples/validate/" + name + ".ll")
	if err != nil {
		t.Fatalf("loading corpus module: %v", err)
	}
	p, ok := passes.BrokenPassByName(name)
	if !ok {
		t.Fatalf("no broken pass %q", name)
	}
	return m, p
}

// runMain interprets %main and returns its value.
func runMain(t *testing.T, m *core.Module) uint64 {
	t.Helper()
	mc, err := interp.NewMachine(m, nil)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	f := m.Func("main")
	if f == nil {
		t.Fatal("no main")
	}
	v, err := mc.RunFunction(f)
	if err != nil {
		t.Fatalf("running main: %v", err)
	}
	return v
}

// TestValidateRollbackRestoresModule: under Rollback, a confirmed
// miscompile discards the pass's changes and aborts with the module
// byte-identical to its pre-pass state.
func TestValidateRollbackRestoresModule(t *testing.T) {
	m, p := loadCorpus(t, "broken-cse")
	before := m.String()
	pm := passes.NewPassManager()
	pm.Policy = passes.Rollback
	pm.Validator = validate.Default()
	pm.Add(p)
	if _, err := pm.Run(m); err == nil {
		t.Fatal("pipeline with a miscompiling pass must fail under Rollback")
	}
	if got := m.String(); got != before {
		t.Errorf("module not restored byte-identically after rollback:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
	if len(pm.Results) != 1 || !pm.Results[0].RolledBack {
		t.Error("result must record the rollback")
	}
	if v := pm.Results[0].Validation; v == nil || v.Verdict != validate.Miscompile {
		t.Error("result must carry the miscompile verdict")
	}
}

// TestValidateSkipAndContinue: under SkipAndContinue the broken pass's
// changes are discarded, the rest of the pipeline still runs, and the
// final module preserves the program's semantics.
func TestValidateSkipAndContinue(t *testing.T) {
	m, p := loadCorpus(t, "broken-dse")
	want := runMain(t, core.CloneModule(m))
	pm := passes.NewPassManager()
	pm.Policy = passes.SkipAndContinue
	pm.VerifyEach = true
	pm.Validator = validate.Default()
	pm.Add(p)
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("SkipAndContinue must not abort: %v", err)
	}
	if len(pm.Results) < 2 {
		t.Fatalf("later passes must still run, got %d results", len(pm.Results))
	}
	if !pm.Results[0].Failed || !pm.Results[0].RolledBack {
		t.Error("broken pass must be recorded as failed and rolled back")
	}
	if got := runMain(t, m); got != want {
		t.Errorf("optimized main returns %d, want %d — broken pass leaked through", got, want)
	}
}

// TestValidateFailFastPositionedError: FailFast plus a validator still
// isolates the pass (validation needs the pre-pass module), and the
// failure names the pass, the function, and the counterexample.
func TestValidateFailFastPositionedError(t *testing.T) {
	m, p := loadCorpus(t, "broken-sccp")
	before := m.String()
	pm := passes.NewPassManager()
	pm.Policy = passes.FailFast
	pm.Validator = validate.Default()
	pm.Add(p)
	_, err := pm.Run(m)
	if err == nil {
		t.Fatal("FailFast must surface the miscompile as an error")
	}
	for _, frag := range []string{"broken-sccp", "miscompiled", "%main"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
	if m.String() != before {
		t.Error("validator-forced isolation must keep the module intact even under FailFast")
	}
}

// TestValidateParallelWorkload: a validated pipeline with a seeded broken
// pass stays correct (and race-clean under -race) at Parallelism 8.
func TestValidateParallelWorkload(t *testing.T) {
	p := workload.Suite()[0]
	m := buildRaw(t, p)
	want := runMain(t, core.CloneModule(m))
	broken, _ := passes.BrokenPassByName("broken-cse")
	pm := passes.NewPassManager()
	pm.Policy = passes.SkipAndContinue
	pm.Parallelism = 8
	pm.Validator = validate.New(validate.Options{
		MaxVectors: 2, MaxSteps: 100_000, MaxFunctions: 8,
	})
	pm.Add(broken)
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if got := runMain(t, m); got != want {
		t.Errorf("optimized main returns %d, want %d", got, want)
	}
}

// runValidatedRemarks renders the remark stream of a validated standard
// pipeline (with one broken pass in front) at the given parallelism.
func runValidatedRemarks(t *testing.T, m *core.Module, parallelism int) string {
	t.Helper()
	broken, _ := passes.BrokenPassByName("broken-cse")
	pm := passes.NewPassManager()
	pm.Policy = passes.SkipAndContinue
	pm.Parallelism = parallelism
	pm.Remarks = obs.NewRemarks()
	pm.Validator = validate.Default()
	pm.Add(broken)
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatalf("pipeline (j=%d): %v", parallelism, err)
	}
	var buf bytes.Buffer
	if err := obs.WriteRemarksText(&buf, pm.Remarks.Sorted()); err != nil {
		t.Fatalf("rendering remarks: %v", err)
	}
	return buf.String()
}

// TestValidateRemarkDeterminism: the validate remark stream — verdict
// lines included — is byte-identical at -j1 vs -j8, because the oracle's
// vectors are deterministic and remarks sort by (pass run, function).
func TestValidateRemarkDeterminism(t *testing.T) {
	m, _ := loadCorpus(t, "broken-cse")
	serial := runValidatedRemarks(t, core.CloneModule(m), 1)
	parallel := runValidatedRemarks(t, core.CloneModule(m), 8)
	if serial != parallel {
		t.Errorf("validate remarks differ between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "validate") || !strings.Contains(serial, "MISCOMPILE") {
		t.Errorf("remark stream missing validate verdicts:\n%s", serial)
	}
}
