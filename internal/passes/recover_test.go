package passes

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

const recoverSrc = `
%pair = type { int, float }

%seed = global int 41

int %bump(int %x) {
entry:
	%r = add int %x, 1
	ret int %r
}

int %main() {
entry:
	%s = load int* %seed
	%r = call int %bump(int %s)
	ret int %r
}
`

// panicPass blows up partway through mutating the module, simulating a
// buggy optimization.
type panicPass struct{}

func (panicPass) Name() string { return "panicpass" }
func (panicPass) RunOnModule(m *core.Module) int {
	// Mutate first so a missing rollback is observable.
	if f := m.Func("main"); f != nil {
		f.Blocks = nil
	}
	panic("injected optimizer bug")
}

// corruptPass breaks the SSA/type rules without panicking, so only
// VerifyEach can catch it.
type corruptPass struct{}

func (corruptPass) Name() string { return "corruptpass" }
func (corruptPass) RunOnModule(m *core.Module) int {
	if f := m.Func("bump"); f != nil && !f.IsDeclaration() {
		// Drop the terminator: verifier must reject the block.
		b := f.Entry()
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
	}
	return 1
}

// hangPass never returns, simulating a pass stuck in an infinite loop.
type hangPass struct{ started chan struct{} }

func (h hangPass) Name() string { return "hangpass" }
func (h hangPass) RunOnModule(m *core.Module) int {
	close(h.started)
	select {} // block forever
}

func TestRollbackPolicyRestoresModuleByteIdentical(t *testing.T) {
	m := parse(t, recoverSrc)
	before := m.String()

	pm := NewPassManager()
	pm.Policy = Rollback
	pm.VerifyEach = true
	pm.Add(panicPass{})
	_, err := pm.Run(m)

	var report *FailureReport
	if !errors.As(err, &report) {
		t.Fatalf("want *FailureReport, got %T: %v", err, err)
	}
	if len(report.Failures) != 1 || report.Failures[0].Pass != "panicpass" {
		t.Fatalf("bad report: %+v", report)
	}
	if !report.Failures[0].RolledBack {
		t.Fatal("failure not marked rolled back")
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("module not verifier-clean after rollback: %v", err)
	}
	if got := m.String(); got != before {
		t.Fatalf("module not byte-identical after rollback:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
}

func TestSkipAndContinueRunsRemainingPasses(t *testing.T) {
	m := parse(t, recoverSrc)
	before := m.String()

	pm := NewPassManager()
	pm.Policy = SkipAndContinue
	pm.VerifyEach = true
	pm.Add(panicPass{}, corruptPass{}, NewDeadGlobalElim())
	total, err := pm.Run(m)
	if err != nil {
		t.Fatalf("SkipAndContinue returned error: %v", err)
	}
	if len(pm.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(pm.Results))
	}
	fails := pm.Failures()
	if len(fails) != 2 {
		t.Fatalf("want 2 failures, got %+v", fails)
	}
	if fails[0].Pass != "panicpass" || fails[1].Pass != "corruptpass" {
		t.Fatalf("wrong failing passes: %+v", fails)
	}
	if !strings.Contains(fails[1].Err.Error(), "module invalid after pass") {
		t.Fatalf("corruptpass error should come from the verifier: %v", fails[1].Err)
	}
	// The surviving pass still ran on the intact module.
	if pm.Results[2].Failed {
		t.Fatalf("dge should have succeeded: %+v", pm.Results[2])
	}
	_ = total
	_ = before
	if err := core.Verify(m); err != nil {
		t.Fatalf("module invalid after skip-and-continue: %v", err)
	}
	// dge removes nothing here (%seed is used), but the module must still
	// contain the pre-failure content.
	if !strings.Contains(m.String(), "call int %bump") {
		t.Fatal("module lost content it should have kept")
	}
}

func TestFailFastReturnsStructuredError(t *testing.T) {
	m := parse(t, recoverSrc)
	pm := NewPassManager()
	pm.Add(panicPass{}, NewDeadGlobalElim())
	_, err := pm.Run(m)
	var report *FailureReport
	if !errors.As(err, &report) {
		t.Fatalf("want *FailureReport, got %T: %v", err, err)
	}
	if len(pm.Results) != 1 {
		t.Fatalf("FailFast should stop after first failure, got %d results", len(pm.Results))
	}
	if report.Failures[0].RolledBack {
		t.Fatal("FailFast must not claim a rollback it did not perform")
	}
}

func TestPassTimeoutAbandonsRunawayPass(t *testing.T) {
	m := parse(t, recoverSrc)
	before := m.String()

	h := hangPass{started: make(chan struct{})}
	pm := NewPassManager()
	pm.Policy = Rollback
	pm.Timeout = 50 * time.Millisecond
	pm.Add(h)
	_, err := pm.Run(m)
	<-h.started

	var report *FailureReport
	if !errors.As(err, &report) {
		t.Fatalf("want *FailureReport, got %T: %v", err, err)
	}
	if !strings.Contains(report.Error(), "time budget") {
		t.Fatalf("want timeout failure, got: %v", report)
	}
	if got := m.String(); got != before {
		t.Fatal("timed-out pass leaked changes into the module")
	}
}

func TestStandardPipelineUnderRollbackPolicyStillOptimizes(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%p = alloca int
	store int %x, int* %p
	%v = load int* %p
	%r = add int %v, 0
	ret int %r
}
`)
	pm := NewPassManager()
	pm.Policy = Rollback
	pm.VerifyEach = true
	pm.AddStandardPipeline()
	n, err := pm.Run(m)
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	if n == 0 {
		t.Fatal("pipeline made no changes")
	}
	mustVerify(t, m)
	if countOps(m.Func("f"), core.OpAlloca) != 0 {
		t.Fatalf("mem2reg under rollback policy did not promote:\n%s", m)
	}
}
