package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// SimplifyCFG cleans up control flow: removes unreachable blocks, folds
// conditional branches on constants, collapses switches on constants,
// merges a block into its unique predecessor when that predecessor has a
// single successor, and removes trivial single-incoming phis.
type SimplifyCFG struct{}

// NewSimplifyCFG returns the pass.
func NewSimplifyCFG() *SimplifyCFG { return &SimplifyCFG{} }

// Preserves: nothing — this is the one standard pass that restructures the
// CFG (and can delete whole blocks, calls included).
func (*SimplifyCFG) Preserves() analysis.Preserved { return analysis.PreserveNone }

// Name returns the pass name.
func (*SimplifyCFG) Name() string { return "simplifycfg" }

// RunOnFunction iterates the rewrites to a fixed point.
func (s *SimplifyCFG) RunOnFunction(f *core.Function) int {
	total := 0
	for {
		n := 0
		n += s.foldConstantBranches(f)
		n += s.removeUnreachable(f)
		n += s.mergeBlocks(f)
		n += s.simplifyPhis(f)
		total += n
		if n == 0 {
			return total
		}
	}
}

// foldConstantBranches turns "br true/false" and "switch <const>" into
// unconditional branches, updating phis in abandoned targets.
func (s *SimplifyCFG) foldConstantBranches(f *core.Function) int {
	changed := 0
	for _, b := range f.Blocks {
		switch t := b.Terminator().(type) {
		case *core.BranchInst:
			if !t.IsConditional() {
				continue
			}
			c, ok := t.Cond().(*core.ConstantBool)
			if !ok {
				continue
			}
			taken, dropped := t.TrueDest(), t.FalseDest()
			if !c.Val {
				taken, dropped = dropped, taken
			}
			t.MakeUnconditional(taken)
			if dropped != taken {
				dropped.RemovePredecessor(b)
			}
			changed++
		case *core.SwitchInst:
			c, ok := t.Value().(*core.ConstantInt)
			if !ok {
				continue
			}
			taken := t.Default()
			for n := 0; n < t.NumCases(); n++ {
				val, dest := t.Case(n)
				if val.Val == c.Val {
					taken = dest
					break
				}
			}
			// Collect abandoned successors before rewriting.
			abandoned := map[*core.BasicBlock]bool{}
			for _, succ := range b.Succs() {
				if succ != taken {
					abandoned[succ] = true
				}
			}
			idx := b.IndexOf(t)
			b.Erase(t)
			nb := core.NewBr(taken)
			b.InsertAt(idx, nb)
			for succ := range abandoned {
				succ.RemovePredecessor(b)
			}
			changed++
		}
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry.
func (s *SimplifyCFG) removeUnreachable(f *core.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	reach := analysis.ReachableBlocks(f)
	var dead []*core.BasicBlock
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return 0
	}
	// First, detach dead blocks from live phis.
	for _, b := range dead {
		for _, succ := range b.Succs() {
			if reach[succ] {
				succ.RemovePredecessor(b)
			}
		}
	}
	// Dead blocks may reference each other; drop all operands first, then
	// replace any lingering uses of their instructions with undef.
	for _, b := range dead {
		for _, inst := range b.Instrs {
			core.DropOperands(inst)
		}
	}
	for _, b := range dead {
		for _, inst := range b.Instrs {
			if core.HasUses(inst) && inst.Type() != core.VoidType {
				core.ReplaceAllUses(inst, core.NewUndef(inst.Type()))
			}
		}
		b.Instrs = nil
		f.RemoveBlock(b)
	}
	return len(dead)
}

// mergeBlocks merges b's unique successor into b when b ends in an
// unconditional branch and the successor has b as its only predecessor.
func (s *SimplifyCFG) mergeBlocks(f *core.Function) int {
	changed := 0
	for _, b := range append([]*core.BasicBlock(nil), f.Blocks...) {
		if b.Parent() == nil {
			continue
		}
		br, ok := b.Terminator().(*core.BranchInst)
		if !ok || br.IsConditional() {
			continue
		}
		succ := br.TrueDest()
		if succ == b || succ == f.Entry() {
			continue
		}
		preds := succ.Preds()
		if len(preds) != 1 || preds[0] != b {
			continue
		}
		// Fold single-predecessor phis, then splice instructions.
		for _, phi := range succ.Phis() {
			v := phi.IncomingFor(b)
			core.ReplaceAllUses(phi, v)
			succ.Erase(phi)
		}
		b.Erase(br)
		moved := succ.Instrs
		succ.Instrs = nil
		for _, inst := range moved {
			b.Append(inst)
		}
		// succ's successors now see b as the predecessor; phis referencing
		// succ must be retargeted to b.
		for _, u := range append([]core.Use(nil), succ.Uses()...) {
			if phi, ok := u.User.(*core.PhiInst); ok {
				phi.SetOperand(u.Index, b)
			}
		}
		f.RemoveBlock(succ)
		changed++
	}
	return changed
}

// simplifyPhis removes phis with a single incoming edge.
func (s *SimplifyCFG) simplifyPhis(f *core.Function) int {
	changed := 0
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			if phi.NumIncoming() == 1 {
				v, _ := phi.Incoming(0)
				core.ReplaceAllUses(phi, v)
				b.Erase(phi)
				changed++
			}
		}
	}
	return changed
}
