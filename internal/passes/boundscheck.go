package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// BoundsCheckName is the runtime-failure handler the pass calls; the
// execution engine aborts in it (SAFECode's poolcheckfail).
const BoundsCheckName = "__bounds_check_fail"

// BoundsCheck implements the enforcement half of SAFECode (§4.2.2): it
// "relies on the array type information in LLVM to enforce array bounds
// safety, and uses static analysis to eliminate runtime bounds checks"
// where an index is provably in range. Every getelementptr index into an
// array type gets an unsigned-compare guard branching to a failure block;
// indices that are compile-time constants within bounds (and the
// always-zero first index over the pointer) are elided statically.
type BoundsCheck struct {
	// Inserted and Elided report what the last run did.
	Inserted int
	Elided   int
}

// NewBoundsCheck returns the pass.
func NewBoundsCheck() *BoundsCheck { return &BoundsCheck{} }

// Name returns the pass name.
func (*BoundsCheck) Name() string { return "boundscheck" }

// Preserves: nothing — every inserted guard splits a block and adds a trap
// successor, restructuring the CFG and adding call sites.
func (*BoundsCheck) Preserves() analysis.Preserved { return analysis.PreserveNone }

// RunOnModule instruments every function; the count is checks inserted.
func (bc *BoundsCheck) RunOnModule(m *core.Module) int {
	bc.Inserted, bc.Elided = 0, 0
	fail := m.GetOrInsertFunction(BoundsCheckName,
		core.NewFunctionType(core.VoidType, core.LongType, core.LongType))
	for _, f := range m.Funcs {
		if f.IsDeclaration() || f == fail {
			continue
		}
		bc.runFunction(f, fail)
	}
	return bc.Inserted
}

// checkSite is one array index needing a guard.
type checkSite struct {
	gep   *core.GetElementPtrInst
	idx   core.Value
	limit int64
}

func (bc *BoundsCheck) runFunction(f *core.Function, fail *core.Function) {
	// Collect first: instrumentation splits blocks.
	var sites []checkSite
	f.ForEachInst(func(inst core.Instruction) bool {
		gep, ok := inst.(*core.GetElementPtrInst)
		if !ok {
			return true
		}
		// Walk the index path mirroring GEPResultType.
		cur := gep.Base().Type().(*core.PointerType).Elem
		for k, idx := range gep.Indices() {
			if k == 0 {
				continue // pointer-level index: no static bound exists
			}
			switch ct := cur.(type) {
			case *core.StructType:
				cur = ct.Fields[int(idx.(*core.ConstantInt).SExt())]
			case *core.ArrayType:
				if ci, isConst := idx.(*core.ConstantInt); isConst {
					v := ci.SExt()
					if v >= 0 && v < int64(ct.Len) {
						bc.Elided++ // provably in range: no runtime check
					} else {
						// Statically out of range: guaranteed trap.
						sites = append(sites, checkSite{gep, idx, int64(ct.Len)})
					}
				} else {
					sites = append(sites, checkSite{gep, idx, int64(ct.Len)})
				}
				cur = ct.Elem
			}
		}
		return true
	})

	for _, s := range sites {
		bc.instrument(f, fail, s)
		bc.Inserted++
	}
}

// instrument splits the GEP's block before the GEP and guards it with
// "if ((ulong)idx >= limit) __bounds_check_fail(idx, limit)".
func (bc *BoundsCheck) instrument(f *core.Function, fail *core.Function, s checkSite) {
	blk := s.gep.Parent()
	at := blk.IndexOf(s.gep)

	// tail block receives the GEP and everything after it.
	tail := core.NewBlock(blk.Name() + ".inb")
	f.InsertBlockAfter(tail, blk)
	blk.MoveTailTo(at, tail)
	// Successor phis that referenced blk now come from tail.
	for _, u := range append([]core.Use(nil), blk.Uses()...) {
		if phi, ok := u.User.(*core.PhiInst); ok && phi.Parent() != nil && phi.Parent() != tail {
			phi.SetOperand(u.Index, tail)
		}
	}

	trap := core.NewBlock(blk.Name() + ".oob")
	f.InsertBlockAfter(trap, tail)

	b := core.NewBuilder()
	b.SetInsertPoint(blk)
	idxL := b.CreateCast(s.idx, core.ULongType, "")
	cmp := b.CreateSetGE(idxL, core.NewInt(core.ULongType, s.limit), "")
	b.CreateCondBr(cmp, trap, tail)

	b.SetInsertPoint(trap)
	asLong := b.CreateCast(s.idx, core.LongType, "")
	b.CreateCall(fail, []core.Value{asLong, core.NewInt(core.LongType, s.limit)}, "")
	b.CreateUnwind()
}

// BoundsCheckStats exposes the insert/elide counts after a run.
func (bc *BoundsCheck) BoundsCheckStats() (inserted, elided int) { return bc.Inserted, bc.Elided }

// EliminateDominatedChecks removes bounds checks made redundant by an
// identical dominating check (the interprocedural check-elimination spirit
// of [28], implemented intra-procedurally over the dominator tree): if the
// same (index, limit) pair was already verified on every path to a check,
// the later guard folds to "in bounds".
func EliminateDominatedChecks(m *core.Module) int {
	return eliminateDominatedChecks(m, nil)
}

// eliminateDominatedChecks is the manager-aware body: the dominator tree
// comes from the cache, and any function whose guards were folded has its
// entries invalidated (the fold rewrites CFG edges).
func eliminateDominatedChecks(m *core.Module, am *analysis.Manager) int {
	removed := 0
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		removedHere := 0
		dt := am.DomTree(f)
		type key struct {
			idx   core.Value
			limit int64
		}
		// Collect conditional branches that are bounds guards:
		// br (setge (cast idx), limit) -> trap, cont.
		guards := map[key][]*core.BranchInst{}
		for _, b := range f.Blocks {
			br, ok := b.Terminator().(*core.BranchInst)
			if !ok || !br.IsConditional() {
				continue
			}
			cmp, ok := br.Cond().(*core.BinaryInst)
			if !ok || cmp.Opcode() != core.OpSetGE {
				continue
			}
			lim, ok := cmp.RHS().(*core.ConstantInt)
			if !ok || !core.IsUnsigned(cmp.LHS().Type()) {
				continue
			}
			idx := cmp.LHS()
			if c, isCast := idx.(*core.CastInst); isCast {
				idx = c.Val()
			}
			if !isTrapBlock(br.TrueDest()) {
				continue
			}
			guards[key{idx, lim.SExt()}] = append(guards[key{idx, lim.SExt()}], br)
		}
		for _, brs := range guards {
			for i, later := range brs {
				for j, earlier := range brs {
					if i == j || later.Parent() == nil {
						continue
					}
					// The earlier guard's in-bounds successor must dominate (or be)
					// later guard's block.
					if dt.Dominates(earlier.FalseDest(), later.Parent()) {
						trap := later.TrueDest()
						cont := later.FalseDest()
						later.MakeUnconditional(cont)
						trap.RemovePredecessor(later.Parent())
						removedHere++
						break
					}
				}
			}
		}
		if removedHere > 0 {
			am.InvalidateFunction(f, analysis.PreserveNone)
			removed += removedHere
		}
	}
	return removed
}

// isTrapBlock recognizes the failure blocks instrument() builds.
func isTrapBlock(b *core.BasicBlock) bool {
	for _, inst := range b.Instrs {
		if call, ok := inst.(*core.CallInst); ok {
			if f := call.CalledFunction(); f != nil && f.Name() == BoundsCheckName {
				return true
			}
		}
	}
	return false
}
