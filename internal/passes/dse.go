package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// DSE eliminates dead stores using the points-to analysis: a store is dead
// when a later store in the same block must-overwrite the same location
// with no intervening instruction that may read it, or when it writes an
// object that provably cannot outlive the function (every allocation site
// is an alloca of this function, the address never escapes) and the block
// ends in a return with no later reader.
type DSE struct {
	rem *obs.Remarks
	// NoAlias disables the pass entirely (ablation baseline for
	// llvm-bench -alias; without alias information no store can be
	// proven dead).
	NoAlias bool
}

// NewDSE returns the pass.
func NewDSE() *DSE { return &DSE{} }

// Name returns the pass name.
func (*DSE) Name() string { return "dse" }

// Preserves: erasing stores leaves the CFG and call sites intact, and only
// shrinks the points-to relation.
func (*DSE) Preserves() analysis.Preserved { return analysis.PreserveAll | dsa.Key.Mask() }

func (d *DSE) setRemarks(r *obs.Remarks) { d.rem = r }

// RunOnFunction eliminates dead stores in every block of f.
func (d *DSE) RunOnFunction(f *core.Function) int {
	return d.runOnFunctionWith(f, nil)
}

func (d *DSE) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if d.NoAlias || len(f.Blocks) == 0 {
		return 0
	}
	pt := dsa.Of(am, f.Parent())
	changed := 0
	for _, b := range f.Blocks {
		changed += d.runBlock(f, b, pt)
	}
	return changed
}

func (d *DSE) runBlock(f *core.Function, b *core.BasicBlock, pt *dsa.Result) int {
	// pending holds stores not yet proven observed; entries drop out when
	// something may read their location and die when overwritten.
	var pending []*core.StoreInst
	changed := 0

	erase := func(s *core.StoreInst, why string) {
		if d.rem.Enabled() {
			d.rem.Appliedf("dse",
				diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(s)},
				"removed dead store: %s", why)
		}
		b.Erase(s)
		changed++
	}
	// keep retains pending stores that provably survive the reader check.
	keep := func(mayRead func(s *core.StoreInst) bool) {
		kept := pending[:0]
		for _, s := range pending {
			if !mayRead(s) {
				kept = append(kept, s)
			}
		}
		pending = kept
	}

	for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
		switch i := inst.(type) {
		case *core.LoadInst:
			keep(func(s *core.StoreInst) bool {
				return pt.Alias(i.Ptr(), s.Ptr()) != dsa.NoAlias
			})
		case *core.VAArgInst:
			keep(func(s *core.StoreInst) bool {
				return pt.Alias(i.List(), s.Ptr()) != dsa.NoAlias
			})
		case *core.CallInst:
			keep(func(s *core.StoreInst) bool {
				return pt.CallSiteMayRef(i.Callee(), pt.NodeFor(s.Ptr()))
			})
		case *core.InvokeInst:
			keep(func(s *core.StoreInst) bool {
				return pt.CallSiteMayRef(i.Callee(), pt.NodeFor(s.Ptr()))
			})
		case *core.StoreInst:
			for k := 0; k < len(pending); k++ {
				s := pending[k]
				if pt.Alias(s.Ptr(), i.Ptr()) == dsa.MustAlias &&
					core.TypesEqual(s.Val().Type(), i.Val().Type()) {
					erase(s, "overwritten before any possible read")
					pending = append(pending[:k], pending[k+1:]...)
					k--
				}
			}
			pending = append(pending, i)
		case *core.RetInst:
			// The frame dies here: stores to objects whose every
			// allocation site is an alloca of this function, with no
			// possible reader between store and return, are unobservable.
			for _, s := range pending {
				if frameLocalObject(pt, f, s.Ptr()) {
					erase(s, "function-local object dead at return")
				}
			}
		}
	}
	return changed
}

// frameLocalObject reports whether ptr provably addresses memory that
// cannot outlive f: a non-escaping class whose every allocation site is an
// alloca belonging to f.
func frameLocalObject(pt *dsa.Result, f *core.Function, ptr core.Value) bool {
	n := pt.NodeFor(ptr)
	if n == nil || n.Unknown || n.Escaped || !n.Stack || n.Heap || n.Global || len(n.Sites) == 0 {
		return false
	}
	for _, s := range n.Sites {
		if s.Kind != dsa.SiteAlloca || s.Fn != f.Name() {
			return false
		}
	}
	return true
}
