package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// SROA is the scalar expansion pass (§3.2, "scalar expansion precedes
// [stack promotion] and expands local structures to scalars wherever
// possible, so that their fields can be mapped to SSA registers as well").
// An alloca of struct type whose address is used only by constant-index
// getelementptrs selecting a single field is replaced by one alloca per
// field; mem2reg can then promote each. Single-level arrays of first-class
// elements with constant indices are expanded the same way.
type SROA struct {
	// MaxArrayLen bounds array expansion (avoids exploding huge arrays).
	MaxArrayLen int
}

// NewSROA returns the pass with the default array bound.
func NewSROA() *SROA { return &SROA{MaxArrayLen: 16} }

// Name returns the pass name.
func (*SROA) Name() string { return "sroa" }

// Preserves: expanding an aggregate alloca into scalar allocas rewrites
// loads/stores in place; block structure and calls are untouched.
func (*SROA) Preserves() analysis.Preserved { return analysis.PreserveAll }

// RunOnFunction expands aggregates until no more can be expanded (an
// expansion of a struct of structs exposes new candidates).
func (s *SROA) RunOnFunction(f *core.Function) int {
	total := 0
	for {
		n := s.onePass(f)
		total += n
		if n == 0 {
			return total
		}
	}
}

func (s *SROA) onePass(f *core.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	changed := 0
	for _, inst := range append([]core.Instruction(nil), f.Entry().Instrs...) {
		a, ok := inst.(*core.AllocaInst)
		if !ok || a.Parent() == nil || a.NumElems() != nil {
			continue
		}
		switch t := a.AllocType.(type) {
		case *core.StructType:
			if s.expandStruct(f, a, t) {
				changed++
			}
		case *core.ArrayType:
			if t.Len <= s.MaxArrayLen && core.IsFirstClass(t.Elem) && s.expandArray(f, a, t) {
				changed++
			}
		}
	}
	return changed
}

// gepSelectsElement checks that g is "getelementptr a, 0, <const k>"
// possibly with further trailing indices, returning k and the remaining
// index list.
func gepSelectsElement(g *core.GetElementPtrInst) (int, []core.Value, bool) {
	idx := g.Indices()
	if len(idx) < 2 {
		return 0, nil, false
	}
	first, ok := idx[0].(*core.ConstantInt)
	if !ok || !first.IsZero() {
		return 0, nil, false
	}
	k, ok := idx[1].(*core.ConstantInt)
	if !ok {
		return 0, nil, false
	}
	return int(k.SExt()), idx[2:], true
}

// expandable reports whether every use of a is a GEP of the right shape
// whose result is itself used only by loads and stores (as the pointer).
// A GEP result that escapes — passed to a call, stored, compared, cast —
// could be used for pointer arithmetic across elements, which per-element
// allocas cannot honor.
func expandable(a *core.AllocaInst, nElems int) bool {
	for _, u := range a.Uses() {
		g, ok := u.User.(*core.GetElementPtrInst)
		if !ok {
			return false
		}
		k, _, ok := gepSelectsElement(g)
		if !ok || k < 0 || k >= nElems {
			return false
		}
		for _, gu := range g.Uses() {
			switch inst := gu.User.(type) {
			case *core.LoadInst:
				// ok
			case *core.StoreInst:
				if inst.Ptr() != core.Value(g) {
					return false // the address itself is stored away
				}
			default:
				return false
			}
		}
	}
	return true
}

// expandStruct splits a struct alloca into per-field allocas.
func (s *SROA) expandStruct(f *core.Function, a *core.AllocaInst, st *core.StructType) bool {
	if len(st.Fields) == 0 || !expandable(a, len(st.Fields)) {
		return false
	}
	elems := make([]*core.AllocaInst, len(st.Fields))
	pos := f.Entry().IndexOf(a)
	for i, ft := range st.Fields {
		elems[i] = core.NewAlloca(ft, nil)
		elems[i].SetName(a.Name() + ".f" + itoa(i))
		f.Entry().InsertAt(pos, elems[i])
		pos++
	}
	s.rewriteUses(a, func(k int) core.Value { return elems[k] })
	f.Entry().Erase(a)
	return true
}

// expandArray splits a small array alloca into per-element allocas.
func (s *SROA) expandArray(f *core.Function, a *core.AllocaInst, at *core.ArrayType) bool {
	if at.Len == 0 || !expandable(a, at.Len) {
		return false
	}
	elems := make([]*core.AllocaInst, at.Len)
	pos := f.Entry().IndexOf(a)
	for i := range elems {
		elems[i] = core.NewAlloca(at.Elem, nil)
		elems[i].SetName(a.Name() + ".e" + itoa(i))
		f.Entry().InsertAt(pos, elems[i])
		pos++
	}
	s.rewriteUses(a, func(k int) core.Value { return elems[k] })
	f.Entry().Erase(a)
	return true
}

// rewriteUses replaces each GEP on a with either the element pointer
// itself (no trailing indices) or a new GEP on the element pointer.
func (s *SROA) rewriteUses(a *core.AllocaInst, elem func(int) core.Value) {
	for _, u := range append([]core.Use(nil), a.Uses()...) {
		g := u.User.(*core.GetElementPtrInst)
		k, rest, _ := gepSelectsElement(g)
		base := elem(k)
		if len(rest) == 0 {
			core.ReplaceAllUses(g, base)
			g.Parent().Erase(g)
			continue
		}
		// Re-root the remaining path: getelementptr base, 0, rest...
		idx := append([]core.Value{core.NewInt(core.LongType, 0)}, rest...)
		ng := core.NewGEP(base, idx...)
		ng.SetName(g.Name())
		g.Parent().InsertBefore(ng, g)
		core.ReplaceAllUses(g, ng)
		g.Parent().Erase(g)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
