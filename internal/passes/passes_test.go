package passes

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/interp"
)

func parse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func mustVerify(t *testing.T, m *core.Module) {
	t.Helper()
	if err := core.Verify(m); err != nil {
		t.Fatalf("module invalid after pass: %v\n%s", err, m)
	}
}

func countOps(f *core.Function, op core.Opcode) int {
	n := 0
	f.ForEachInst(func(inst core.Instruction) bool {
		if inst.Opcode() == op {
			n++
		}
		return true
	})
	return n
}

// ---------------------------------------------------------------------------
// InstCombine

func TestInstCombineConstantFolding(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	%a = add int 2, 3
	%b = mul int %a, 4
	%c = sub int %b, 5
	ret int %c
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	ret := f.Entry().Terminator().(*core.RetInst)
	ci, ok := ret.Value().(*core.ConstantInt)
	if !ok || ci.SExt() != 15 {
		t.Fatalf("folded to %v, want 15\n%s", ret.Value(), m)
	}
	if f.NumInstructions() != 1 {
		t.Errorf("dead folded instructions remain:\n%s", m)
	}
}

func TestInstCombineIdentities(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%a = add int %x, 0
	%b = mul int %a, 1
	%c = or int %b, 0
	%d = and int %c, -1
	ret int %d
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	ret := f.Entry().Terminator().(*core.RetInst)
	if ret.Value() != core.Value(f.Args[0]) {
		t.Fatalf("identities not simplified:\n%s", m)
	}
}

func TestInstCombineXIdentities(t *testing.T) {
	m := parse(t, `
bool %f(int %x) {
entry:
	%z = sub int %x, %x
	%c = seteq int %z, 0
	ret bool %c
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	ret := f.Entry().Terminator().(*core.RetInst)
	cb, ok := ret.Value().(*core.ConstantBool)
	if !ok || !cb.Val {
		t.Fatalf("x-x==0 not folded to true:\n%s", m)
	}
}

func TestInstCombineFloatSafety(t *testing.T) {
	// x * 0.0 must NOT fold (NaN), x == x must not fold for floats.
	m := parse(t, `
bool %f(double %x) {
entry:
	%m = mul double %x, 0.0
	%c = seteq double %m, %m
	ret bool %c
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	if countOps(f, core.OpMul) != 1 || countOps(f, core.OpSetEQ) != 1 {
		t.Fatalf("unsafe FP folding occurred:\n%s", m)
	}
}

func TestInstCombineReassociation(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%a = add int %x, 3
	%b = add int %a, 4
	ret int %b
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	NewADCE().RunOnFunction(f)
	mustVerify(t, m)
	if countOps(f, core.OpAdd) != 1 {
		t.Fatalf("(x+3)+4 not reassociated to x+7:\n%s", m)
	}
}

func TestInstCombineCastPairs(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%a = cast int %x to long
	%b = cast long %a to int
	ret int %b
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	ret := f.Entry().Terminator().(*core.RetInst)
	if ret.Value() != core.Value(f.Args[0]) {
		t.Fatalf("lossless cast round trip not eliminated:\n%s", m)
	}
}

func TestInstCombineLossyCastPairNotFolded(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%a = cast int %x to sbyte
	%b = cast sbyte %a to int
	ret int %b
}
`)
	f := m.Func("f")
	NewInstCombine().RunOnFunction(f)
	mustVerify(t, m)
	if countOps(f, core.OpCast) != 2 {
		t.Fatalf("lossy cast pair wrongly eliminated:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// SimplifyCFG

func TestSimplifyCFGConstantBranch(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	br bool true, label %a, label %b
a:
	ret int 1
b:
	ret int 2
}
`)
	f := m.Func("f")
	n := NewSimplifyCFG().RunOnFunction(f)
	mustVerify(t, m)
	if n == 0 || len(f.Blocks) != 1 {
		t.Fatalf("constant branch not folded (blocks=%d):\n%s", len(f.Blocks), m)
	}
	ret := f.Entry().Terminator().(*core.RetInst)
	if ret.Value().(*core.ConstantInt).SExt() != 1 {
		t.Fatal("wrong arm taken")
	}
}

func TestSimplifyCFGConstantSwitch(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	switch int 5, label %def [
		int 5, label %five
		int 6, label %six ]
five:
	ret int 50
six:
	ret int 60
def:
	ret int 0
}
`)
	f := m.Func("f")
	NewSimplifyCFG().RunOnFunction(f)
	mustVerify(t, m)
	if len(f.Blocks) != 1 {
		t.Fatalf("switch not collapsed:\n%s", m)
	}
	if f.Entry().Terminator().(*core.RetInst).Value().(*core.ConstantInt).SExt() != 50 {
		t.Fatal("wrong case taken")
	}
}

func TestSimplifyCFGMergeAndPhis(t *testing.T) {
	m := parse(t, `
int %f(bool %c) {
entry:
	br bool %c, label %a, label %b
a:
	br label %join
b:
	br label %join
join:
	%x = phi int [ 1, %a ], [ 2, %b ]
	ret int %x
}
`)
	f := m.Func("f")
	NewSimplifyCFG().RunOnFunction(f)
	mustVerify(t, m)
	// The diamond with empty arms cannot fully merge (phi needs two
	// preds), but the module must stay valid and not grow.
	if len(f.Blocks) > 4 {
		t.Fatalf("blocks grew: %d", len(f.Blocks))
	}
}

func TestSimplifyCFGUnreachable(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	ret int 0
dead1:
	%x = add int 1, 2
	br label %dead2
dead2:
	%y = add int %x, 3
	br label %dead1
}
`)
	f := m.Func("f")
	NewSimplifyCFG().RunOnFunction(f)
	mustVerify(t, m)
	if len(f.Blocks) != 1 {
		t.Fatalf("unreachable cycle not removed:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// Mem2Reg

func TestMem2RegStraightLine(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%p = alloca int
	store int %x, int* %p
	%v = load int* %p
	%w = add int %v, 1
	store int %w, int* %p
	%r = load int* %p
	ret int %r
}
`)
	f := m.Func("f")
	n := NewMem2Reg().RunOnFunction(f)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("promoted %d allocas, want 1", n)
	}
	if countOps(f, core.OpAlloca)+countOps(f, core.OpLoad)+countOps(f, core.OpStore) != 0 {
		t.Fatalf("memory ops remain:\n%s", m)
	}
}

func TestMem2RegPhiInsertion(t *testing.T) {
	m := parse(t, `
int %f(bool %c) {
entry:
	%p = alloca int
	br bool %c, label %a, label %b
a:
	store int 1, int* %p
	br label %join
b:
	store int 2, int* %p
	br label %join
join:
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	NewMem2Reg().RunOnFunction(f)
	mustVerify(t, m)
	if countOps(f, core.OpAlloca) != 0 {
		t.Fatalf("alloca not promoted:\n%s", m)
	}
	if countOps(f, core.OpPhi) != 1 {
		t.Fatalf("expected 1 phi, got %d:\n%s", countOps(f, core.OpPhi), m)
	}
}

func TestMem2RegLoop(t *testing.T) {
	m := parse(t, `
int %sum(int %n) {
entry:
	%i = alloca int
	%s = alloca int
	store int 0, int* %i
	store int 0, int* %s
	br label %cond
cond:
	%iv = load int* %i
	%c = setlt int %iv, %n
	br bool %c, label %body, label %done
body:
	%sv = load int* %s
	%s2 = add int %sv, %iv
	store int %s2, int* %s
	%i2 = add int %iv, 1
	store int %i2, int* %i
	br label %cond
done:
	%r = load int* %s
	ret int %r
}
`)
	f := m.Func("sum")
	n := NewMem2Reg().RunOnFunction(f)
	mustVerify(t, m)
	if n != 2 {
		t.Fatalf("promoted %d, want 2", n)
	}
	if countOps(f, core.OpPhi) != 2 {
		t.Fatalf("want 2 phis in loop header, got %d:\n%s", countOps(f, core.OpPhi), m)
	}
}

func TestMem2RegEscapedNotPromoted(t *testing.T) {
	m := parse(t, `
declare void %take(int*)

int %f() {
entry:
	%p = alloca int
	store int 1, int* %p
	call void %take(int* %p)
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	n := NewMem2Reg().RunOnFunction(f)
	mustVerify(t, m)
	if n != 0 || countOps(f, core.OpAlloca) != 1 {
		t.Fatalf("escaped alloca wrongly promoted:\n%s", m)
	}
}

func TestMem2RegUninitializedLoadGetsUndef(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	%p = alloca int
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	NewMem2Reg().RunOnFunction(f)
	mustVerify(t, m)
	ret := f.Entry().Terminator().(*core.RetInst)
	if _, ok := ret.Value().(*core.ConstantUndef); !ok {
		t.Fatalf("uninitialized load should be undef, got %T", ret.Value())
	}
}

// ---------------------------------------------------------------------------
// SROA

func TestSROAStruct(t *testing.T) {
	m := parse(t, `
int %f(int %x, int %y) {
entry:
	%pair = alloca { int, int }
	%a = getelementptr { int, int }* %pair, long 0, ubyte 0
	%b = getelementptr { int, int }* %pair, long 0, ubyte 1
	store int %x, int* %a
	store int %y, int* %b
	%va = load int* %a
	%vb = load int* %b
	%s = add int %va, %vb
	ret int %s
}
`)
	f := m.Func("f")
	n := NewSROA().RunOnFunction(f)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("expanded %d aggregates, want 1", n)
	}
	if countOps(f, core.OpGetElementPtr) != 0 {
		t.Fatalf("GEPs remain after SROA:\n%s", m)
	}
	// Now mem2reg finishes the job.
	if NewMem2Reg().RunOnFunction(f) != 2 {
		t.Fatalf("expanded fields not promotable:\n%s", m)
	}
	mustVerify(t, m)
}

func TestSROANestedStruct(t *testing.T) {
	m := parse(t, `
int %f(int %x) {
entry:
	%o = alloca { int, { int, int } }
	%p = getelementptr { int, { int, int } }* %o, long 0, ubyte 1, ubyte 0
	store int %x, int* %p
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	total := NewSROA().RunOnFunction(f)
	mustVerify(t, m)
	if total < 2 {
		t.Fatalf("nested expansion count = %d, want >= 2:\n%s", total, m)
	}
	NewMem2Reg().RunOnFunction(f)
	NewADCE().RunOnFunction(f)
	mustVerify(t, m)
	if countOps(f, core.OpAlloca) != 0 {
		t.Fatalf("nested SROA left allocas:\n%s", m)
	}
}

func TestSROAEscapedStructNotExpanded(t *testing.T) {
	m := parse(t, `
declare void %take({ int, int }*)

void %f() {
entry:
	%pair = alloca { int, int }
	call void %take({ int, int }* %pair)
	ret void
}
`)
	f := m.Func("f")
	if n := NewSROA().RunOnFunction(f); n != 0 {
		t.Fatalf("escaped struct expanded (%d)", n)
	}
	mustVerify(t, m)
}

// ---------------------------------------------------------------------------
// ADCE

func TestADCE(t *testing.T) {
	m := parse(t, `
declare void %effect()

int %f(int %x) {
entry:
	%dead1 = add int %x, 1
	%dead2 = mul int %dead1, 2
	%live = add int %x, 5
	call void %effect()
	ret int %live
}
`)
	f := m.Func("f")
	n := NewADCE().RunOnFunction(f)
	mustVerify(t, m)
	if n != 2 {
		t.Fatalf("deleted %d, want 2:\n%s", n, m)
	}
	if countOps(f, core.OpCall) != 1 {
		t.Fatal("side-effecting call removed")
	}
}

func TestADCEDeadPhiCycle(t *testing.T) {
	m := parse(t, `
int %f(int %n) {
entry:
	br label %loop
loop:
	%dead = phi int [ 0, %entry ], [ %dead2, %loop ]
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%dead2 = add int %dead, 1
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %i2
}
`)
	f := m.Func("f")
	n := NewADCE().RunOnFunction(f)
	mustVerify(t, m)
	if n != 2 {
		t.Fatalf("dead phi cycle: deleted %d, want 2:\n%s", n, m)
	}
}

// ---------------------------------------------------------------------------
// SCCP

func TestSCCPThroughDeadBranch(t *testing.T) {
	// x is 5 on both executable paths; the classic SCCP win is proving it
	// despite the (never-taken) else arm assigning a different value...
	// here the condition is constant so only one arm executes.
	m := parse(t, `
int %f() {
entry:
	br bool true, label %a, label %b
a:
	br label %join
b:
	br label %join
join:
	%x = phi int [ 5, %a ], [ 99, %b ]
	%y = add int %x, 1
	ret int %y
}
`)
	f := m.Func("f")
	n := NewSCCP().RunOnFunction(f)
	mustVerify(t, m)
	if n == 0 {
		t.Fatal("SCCP found nothing")
	}
	ret := f.Blocks[len(f.Blocks)-1].Terminator().(*core.RetInst)
	ci, ok := ret.Value().(*core.ConstantInt)
	if !ok || ci.SExt() != 6 {
		t.Fatalf("SCCP did not prove 6 through dead branch:\n%s", m)
	}
}

func TestSCCPLoopInvariant(t *testing.T) {
	// A phi that always receives the same constant around a loop.
	m := parse(t, `
int %f(int %n) {
entry:
	br label %loop
loop:
	%k = phi int [ 7, %entry ], [ %k, %loop ]
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%i2 = add int %i, %k
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %k
}
`)
	f := m.Func("f")
	NewSCCP().RunOnFunction(f)
	mustVerify(t, m)
	var exitRet *core.RetInst
	f.ForEachInst(func(inst core.Instruction) bool {
		if r, ok := inst.(*core.RetInst); ok {
			exitRet = r
		}
		return true
	})
	ci, ok := exitRet.Value().(*core.ConstantInt)
	if !ok || ci.SExt() != 7 {
		t.Fatalf("loop-invariant phi not proven constant:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// CSE

func TestCSE(t *testing.T) {
	m := parse(t, `
int %f(int %a, int %b) {
entry:
	%x = add int %a, %b
	%y = add int %a, %b
	%z = add int %b, %a
	%s1 = add int %x, %y
	%s2 = add int %s1, %z
	ret int %s2
}
`)
	f := m.Func("f")
	n := NewCSE().RunOnFunction(f)
	mustVerify(t, m)
	if n != 2 {
		t.Fatalf("CSE removed %d, want 2 (incl. commuted):\n%s", n, m)
	}
}

func TestCSEAcrossDominator(t *testing.T) {
	m := parse(t, `
int %f(int %a, bool %c) {
entry:
	%x = mul int %a, %a
	br bool %c, label %t, label %e
t:
	%y = mul int %a, %a
	ret int %y
e:
	ret int %x
}
`)
	f := m.Func("f")
	if n := NewCSE().RunOnFunction(f); n != 1 {
		t.Fatalf("dominated duplicate not eliminated (%d)", n)
	}
	mustVerify(t, m)
}

func TestCSENotAcrossSiblings(t *testing.T) {
	m := parse(t, `
int %f(int %a, bool %c) {
entry:
	br bool %c, label %t, label %e
t:
	%x = mul int %a, %a
	ret int %x
e:
	%y = mul int %a, %a
	ret int %y
}
`)
	f := m.Func("f")
	if n := NewCSE().RunOnFunction(f); n != 0 {
		t.Fatalf("CSE across non-dominating siblings (%d)", n)
	}
	mustVerify(t, m)
}

func TestCSEGEP(t *testing.T) {
	m := parse(t, `
int %f(int* %p) {
entry:
	%a = getelementptr int* %p, long 1
	%b = getelementptr int* %p, long 1
	%v1 = load int* %a
	%v2 = load int* %b
	%s = add int %v1, %v2
	ret int %s
}
`)
	f := m.Func("f")
	// Two eliminations: the duplicate GEP, and then the second load —
	// its address must-aliases the first load's with no clobber between.
	if n := NewCSE().RunOnFunction(f); n != 2 {
		t.Fatalf("duplicate GEP + redundant load not eliminated (%d)", n)
	}
	mustVerify(t, m)
}

// ---------------------------------------------------------------------------
// Inline

func TestInlineSimple(t *testing.T) {
	m := parse(t, `
internal int %double(int %x) {
entry:
	%r = mul int %x, 2
	ret int %r
}

int %main(int %a) {
entry:
	%v = call int %double(int %a)
	%w = add int %v, 1
	ret int %w
}
`)
	inl := NewInline(DefaultInlineThreshold)
	inl.RunOnModule(m)
	mustVerify(t, m)
	if inl.NumInlined != 1 {
		t.Fatalf("inlined %d, want 1", inl.NumInlined)
	}
	if inl.NumDeleted != 1 {
		t.Fatalf("deleted %d, want 1 (single internal callee)", inl.NumDeleted)
	}
	if m.Func("double") != nil {
		t.Fatal("dead callee not removed")
	}
	if countOps(m.Func("main"), core.OpCall) != 0 {
		t.Fatalf("call remains:\n%s", m)
	}
}

func TestInlineMultipleReturns(t *testing.T) {
	m := parse(t, `
internal int %pick(bool %c) {
entry:
	br bool %c, label %a, label %b
a:
	ret int 10
b:
	ret int 20
}

int %main(bool %c) {
entry:
	%v = call int %pick(bool %c)
	ret int %v
}
`)
	NewInline(DefaultInlineThreshold).RunOnModule(m)
	mustVerify(t, m)
	main := m.Func("main")
	if countOps(main, core.OpCall) != 0 {
		t.Fatalf("not inlined:\n%s", m)
	}
	if countOps(main, core.OpPhi) != 1 {
		t.Fatalf("multi-return inline needs a phi:\n%s", m)
	}
}

func TestInlineSplitRetargetsPhis(t *testing.T) {
	m := parse(t, `
internal int %id(int %x) {
entry:
	ret int %x
}

int %main(bool %c, int %a) {
entry:
	%v = call int %id(int %a)
	br bool %c, label %t, label %join
t:
	br label %join
join:
	%p = phi int [ %v, %entry ], [ 0, %t ]
	ret int %p
}
`)
	NewInline(DefaultInlineThreshold).RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("main"), core.OpCall) != 0 {
		t.Fatalf("not inlined:\n%s", m)
	}
}

func TestInlineRecursionSkipped(t *testing.T) {
	m := parse(t, `
int %fact(int %n) {
entry:
	%c = setle int %n, 1
	br bool %c, label %base, label %rec
base:
	ret int 1
rec:
	%n1 = sub int %n, 1
	%r = call int %fact(int %n1)
	%p = mul int %n, %r
	ret int %p
}
`)
	inl := NewInline(DefaultInlineThreshold)
	inl.RunOnModule(m)
	mustVerify(t, m)
	if inl.NumInlined != 0 {
		t.Fatalf("self-recursive call inlined %d times", inl.NumInlined)
	}
}

func TestInlineUnwindPropagates(t *testing.T) {
	// Inlining a function containing unwind at a call site keeps the
	// unwind (it propagates to this frame's caller).
	m := parse(t, `
internal void %thrower() {
entry:
	unwind
}

void %wrap() {
entry:
	call void %thrower()
	ret void
}
`)
	NewInline(DefaultInlineThreshold).RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("wrap"), core.OpUnwind) != 1 {
		t.Fatalf("unwind lost in inlining:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// DGE

func TestDeadGlobalElim(t *testing.T) {
	m := parse(t, `
%live = global int 1
%deadvar = internal global int 2
%cycleA = internal global int* cast (int** %cycleB to int*)
%cycleB = internal global int* cast (int** %cycleA to int*)

internal void %deadfn() {
entry:
	call void %deadhelper()
	ret void
}
internal void %deadhelper() {
entry:
	call void %deadfn()
	ret void
}

void %main() {
entry:
	%v = load int* %live
	ret void
}
`)
	dge := NewDeadGlobalElim()
	dge.RunOnModule(m)
	mustVerify(t, m)
	if dge.NumFuncs != 2 {
		t.Errorf("deleted %d functions, want 2 (dead cycle)", dge.NumFuncs)
	}
	if dge.NumGlobals != 3 {
		t.Errorf("deleted %d globals, want 3 (deadvar + pointer cycle)", dge.NumGlobals)
	}
	if m.Global("live") == nil || m.Func("main") == nil {
		t.Error("live objects deleted")
	}
}

func TestDGEKeepsInitializerReferences(t *testing.T) {
	m := parse(t, `
%table = global [1 x void ()*] [ void ()* %used ]

internal void %used() {
entry:
	ret void
}
`)
	NewDeadGlobalElim().RunOnModule(m)
	mustVerify(t, m)
	if m.Func("used") == nil {
		t.Fatal("function referenced from live initializer deleted")
	}
}

// ---------------------------------------------------------------------------
// DAE

func TestDeadArgElim(t *testing.T) {
	m := parse(t, `
internal int %callee(int %used, int %unused) {
entry:
	%r = add int %used, 1
	ret int %r
}

void %main() {
entry:
	%x = call int %callee(int 1, int 2)
	ret void
}
`)
	dae := NewDeadArgElim()
	dae.RunOnModule(m)
	mustVerify(t, m)
	if dae.NumArgs != 1 {
		t.Errorf("removed %d args, want 1", dae.NumArgs)
	}
	if dae.NumRets != 1 {
		t.Errorf("removed %d rets, want 1 (result unused)", dae.NumRets)
	}
	callee := m.Func("callee")
	if callee == nil {
		t.Fatal("callee lost")
	}
	if len(callee.Args) != 1 || callee.Sig.Ret != core.VoidType {
		t.Fatalf("signature not rewritten: %s", callee.Sig)
	}
	// Call site rewritten.
	main := m.Func("main")
	var call *core.CallInst
	main.ForEachInst(func(inst core.Instruction) bool {
		if c, ok := inst.(*core.CallInst); ok {
			call = c
		}
		return true
	})
	if call == nil || len(call.Args()) != 1 {
		t.Fatalf("call site not rewritten:\n%s", m)
	}
}

func TestDAESkipsExternalAndAddressTaken(t *testing.T) {
	m := parse(t, `
%fp = global int (int)* %taken

internal int %taken(int %unused) {
entry:
	ret int 0
}

int %exported(int %unused) {
entry:
	ret int 0
}
`)
	dae := NewDeadArgElim()
	dae.RunOnModule(m)
	mustVerify(t, m)
	if dae.NumArgs != 0 {
		t.Fatalf("DAE modified external/address-taken functions (%d)", dae.NumArgs)
	}
}

// ---------------------------------------------------------------------------
// IPCP

func TestIPConstProp(t *testing.T) {
	m := parse(t, `
internal int %f(int %k) {
entry:
	%r = mul int %k, 2
	ret int %r
}

int %main() {
entry:
	%a = call int %f(int 21)
	%b = call int %f(int 21)
	%s = add int %a, %b
	ret int %s
}
`)
	n := NewIPConstProp().RunOnModule(m)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("IPCP propagated %d args, want 1", n)
	}
	// After scalar clean-up, f should just return 42.
	NewInstCombine().RunOnFunction(m.Func("f"))
	ret := m.Func("f").Entry().Terminator().(*core.RetInst)
	if ci, ok := ret.Value().(*core.ConstantInt); !ok || ci.SExt() != 42 {
		t.Fatalf("constant not propagated into callee:\n%s", m)
	}
}

func TestIPCPDifferentConstantsNotPropagated(t *testing.T) {
	m := parse(t, `
internal int %f(int %k) {
entry:
	ret int %k
}

int %main() {
entry:
	%a = call int %f(int 1)
	%b = call int %f(int 2)
	%s = add int %a, %b
	ret int %s
}
`)
	if n := NewIPConstProp().RunOnModule(m); n != 0 {
		t.Fatalf("IPCP propagated differing constants (%d)", n)
	}
	mustVerify(t, m)
}

// ---------------------------------------------------------------------------
// Dead type elimination

func TestDeadTypeElim(t *testing.T) {
	m := parse(t, `
%used = type { int, int }
%unused = type { double, double }

void %f(%used* %p) {
entry:
	ret void
}
`)
	n := NewDeadTypeElim().RunOnModule(m)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("removed %d types, want 1", n)
	}
	if _, ok := m.NamedType("used"); !ok {
		t.Fatal("used type removed")
	}
	if _, ok := m.NamedType("unused"); ok {
		t.Fatal("unused type kept")
	}
}

// ---------------------------------------------------------------------------
// PruneEH

func TestPruneEH(t *testing.T) {
	m := parse(t, `
internal void %cannotThrow() {
entry:
	ret void
}

internal void %canThrow() {
entry:
	unwind
}

void %main() {
entry:
	invoke void %cannotThrow() to label %ok1 unwind to label %ex
ok1:
	invoke void %canThrow() to label %ok2 unwind to label %ex
ok2:
	ret void
ex:
	ret void
}
`)
	n := NewPruneEH().RunOnModule(m)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("pruned %d invokes, want 1:\n%s", n, m)
	}
	main := m.Func("main")
	if countOps(main, core.OpInvoke) != 1 || countOps(main, core.OpCall) != 1 {
		t.Fatalf("wrong invoke converted:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// Internalize + full pipelines

func TestInternalize(t *testing.T) {
	m := parse(t, `
%g = global int 0

void %helper() {
entry:
	ret void
}

void %main() {
entry:
	ret void
}
`)
	n := NewInternalize().RunOnModule(m)
	mustVerify(t, m)
	if n != 2 {
		t.Fatalf("internalized %d, want 2", n)
	}
	if m.Func("main").Linkage != core.ExternalLinkage {
		t.Fatal("main must stay external")
	}
	if m.Func("helper").Linkage != core.InternalLinkage || m.Global("g").Linkage != core.InternalLinkage {
		t.Fatal("helper/g not internalized")
	}
}

func TestStandardPipelineEndToEnd(t *testing.T) {
	// Front-end style code: locals on the stack, redundant loads, a
	// constant-foldable branch. The standard pipeline should reduce it to
	// a tight loop in pure SSA.
	m := parse(t, `
int %compute(int %n) {
entry:
	%i = alloca int
	%acc = alloca int
	store int 0, int* %i
	store int 0, int* %acc
	%flag = seteq int 1, 1
	br bool %flag, label %loop, label %never
never:
	store int 999, int* %acc
	br label %loop
loop:
	%iv = load int* %i
	%c = setlt int %iv, %n
	br bool %c, label %body, label %exit
body:
	%av = load int* %acc
	%t1 = mul int %iv, 2
	%t2 = mul int %iv, 2
	%sum = add int %t1, %t2
	%acc2 = add int %av, %sum
	store int %acc2, int* %acc
	%i2 = add int %iv, 1
	store int %i2, int* %i
	br label %loop
exit:
	%r = load int* %acc
	ret int %r
}
`)
	pm := NewPassManager()
	pm.VerifyEach = true
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("compute")
	if countOps(f, core.OpAlloca)+countOps(f, core.OpLoad)+countOps(f, core.OpStore) != 0 {
		t.Errorf("memory traffic remains:\n%s", m)
	}
	if countOps(f, core.OpMul) > 1 {
		t.Errorf("CSE missed duplicate mul:\n%s", m)
	}
	for _, b := range f.Blocks {
		if b.Name() == "never" {
			t.Errorf("dead block not removed:\n%s", m)
		}
	}
}

func TestLinkTimePipelineEndToEnd(t *testing.T) {
	m := parse(t, `
%deadglobal = internal global int 7

internal int %square(int %x) {
entry:
	%r = mul int %x, %x
	ret int %r
}

internal int %deadfn(int %x) {
entry:
	ret int %x
}

internal void %nothrow() {
entry:
	ret void
}

int %main() {
entry:
	invoke void %nothrow() to label %ok unwind to label %ex
ok:
	%v = call int %square(int 6)
	ret int %v
ex:
	ret int -1
}
`)
	pm := NewPassManager()
	pm.VerifyEach = true
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if m.Func("deadfn") != nil || m.Global("deadglobal") != nil {
		t.Errorf("dead objects survive link-time pipeline:\n%s", m)
	}
	main := m.Func("main")
	if countOps(main, core.OpInvoke) != 0 {
		t.Errorf("invoke of nothrow function not pruned:\n%s", m)
	}
	// square(6) should be fully evaluated after inlining + folding.
	ret := main.Entry().Terminator()
	if r, ok := ret.(*core.RetInst); ok {
		if ci, ok := r.Value().(*core.ConstantInt); !ok || ci.SExt() != 36 {
			t.Errorf("main does not return 36:\n%s", m)
		}
	} else {
		t.Errorf("main entry does not end in ret:\n%s", m)
	}
}

func TestPassManagerVerifyCatchesCorruption(t *testing.T) {
	m := parse(t, `
int %f() {
entry:
	ret int 1
}
`)
	pm := NewPassManager()
	pm.VerifyEach = true
	pm.Add(&corruptingPass{})
	if _, err := pm.Run(m); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("verifier did not catch corruption: %v", err)
	}
}

type corruptingPass struct{}

func (*corruptingPass) Name() string { return "corrupt" }
func (*corruptingPass) RunOnModule(m *core.Module) int {
	f := m.Funcs[0]
	bad := core.NewBinary(core.OpAdd, core.NewInt(core.IntType, 1), core.NewInt(core.LongType, 2))
	f.Entry().InsertAt(0, bad)
	return 1
}

func TestSROADoesNotExpandEscapingElementPointer(t *testing.T) {
	// Regression: the decayed pointer &a[0] escapes into a call that
	// indexes past element 0; expansion would miscompile.
	m := parse(t, `
declare int %sum(int*, int)

int %f() {
entry:
	%a = alloca [4 x int]
	%p0 = getelementptr [4 x int]* %a, long 0, long 0
	store int 1, int* %p0
	%decay = getelementptr [4 x int]* %a, long 0, long 0
	%r = call int %sum(int* %decay, int 4)
	ret int %r
}
`)
	f := m.Func("f")
	if n := NewSROA().RunOnFunction(f); n != 0 {
		t.Fatalf("SROA expanded an escaping array (%d)", n)
	}
	mustVerify(t, m)
	if countOps(f, core.OpAlloca) != 1 {
		t.Fatal("array alloca should survive")
	}
}

func TestSROAStoredAddressNotExpanded(t *testing.T) {
	m := parse(t, `
%holder = global int* null

void %f() {
entry:
	%a = alloca [2 x int]
	%p = getelementptr [2 x int]* %a, long 0, long 1
	store int* %p, int** %holder
	ret void
}
`)
	f := m.Func("f")
	if n := NewSROA().RunOnFunction(f); n != 0 {
		t.Fatalf("SROA expanded despite stored element address (%d)", n)
	}
	mustVerify(t, m)
}

// ---------------------------------------------------------------------------
// GlobalLoadElim (Mod/Ref-driven)

func TestGlobalLoadElimAcrossPureCall(t *testing.T) {
	m := parse(t, `
%counter = global int 0

internal int %pure(int %x) {
entry:
	%y = add int %x, 1
	ret int %y
}

int %main() {
entry:
	%a = load int* %counter
	%r = call int %pure(int %a)
	%b = load int* %counter
	%s = add int %r, %b
	ret int %s
}
`)
	n := NewGlobalLoadElim().RunOnModule(m)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("eliminated %d loads, want 1:\n%s", n, m)
	}
	if countOps(m.Func("main"), core.OpLoad) != 1 {
		t.Fatalf("redundant load across pure call survives:\n%s", m)
	}
}

func TestGlobalLoadElimBlockedByWriter(t *testing.T) {
	m := parse(t, `
%counter = global int 0

internal void %bump() {
entry:
	%v = load int* %counter
	%v2 = add int %v, 1
	store int %v2, int* %counter
	ret void
}

int %main() {
entry:
	%a = load int* %counter
	call void %bump()
	%b = load int* %counter
	%s = add int %a, %b
	ret int %s
}
`)
	n := NewGlobalLoadElim().RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("main"), core.OpLoad) != 2 {
		t.Fatalf("load across modifying call wrongly removed (n=%d):\n%s", n, m)
	}
}

func TestGlobalLoadElimStoreForwarding(t *testing.T) {
	m := parse(t, `
%g = global int 0

int %main(int %x) {
entry:
	store int %x, int* %g
	%v = load int* %g
	ret int %v
}
`)
	NewGlobalLoadElim().RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("main"), core.OpLoad) != 0 {
		t.Fatalf("store-to-load not forwarded:\n%s", m)
	}
}

func TestGlobalLoadElimUnknownStoreInvalidates(t *testing.T) {
	m := parse(t, `
%g = global int 7

int %main(int* %p) {
entry:
	%a = load int* %g
	store int 0, int* %p
	%b = load int* %g
	%s = add int %a, %b
	ret int %s
}
`)
	NewGlobalLoadElim().RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("main"), core.OpLoad) != 2 {
		t.Fatalf("load across aliasing store wrongly removed:\n%s", m)
	}
}

func TestGlobalLoadElimConstGlobalSurvivesCalls(t *testing.T) {
	m := parse(t, `
%table = constant int 42
declare void %anything()

int %main() {
entry:
	%a = load int* %table
	call void %anything()
	%b = load int* %table
	%s = add int %a, %b
	ret int %s
}
`)
	NewGlobalLoadElim().RunOnModule(m)
	mustVerify(t, m)
	if countOps(m.Func("main"), core.OpLoad) != 1 {
		t.Fatalf("constant global reload not eliminated:\n%s", m)
	}
}

// ---------------------------------------------------------------------------
// InlineInvoke (§2.4: unwinds become direct branches under inlining)

func TestInlineInvokeTurnsUnwindIntoBranch(t *testing.T) {
	m := parse(t, `
internal int %mayThrow(bool %t) {
entry:
	br bool %t, label %bad, label %good
bad:
	unwind
good:
	ret int 7
}

int %main(bool %t) {
entry:
	%v = invoke int %mayThrow(bool %t) to label %ok unwind to label %handler
ok:
	ret int %v
handler:
	ret int -1
}
`)
	main := m.Func("main")
	inv := main.Entry().Terminator().(*core.InvokeInst)
	if !InlineInvoke(inv) {
		t.Fatal("InlineInvoke refused an eligible site")
	}
	mustVerify(t, m)
	// The unwind is gone from the inlined body: it became a branch.
	if countOps(main, core.OpUnwind) != 0 {
		t.Fatalf("unwind not converted to a branch:\n%s", m)
	}
	if countOps(main, core.OpInvoke) != 0 {
		t.Fatalf("invoke remains:\n%s", m)
	}
}

func TestInlineInvokeSemantics(t *testing.T) {
	src := `
internal int %mayThrow(bool %t) {
entry:
	br bool %t, label %bad, label %good
bad:
	unwind
good:
	ret int 7
}

int %main(bool %t) {
entry:
	%v = invoke int %mayThrow(bool %t) to label %ok unwind to label %handler
ok:
	ret int %v
handler:
	ret int -1
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	InlineInvoke(m2.Func("main").Entry().Terminator().(*core.InvokeInst))
	mustVerify(t, m2)
	for _, arg := range []uint64{0, 1} {
		mc1, _ := interp.NewMachine(m1, nil)
		mc2, _ := interp.NewMachine(m2, nil)
		v1, e1 := mc1.RunFunction(m1.Func("main"), arg)
		v2, e2 := mc2.RunFunction(m2.Func("main"), arg)
		if e1 != nil || e2 != nil || v1 != v2 {
			t.Fatalf("arg %d: %d/%v vs %d/%v", arg, v1, e1, v2, e2)
		}
	}
}

func TestInlineInvokeRoutesInnerCalls(t *testing.T) {
	// The inlinee calls another function that unwinds: after inlining at
	// an invoke site, the inner call must become an invoke targeting the
	// handler, preserving catch semantics.
	src := `
internal void %deep() {
entry:
	unwind
}

internal int %wrapper() {
entry:
	call void %deep()
	ret int 1
}

int %main() {
entry:
	%v = invoke int %wrapper() to label %ok unwind to label %handler
ok:
	ret int %v
handler:
	ret int 99
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	if !InlineInvoke(m2.Func("main").Entry().Terminator().(*core.InvokeInst)) {
		t.Fatal("refused")
	}
	mustVerify(t, m2)
	mc1, _ := interp.NewMachine(m1, nil)
	mc2, _ := interp.NewMachine(m2, nil)
	v1, _ := mc1.RunMain()
	v2, _ := mc2.RunMain()
	if v1 != v2 || v1 != 99 {
		t.Fatalf("catch semantics broken: %d vs %d", v1, v2)
	}
}

func TestInlinePassHandlesInvokeSites(t *testing.T) {
	m := parse(t, `
internal int %small(int %x) {
entry:
	%r = add int %x, 1
	ret int %r
}

int %main() {
entry:
	%v = invoke int %small(int 41) to label %ok unwind to label %handler
ok:
	ret int %v
handler:
	ret int -1
}
`)
	inl := NewInline(DefaultInlineThreshold)
	inl.RunOnModule(m)
	mustVerify(t, m)
	if inl.NumInlined == 0 {
		t.Fatalf("inline pass skipped the invoke site:\n%s", m)
	}
	// After cleanup the answer folds to 42.
	pm := NewPassManager()
	pm.AddStandardPipeline()
	pm.Run(m)
	mc, _ := interp.NewMachine(m, nil)
	if v, err := mc.RunMain(); err != nil || v != 42 {
		t.Fatalf("result %d, %v:\n%s", v, err, m)
	}
}

// ---------------------------------------------------------------------------
// LICM

func TestLICMHoistsInvariantArithmetic(t *testing.T) {
	m := parse(t, `
int %f(int %a, int %b, int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%acc = phi int [ 0, %entry ], [ %acc2, %loop ]
	%inv = mul int %a, %b
	%acc2 = add int %acc, %inv
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %acc2
}
`)
	f := m.Func("f")
	n := NewLICM().RunOnFunction(f)
	mustVerify(t, m)
	if n != 1 {
		t.Fatalf("hoisted %d, want 1:\n%s", n, m)
	}
	// The mul now lives in the preheader (entry).
	found := false
	for _, inst := range f.Entry().Instrs {
		if inst.Opcode() == core.OpMul {
			found = true
		}
	}
	if !found {
		t.Fatalf("invariant mul not in preheader:\n%s", m)
	}
}

func TestLICMDoesNotSpeculateDivision(t *testing.T) {
	m := parse(t, `
int %f(int %a, int %b, int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %latch ]
	%c0 = setne int %b, 0
	br bool %c0, label %divblk, label %latch
divblk:
	%q = div int %a, %b
	br label %latch
latch:
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %i2
}
`)
	f := m.Func("f")
	NewLICM().RunOnFunction(f)
	mustVerify(t, m)
	// The div is guarded by b != 0 inside the loop; hoisting it to the
	// preheader would trap when b == 0 and the loop body guards it.
	for _, inst := range f.Entry().Instrs {
		if inst.Opcode() == core.OpDiv {
			t.Fatalf("division speculated out of its guard:\n%s", m)
		}
	}
	// Semantics: b == 0 must not trap.
	mc, _ := interp.NewMachine(m, nil)
	if _, err := mc.RunFunction(f, 10, 0, 3); err != nil {
		t.Fatalf("hoisting introduced a trap: %v", err)
	}
}

func TestLICMChainsAndNestedLoops(t *testing.T) {
	m := parse(t, `
int %f(int %a, int %n) {
entry:
	br label %outer
outer:
	%i = phi int [ 0, %entry ], [ %i2, %outer.latch ]
	br label %inner
inner:
	%j = phi int [ 0, %outer ], [ %j2, %inner ]
	%t1 = mul int %a, 3
	%t2 = add int %t1, 7
	%j2 = add int %j, %t2
	%jc = setlt int %j2, %n
	br bool %jc, label %inner, label %outer.latch
outer.latch:
	%i2 = add int %i, 1
	%ic = setlt int %i2, %n
	br bool %ic, label %outer, label %exit
exit:
	ret int %i2
}
`)
	f := m.Func("f")
	n := NewLICM().RunOnFunction(f)
	mustVerify(t, m)
	if n < 2 {
		t.Fatalf("chained invariants not both hoisted (%d):\n%s", n, m)
	}
	// Both land all the way in entry (out of both loops).
	muls, adds := 0, 0
	for _, inst := range f.Entry().Instrs {
		switch inst.Opcode() {
		case core.OpMul:
			muls++
		case core.OpAdd:
			adds++
		}
	}
	if muls != 1 || adds != 1 {
		t.Fatalf("invariants stopped short of the outermost preheader:\n%s", m)
	}
}

func TestLICMSemanticsPreserved(t *testing.T) {
	src := `
int %f(int %a, int %b, int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%acc = phi int [ 0, %entry ], [ %acc2, %loop ]
	%inv = mul int %a, %b
	%vv = add int %inv, %i
	%acc2 = add int %acc, %vv
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %acc2
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	NewLICM().RunOnFunction(m2.Func("f"))
	mustVerify(t, m2)
	for _, args := range [][]uint64{{3, 4, 10}, {0, 0, 1}, {7, 9, 100}} {
		mc1, _ := interp.NewMachine(m1, nil)
		mc2, _ := interp.NewMachine(m2, nil)
		v1, _ := mc1.RunFunction(m1.Func("f"), args...)
		v2, _ := mc2.RunFunction(m2.Func("f"), args...)
		if v1 != v2 {
			t.Fatalf("LICM changed result for %v: %d vs %d", args, v1, v2)
		}
		if args[2] > 1 && mc2.Steps >= mc1.Steps {
			t.Errorf("LICM did not reduce work for %v: %d vs %d", args, mc2.Steps, mc1.Steps)
		}
	}
}

// ---------------------------------------------------------------------------
// FieldReorder (§3.3 / §4.1.1)

func TestFieldReorderShrinksPaddedStruct(t *testing.T) {
	// { sbyte, double, sbyte } is 24 bytes; reordered to
	// { double, sbyte, sbyte } it is 16.
	src := `
%padded = type { sbyte, double, sbyte }

int %main() {
	;
entry:
	%p = malloc %padded
	%a = getelementptr %padded* %p, long 0, ubyte 0
	store sbyte 1, sbyte* %a
	%b = getelementptr %padded* %p, long 0, ubyte 1
	store double 2.5, double* %b
	%c = getelementptr %padded* %p, long 0, ubyte 2
	store sbyte 3, sbyte* %c
	%v1 = load sbyte* %a
	%v2 = load double* %b
	%v3 = load sbyte* %c
	%i1 = cast sbyte %v1 to int
	%i2 = cast double %v2 to int
	%i3 = cast sbyte %v3 to int
	%s1 = add int %i1, %i2
	%s2 = add int %s1, %i3
	free %padded* %p
	ret int %s2
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	fr := NewFieldReorder()
	fr.RunOnModule(m2)
	mustVerify(t, m2)
	if fr.Reordered != 1 {
		t.Fatalf("reordered %d types, want 1:\n%s", fr.Reordered, m2)
	}
	pt, _ := m2.NamedType("padded")
	if got := core.SizeOf(pt); got != 16 {
		t.Fatalf("reordered size = %d, want 16", got)
	}
	if fr.BytesSaved != 8 {
		t.Fatalf("BytesSaved = %d, want 8", fr.BytesSaved)
	}
	// Semantics identical.
	mc1, _ := interp.NewMachine(m1, nil)
	mc2, _ := interp.NewMachine(m2, nil)
	v1, e1 := mc1.RunMain()
	v2, e2 := mc2.RunMain()
	if e1 != nil || e2 != nil || v1 != v2 {
		t.Fatalf("reordering changed behavior: %d/%v vs %d/%v", v1, e1, v2, e2)
	}
}

func TestFieldReorderSkipsPunnedStruct(t *testing.T) {
	// The struct is viewed through an incompatible cast: DSA flags it and
	// the layout must not change.
	m := parse(t, `
%padded = type { sbyte, double, sbyte }
%other = type { long, long }

int %main() {
entry:
	%p = malloc %padded
	%alias = cast %padded* %p to %other*
	%f = getelementptr %other* %alias, long 0, ubyte 0
	store long 1, long* %f
	ret int 0
}
`)
	fr := NewFieldReorder()
	fr.RunOnModule(m)
	mustVerify(t, m)
	if fr.Reordered != 0 {
		t.Fatalf("punned struct reordered (%d)", fr.Reordered)
	}
	pt, _ := m.NamedType("padded")
	if core.SizeOf(pt) != 24 {
		t.Fatal("layout changed despite punning")
	}
}

func TestFieldReorderRewritesConstants(t *testing.T) {
	m := parse(t, `
%padded = type { sbyte, double, sbyte }
%g = global %padded { sbyte 1, double 2.5, sbyte 3 }

int %main() {
entry:
	%b = getelementptr %padded* %g, long 0, ubyte 1
	%v = load double* %b
	%i = cast double %v to int
	ret int %i
}
`)
	fr := NewFieldReorder()
	fr.RunOnModule(m)
	mustVerify(t, m)
	if fr.Reordered != 1 {
		t.Fatalf("not reordered:\n%s", m)
	}
	mc, _ := interp.NewMachine(m, nil)
	v, err := mc.RunMain()
	if err != nil || v != 2 {
		t.Fatalf("global initializer not permuted: %d, %v\n%s", v, err, m)
	}
}

func TestFieldReorderNestedAndArrays(t *testing.T) {
	src := `
%inner = type { sbyte, long, sbyte }
%outer = type { int, [2 x %inner] }

int %main() {
entry:
	%p = malloc %outer
	%q = getelementptr %outer* %p, long 0, ubyte 1, long 1, ubyte 1
	store long 77, long* %q
	%v = load long* %q
	%i = cast long %v to int
	free %outer* %p
	ret int %i
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	fr := NewFieldReorder()
	fr.RunOnModule(m2)
	mustVerify(t, m2)
	if fr.Reordered == 0 {
		t.Fatalf("nested struct not reordered:\n%s", m2)
	}
	mc1, _ := interp.NewMachine(m1, nil)
	mc2, _ := interp.NewMachine(m2, nil)
	v1, _ := mc1.RunMain()
	v2, _ := mc2.RunMain()
	if v1 != v2 || v1 != 77 {
		t.Fatalf("nested reorder broke access: %d vs %d", v1, v2)
	}
}
