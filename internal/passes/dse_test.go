package passes

import (
	"testing"

	"repro/internal/core"
)

func TestDSEOverwrittenStore(t *testing.T) {
	m := parse(t, `
%g = global int 0

int %f() {
entry:
	store int 1, int* %g
	store int 2, int* %g
	%v = load int* %g
	ret int %v
}
`)
	f := m.Func("f")
	if n := NewDSE().RunOnFunction(f); n != 1 {
		t.Fatalf("overwritten store not removed (%d)", n)
	}
	if got := countOps(f, core.OpStore); got != 1 {
		t.Fatalf("store count = %d, want 1", got)
	}
	mustVerify(t, m)
}

func TestDSEKeptWhenLoadMayRead(t *testing.T) {
	m := parse(t, `
%g = global int 0

int %f() {
entry:
	store int 1, int* %g
	%v = load int* %g
	store int 2, int* %g
	%w = load int* %g
	%s = add int %v, %w
	ret int %s
}
`)
	if n := NewDSE().RunOnFunction(m.Func("f")); n != 0 {
		t.Fatalf("store with intervening reader removed (%d)", n)
	}
}

func TestDSECallSummaryDisambiguates(t *testing.T) {
	// readsH only reads %h, so the pending store to %g survives the call
	// and dies at the overwrite; readsG reads %g and must block removal.
	src := `
%g = global int 0
%h = global int 0

internal int %readsH() {
entry:
	%v = load int* %h
	ret int %v
}

internal int %readsG() {
entry:
	%v = load int* %g
	ret int %v
}

int %acrossH() {
entry:
	store int 1, int* %g
	%x = call int %readsH()
	store int 2, int* %g
	%v = load int* %g
	%s = add int %x, %v
	ret int %s
}

int %acrossG() {
entry:
	store int 1, int* %g
	%x = call int %readsG()
	store int 2, int* %g
	%v = load int* %g
	%s = add int %x, %v
	ret int %s
}
`
	m := parse(t, src)
	if n := NewDSE().RunOnFunction(m.Func("acrossH")); n != 1 {
		t.Errorf("store across non-reading call not removed (%d)", n)
	}
	if n := NewDSE().RunOnFunction(m.Func("acrossG")); n != 0 {
		t.Errorf("store across reading call wrongly removed (%d)", n)
	}
	mustVerify(t, m)
}

func TestDSEFrameLocalDeadAtReturn(t *testing.T) {
	m := parse(t, `
internal int %f(int %x) {
entry:
	%a = alloca int
	%y = add int %x, 1
	store int %y, int* %a
	ret int %y
}
`)
	f := m.Func("f")
	if n := NewDSE().RunOnFunction(f); n != 1 {
		t.Fatalf("store to dead frame slot not removed (%d)", n)
	}
	if got := countOps(f, core.OpStore); got != 0 {
		t.Fatalf("store count = %d, want 0", got)
	}
	mustVerify(t, m)
}

func TestDSEEscapedAllocaKeptAtReturn(t *testing.T) {
	m := parse(t, `
declare void %keep(int*)

internal void %f() {
entry:
	%a = alloca int
	call void %keep(int* %a)
	store int 7, int* %a
	ret void
}
`)
	if n := NewDSE().RunOnFunction(m.Func("f")); n != 0 {
		t.Fatalf("store to escaped alloca removed at return (%d)", n)
	}
}

func TestDSECallerFrameKeptAtReturn(t *testing.T) {
	// The store targets the *caller's* alloca through a parameter: live
	// after f returns.
	m := parse(t, `
internal void %f(int* %p) {
entry:
	store int 3, int* %p
	ret void
}

int %caller() {
entry:
	%a = alloca int
	call void %f(int* %a)
	%v = load int* %a
	ret int %v
}
`)
	if n := NewDSE().RunOnFunction(m.Func("f")); n != 0 {
		t.Fatalf("store through parameter removed (%d)", n)
	}
}

func TestLICMHoistsLoadWithNoAliasingStore(t *testing.T) {
	// %n is loop-invariant and the loop's only store targets a distinct
	// object, so the load moves to the preheader.
	m := parse(t, `
%n = global int 100
%acc = global int 0

internal void %f() {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %inc, %loop ]
	%lim = load int* %n
	%cur = load int* %acc
	%next = add int %cur, %i
	store int %next, int* %acc
	%inc = add int %i, 1
	%done = setge int %inc, %lim
	br bool %done, label %exit, label %loop
exit:
	ret void
}
`)
	f := m.Func("f")
	if n := NewLICM().RunOnFunction(f); n == 0 {
		t.Fatal("loop-invariant load of %n not hoisted")
	}
	// The load of %acc is clobbered by the loop's store and must stay.
	loop := f.Blocks[1]
	stays := false
	for _, inst := range loop.Instrs {
		if ld, ok := inst.(*core.LoadInst); ok && ld.Ptr() == core.Value(m.Global("acc")) {
			stays = true
		}
	}
	if !stays {
		t.Fatal("load of clobbered %acc wrongly hoisted")
	}
	mustVerify(t, m)

	// Ablation arm: with alias information off, nothing hoists.
	m2 := parse(t, m.String())
	l := NewLICM()
	l.NoAlias = true
	if n := l.RunOnFunction(m2.Func("f")); n != 0 {
		t.Fatalf("NoAlias arm still hoisted %d", n)
	}
}

func TestCSEForwardsLoadAcrossCall(t *testing.T) {
	// writesH cannot touch %g, so the second load of %g forwards; the
	// store-to-load pair forwards too.
	m := parse(t, `
%g = global int 0
%h = global int 0

internal void %writesH() {
entry:
	store int 5, int* %h
	ret void
}

int %f() {
entry:
	%v1 = load int* %g
	call void %writesH()
	%v2 = load int* %g
	%s = add int %v1, %v2
	ret int %s
}
`)
	f := m.Func("f")
	if n := NewCSE().RunOnFunction(f); n != 1 {
		t.Fatalf("redundant load across harmless call not forwarded (%d)", n)
	}
	if got := countOps(f, core.OpLoad); got != 1 {
		t.Fatalf("load count = %d, want 1", got)
	}
	mustVerify(t, m)
}

func TestCSEStoreToLoadForwarding(t *testing.T) {
	m := parse(t, `
int %f(int* %p, int %x) {
entry:
	store int %x, int* %p
	%v = load int* %p
	ret int %v
}
`)
	f := m.Func("f")
	if n := NewCSE().RunOnFunction(f); n != 1 {
		t.Fatalf("stored value not forwarded to load (%d)", n)
	}
	if got := countOps(f, core.OpLoad); got != 0 {
		t.Fatalf("load count = %d, want 0", got)
	}
	mustVerify(t, m)
}

func TestCSELoadNotForwardedAcrossMayAliasStore(t *testing.T) {
	m := parse(t, `
int %f(int* %p, int* %q) {
entry:
	%v1 = load int* %p
	store int 9, int* %q
	%v2 = load int* %p
	%s = add int %v1, %v2
	ret int %s
}
`)
	if n := NewCSE().RunOnFunction(m.Func("f")); n != 0 {
		t.Fatalf("load forwarded across may-alias store (%d)", n)
	}
}
