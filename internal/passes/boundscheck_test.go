package passes

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

const bcProg = `
%table = global [8 x int] zeroinitializer

int %get(long %i) {
entry:
	%p = getelementptr [8 x int]* %table, long 0, long %i
	%v = load int* %p
	ret int %v
}

int %getConst() {
entry:
	%p = getelementptr [8 x int]* %table, long 0, long 3
	%v = load int* %p
	ret int %v
}

int %main(long %i) {
entry:
	%a = call int %get(long %i)
	%b = call int %getConst()
	%s = add int %a, %b
	ret int %s
}
`

func TestBoundsCheckInsertAndElide(t *testing.T) {
	m := parse(t, bcProg)
	bc := NewBoundsCheck()
	bc.RunOnModule(m)
	mustVerify(t, m)
	if bc.Inserted != 1 {
		t.Fatalf("inserted %d checks, want 1 (variable index only):\n%s", bc.Inserted, m)
	}
	if bc.Elided != 1 {
		t.Fatalf("elided %d checks, want 1 (constant in-range index)", bc.Elided)
	}

	mc, _ := interp.NewMachine(m, nil)
	// In range: behaves normally.
	if v, err := mc.RunFunction(m.Func("main"), 5); err != nil || int32(v) != 0 {
		t.Fatalf("in-range run: %d, %v", v, err)
	}
	// Out of range: traps with a bounds error.
	_, err := mc.RunFunction(m.Func("main"), 12)
	var be *interp.BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("out-of-range access not trapped: %v", err)
	}
	if be.Index != 12 || be.Limit != 8 {
		t.Fatalf("trap details wrong: %+v", be)
	}
	// Negative index (wraps to huge unsigned): also trapped.
	if _, err := mc.RunFunction(m.Func("main"), ^uint64(0)); !errors.As(err, &be) {
		t.Fatalf("negative index not trapped: %v", err)
	}
}

func TestBoundsCheckPreservesSemantics(t *testing.T) {
	src := `
%data = global [16 x int] zeroinitializer

int %main(long %n) {
entry:
	br label %loop
loop:
	%i = phi long [ 0, %entry ], [ %i2, %body ]
	%acc = phi int [ 0, %entry ], [ %acc2, %body ]
	%c = setlt long %i, %n
	br bool %c, label %body, label %done
body:
	%p = getelementptr [16 x int]* %data, long 0, long %i
	%iv = cast long %i to int
	store int %iv, int* %p
	%v = load int* %p
	%acc2 = add int %acc, %v
	%i2 = add long %i, 1
	br label %loop
done:
	ret int %acc
}
`
	m1 := parse(t, src)
	m2 := parse(t, src)
	NewBoundsCheck().RunOnModule(m2)
	mustVerify(t, m2)

	mc1, _ := interp.NewMachine(m1, nil)
	mc2, _ := interp.NewMachine(m2, nil)
	v1, err1 := mc1.RunFunction(m1.Func("main"), 16)
	v2, err2 := mc2.RunFunction(m2.Func("main"), 16)
	if err1 != nil || err2 != nil || v1 != v2 {
		t.Fatalf("checked program diverges: %d/%v vs %d/%v", v1, err1, v2, err2)
	}
}

func TestEliminateDominatedChecks(t *testing.T) {
	// Two accesses with the same index: after instrumentation the second
	// guard is dominated by the first and must be removed.
	src := `
%data = global [8 x int] zeroinitializer

int %main(long %i) {
entry:
	%p = getelementptr [8 x int]* %data, long 0, long %i
	store int 1, int* %p
	%q = getelementptr [8 x int]* %data, long 0, long %i
	%v = load int* %q
	ret int %v
}
`
	m := parse(t, src)
	bc := NewBoundsCheck()
	bc.RunOnModule(m)
	mustVerify(t, m)
	if bc.Inserted != 2 {
		t.Fatalf("inserted %d, want 2", bc.Inserted)
	}
	removed := EliminateDominatedChecks(m)
	mustVerify(t, m)
	if removed != 1 {
		t.Fatalf("eliminated %d dominated checks, want 1:\n%s", removed, m)
	}
	// Still traps out-of-range and passes in-range.
	mc, _ := interp.NewMachine(m, nil)
	if v, err := mc.RunFunction(m.Func("main"), 3); err != nil || int32(v) != 1 {
		t.Fatalf("in-range: %d, %v", v, err)
	}
	var be *interp.BoundsError
	if _, err := mc.RunFunction(m.Func("main"), 9); !errors.As(err, &be) {
		t.Fatalf("out-of-range survived check elimination: %v", err)
	}
}

func TestBoundsCheckWorksUnderOptimization(t *testing.T) {
	// Checks on constant-foldable indices disappear entirely under the
	// standard pipeline; variable ones survive it.
	m := parse(t, bcProg)
	NewBoundsCheck().RunOnModule(m)
	pm := NewPassManager()
	pm.VerifyEach = true
	pm.AddStandardPipeline()
	if _, err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	mc, _ := interp.NewMachine(m, nil)
	var be *interp.BoundsError
	if _, err := mc.RunFunction(m.Func("main"), 100); !errors.As(err, &be) {
		t.Fatalf("optimization removed a required check: %v", err)
	}
}

func TestBoundsCheckPhiFixup(t *testing.T) {
	// The instrumented block feeds a phi; splitting must retarget it.
	src := `
%data = global [4 x int] zeroinitializer

int %main(long %i, bool %c) {
entry:
	br bool %c, label %access, label %skip
access:
	%p = getelementptr [4 x int]* %data, long 0, long %i
	%v = load int* %p
	br label %join
skip:
	br label %join
join:
	%r = phi int [ %v, %access ], [ -1, %skip ]
	ret int %r
}
`
	m := parse(t, src)
	NewBoundsCheck().RunOnModule(m)
	if err := core.Verify(m); err != nil {
		t.Fatalf("phi not retargeted after split: %v\n%s", err, m)
	}
	mc, _ := interp.NewMachine(m, nil)
	if v, err := mc.RunFunction(m.Func("main"), 2, 1); err != nil || int32(v) != 0 {
		t.Fatalf("in-range: %d %v", v, err)
	}
	if v, err := mc.RunFunction(m.Func("main"), 2, 0); err != nil || int32(v) != -1 {
		t.Fatalf("skip path: %d %v", v, err)
	}
}
