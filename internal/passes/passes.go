// Package passes implements the optimizer: the scalar transformations that
// clean up front-end output (mem2reg, sroa, instcombine, sccp, adce, cse,
// simplifycfg) and the link-time interprocedural optimizations the paper
// evaluates in §4 (inlining, dead global elimination, dead argument
// elimination, interprocedural constant propagation, dead type
// elimination, and exception-handler pruning), all driven by a PassManager
// that records per-pass statistics and timings.
package passes

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// FunctionPass transforms one function at a time.
type FunctionPass interface {
	Name() string
	// RunOnFunction returns the number of changes made (0 = no change).
	RunOnFunction(f *core.Function) int
}

// ModulePass transforms a whole module.
type ModulePass interface {
	Name() string
	// RunOnModule returns the number of changes made.
	RunOnModule(m *core.Module) int
}

// PassResult records one pass execution.
type PassResult struct {
	Pass     string
	Changed  int
	Duration time.Duration
	// Failed marks a pass that panicked, timed out, or corrupted the
	// module (VerifyEach); Err carries the cause.
	Failed bool
	Err    error
	// RolledBack reports that the failed pass's changes were discarded and
	// the module is in its pre-pass state.
	RolledBack bool
}

// Policy selects how the pass manager reacts when a pass fails — by
// panicking, exceeding its time budget, or corrupting the module.
type Policy int

const (
	// FailFast aborts the pipeline on the first failure. No snapshot is
	// taken, so a pass that panicked or corrupted the module leaves it in
	// an undefined state; this is the cheapest mode and the default.
	FailFast Policy = iota
	// SkipAndContinue rolls the failed pass's changes back to the pre-pass
	// snapshot and keeps running the remaining passes.
	SkipAndContinue
	// Rollback rolls the failed pass's changes back to the pre-pass
	// snapshot and aborts the pipeline, leaving the module in the last
	// known-good state.
	Rollback
)

func (p Policy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case SkipAndContinue:
		return "skip"
	case Rollback:
		return "rollback"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// FailureReport is the error returned by Run when passes fail under a
// policy that aborts (or, for SkipAndContinue, when queried afterwards).
// It lists the per-pass failures in pipeline order.
type FailureReport struct {
	Failures []PassResult
}

func (r *FailureReport) Error() string {
	if len(r.Failures) == 1 {
		f := r.Failures[0]
		return fmt.Sprintf("pass %q failed: %v", f.Pass, f.Err)
	}
	names := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		names[i] = f.Pass
	}
	return fmt.Sprintf("%d passes failed (%s); first: %v",
		len(r.Failures), strings.Join(names, ", "), r.Failures[0].Err)
}

// PassManager sequences passes over a module.
type PassManager struct {
	passes []ModulePass
	// VerifyEach runs the verifier after every pass; a failure is treated
	// like a pass failure under Policy (the paper's point that type
	// mismatches catch optimizer bugs, §2.2).
	VerifyEach bool
	// Policy selects failure handling. Under SkipAndContinue and Rollback
	// each pass runs against a scratch clone of the module that is
	// committed only on success, so a panicking, hanging, or corrupting
	// pass can never poison the caller's module.
	Policy Policy
	// Timeout is the per-pass wall-clock budget (0 = none). A pass that
	// exceeds it is recorded as failed; its goroutine is abandoned and
	// only ever saw a scratch clone, never the caller's module.
	Timeout time.Duration
	Results []PassResult
}

// NewPassManager returns an empty pass manager.
func NewPassManager() *PassManager { return &PassManager{} }

// Failures returns the results of all failed passes so far.
func (pm *PassManager) Failures() []PassResult {
	var out []PassResult
	for _, r := range pm.Results {
		if r.Failed {
			out = append(out, r)
		}
	}
	return out
}

// Add appends module passes to the pipeline.
func (pm *PassManager) Add(ps ...ModulePass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// AddFunctionPass appends function passes, each adapted to run over every
// function in the module.
func (pm *PassManager) AddFunctionPass(ps ...FunctionPass) *PassManager {
	for _, p := range ps {
		pm.passes = append(pm.passes, &funcPassAdapter{p})
	}
	return pm
}

// Run executes the pipeline. It returns the total number of changes. Pass
// failures (panic, timeout, verifier rejection) never propagate as panics:
// under FailFast and Rollback the structured *FailureReport is returned as
// the error; under SkipAndContinue failed passes are recorded in Results
// (see Failures) and the pipeline continues.
func (pm *PassManager) Run(m *core.Module) (int, error) {
	total := 0
	for _, p := range pm.passes {
		res := pm.runOne(m, p)
		pm.Results = append(pm.Results, res)
		total += res.Changed
		if !res.Failed {
			continue
		}
		switch pm.Policy {
		case FailFast, Rollback:
			return total, &FailureReport{Failures: []PassResult{res}}
		case SkipAndContinue:
			// keep going with the module in its pre-pass state
		}
	}
	return total, nil
}

// runOne executes a single pass under the manager's policy. Under any mode
// that must preserve the module on failure (a snapshotting policy or a
// time budget, whose expiry abandons the worker goroutine mid-mutation),
// the pass runs against a scratch clone that is committed into m only on
// success; m itself is never exposed to a failing or runaway pass.
func (pm *PassManager) runOne(m *core.Module, p ModulePass) PassResult {
	res := PassResult{Pass: p.Name()}
	isolated := pm.Policy != FailFast || pm.Timeout > 0
	target := m
	if isolated {
		target = core.CloneModule(m)
	}

	type outcome struct {
		n   int
		err error
	}
	runPass := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out.err = fmt.Errorf("pass %q panicked: %v", p.Name(), r)
			}
		}()
		out.n = p.RunOnModule(target)
		return
	}

	start := time.Now()
	var out outcome
	if pm.Timeout > 0 {
		done := make(chan outcome, 1)
		go func() { done <- runPass() }()
		timer := time.NewTimer(pm.Timeout)
		defer timer.Stop()
		select {
		case out = <-done:
		case <-timer.C:
			out.err = fmt.Errorf("pass %q exceeded time budget %v", p.Name(), pm.Timeout)
		}
	} else {
		out = runPass()
	}
	res.Duration = time.Since(start)

	if out.err == nil && pm.VerifyEach {
		if verr := core.Verify(target); verr != nil {
			out.err = fmt.Errorf("module invalid after pass %q: %w", p.Name(), verr)
		}
	}
	if out.err != nil {
		res.Failed = true
		res.Err = out.err
		res.RolledBack = isolated
		return res
	}
	res.Changed = out.n
	if isolated {
		m.AdoptFrom(target)
	}
	return res
}

// funcPassAdapter lifts a FunctionPass to a ModulePass.
type funcPassAdapter struct{ p FunctionPass }

func (a *funcPassAdapter) Name() string { return a.p.Name() }

func (a *funcPassAdapter) RunOnModule(m *core.Module) int {
	n := 0
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			n += a.p.RunOnFunction(f)
		}
	}
	return n
}

// StandardFunctionPasses returns the canonical clean-up pipeline run after
// a front-end (§3.2): scalar expansion, stack promotion, then scalar
// simplification to a fixed point.
func StandardFunctionPasses() []FunctionPass {
	return []FunctionPass{
		NewSROA(),
		NewMem2Reg(),
		NewInstCombine(),
		NewSCCP(),
		NewCSE(),
		NewLICM(),
		NewADCE(),
		NewSimplifyCFG(),
	}
}

// AddStandardPipeline adds the standard per-function clean-up to pm.
func (pm *PassManager) AddStandardPipeline() *PassManager {
	return pm.AddFunctionPass(StandardFunctionPasses()...)
}

// AddLinkTimePipeline adds the link-time interprocedural optimizations in
// the order the linker runs them (§3.3), followed by a scalar clean-up.
func (pm *PassManager) AddLinkTimePipeline() *PassManager {
	pm.Add(
		NewIPConstProp(),
		NewInline(DefaultInlineThreshold),
		NewDeadArgElim(),
		NewDeadGlobalElim(),
		NewPruneEH(),
		NewGlobalLoadElim(),
		NewFieldReorder(),
		NewDeadTypeElim(),
	)
	return pm.AddStandardPipeline()
}
