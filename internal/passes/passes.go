// Package passes implements the optimizer: the scalar transformations that
// clean up front-end output (mem2reg, sroa, instcombine, sccp, adce, cse,
// simplifycfg) and the link-time interprocedural optimizations the paper
// evaluates in §4 (inlining, dead global elimination, dead argument
// elimination, interprocedural constant propagation, dead type
// elimination, and exception-handler pruning), all driven by a PassManager
// that records per-pass statistics and timings.
package passes

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/validate"
)

// FunctionPass transforms one function at a time.
type FunctionPass interface {
	Name() string
	// RunOnFunction returns the number of changes made (0 = no change).
	RunOnFunction(f *core.Function) int
}

// ModulePass transforms a whole module.
type ModulePass interface {
	Name() string
	// RunOnModule returns the number of changes made.
	RunOnModule(m *core.Module) int
}

// Preserver is implemented by passes that declare which cached analyses
// remain valid on IR they changed (LLVM's AnalysisUsage). The pass manager
// invalidates everything a pass does not claim; passes without the method
// are treated as preserving nothing.
type Preserver interface {
	Preserves() analysis.Preserved
}

// preservedBy returns p's preservation claim, conservatively PreserveNone.
func preservedBy(p interface{ Name() string }) analysis.Preserved {
	if pr, ok := p.(Preserver); ok {
		return pr.Preserves()
	}
	return analysis.PreserveNone
}

// remarkable is implemented by passes that emit optimization remarks
// (applied/missed/analysis, LLVM's -Rpass). The pass manager binds its
// collector before each run; a nil collector disables emission.
type remarkable interface {
	setRemarks(*obs.Remarks)
}

// analysisFunctionPass is the manager-aware variant of FunctionPass: the
// pass fetches its analyses (dominator tree, loops) from am instead of
// constructing them. All in-tree function passes implement it; RunOnFunction
// delegates to it with a nil manager, which computes analyses fresh.
type analysisFunctionPass interface {
	FunctionPass
	runOnFunctionWith(f *core.Function, am *analysis.Manager) int
}

// analysisModulePass is the manager-aware variant of ModulePass, implemented
// by the IPO passes that consume the call graph or mod/ref summaries.
type analysisModulePass interface {
	ModulePass
	runOnModuleWith(m *core.Module, am *analysis.Manager) int
}

// PassResult records one pass execution.
type PassResult struct {
	Pass    string
	Changed int
	// Duration is the pass's wall-clock time as the pipeline saw it.
	// CPUTime is the work actually performed: for function passes it is the
	// sum of per-function worker times, so under -j N it exceeds Duration
	// when workers overlap; for module passes the two coincide. Reporting
	// both keeps -time honest under parallel scheduling (a summed figure
	// alone reads as if -j 8 made each pass 8x slower).
	Duration time.Duration
	CPUTime  time.Duration
	// Failed marks a pass that panicked, timed out, or corrupted the
	// module (VerifyEach); Err carries the cause.
	Failed bool
	Err    error
	// RolledBack reports that the failed pass's changes were discarded and
	// the module is in its pre-pass state.
	RolledBack bool
	// Validation is the translation-validation verdict for this pass run
	// (nil when no Validator is installed or the pass made no changes). A
	// Miscompile verdict also sets Failed, with the pass's changes
	// discarded exactly like a verifier rejection.
	Validation *validate.Result
	// AnalysisHits/Misses/Invalidations are this pass's deltas against the
	// manager's analysis cache: requests served from cache, requests that
	// had to compute, and cached results dropped by the pass's invalidation.
	AnalysisHits          uint64
	AnalysisMisses        uint64
	AnalysisInvalidations uint64
}

// Policy selects how the pass manager reacts when a pass fails — by
// panicking, exceeding its time budget, or corrupting the module.
type Policy int

const (
	// FailFast aborts the pipeline on the first failure. No snapshot is
	// taken, so a pass that panicked or corrupted the module leaves it in
	// an undefined state; this is the cheapest mode and the default.
	FailFast Policy = iota
	// SkipAndContinue rolls the failed pass's changes back to the pre-pass
	// snapshot and keeps running the remaining passes.
	SkipAndContinue
	// Rollback rolls the failed pass's changes back to the pre-pass
	// snapshot and aborts the pipeline, leaving the module in the last
	// known-good state.
	Rollback
)

func (p Policy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case SkipAndContinue:
		return "skip"
	case Rollback:
		return "rollback"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// FailureReport is the error returned by Run when passes fail under a
// policy that aborts (or, for SkipAndContinue, when queried afterwards).
// It lists the per-pass failures in pipeline order.
type FailureReport struct {
	Failures []PassResult
}

func (r *FailureReport) Error() string {
	if len(r.Failures) == 1 {
		f := r.Failures[0]
		return fmt.Sprintf("pass %q failed: %v", f.Pass, f.Err)
	}
	names := make([]string, len(r.Failures))
	for i, f := range r.Failures {
		names[i] = f.Pass
	}
	return fmt.Sprintf("%d passes failed (%s); first: %v",
		len(r.Failures), strings.Join(names, ", "), r.Failures[0].Err)
}

// PassManager sequences passes over a module.
type PassManager struct {
	passes []ModulePass
	// VerifyEach runs the verifier after every pass; a failure is treated
	// like a pass failure under Policy (the paper's point that type
	// mismatches catch optimizer bugs, §2.2).
	VerifyEach bool
	// Policy selects failure handling. Under SkipAndContinue and Rollback
	// each pass runs against a scratch clone of the module that is
	// committed only on success, so a panicking, hanging, or corrupting
	// pass can never poison the caller's module.
	Policy Policy
	// Timeout is the per-pass wall-clock budget (0 = none). A pass that
	// exceeds it is recorded as failed; its goroutine is abandoned and
	// only ever saw a scratch clone, never the caller's module.
	Timeout time.Duration
	// Parallelism bounds how many functions a function pass transforms
	// concurrently (0 = GOMAXPROCS, 1 = serial). Functions are independent
	// under the IR's locking of shared use lists, and per-function results
	// are aggregated in module order, so the transformed module is
	// byte-identical to a serial run at any setting.
	Parallelism int
	// DisableAnalysisCache makes every pass compute its analyses fresh
	// (no manager is created), matching pre-cache behavior; for ablation.
	DisableAnalysisCache bool
	// Tracer records one span per pass execution and one per function on
	// the worker tracks, exported as Chrome trace-event JSON
	// (llvm-opt -trace-out). nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Remarks collects optimization remarks from passes that emit them
	// (mem2reg, licm, cse, inline). nil disables collection.
	Remarks *obs.Remarks
	// Metrics receives per-pass counters and latency histograms plus the
	// analysis-cache deltas, under the llvm_pass_* / llvm_analysis_* names
	// (DESIGN.md §10). nil disables recording.
	Metrics *obs.Registry
	// Validator, when set, checks every changed pass run for semantic
	// equivalence (DESIGN.md §11). It forces pass isolation: each pass runs
	// against a scratch clone, and the oracle compares the caller's module
	// (the before state) with the clone before it is committed, so
	// validation shares the snapshot isolation already pays for instead of
	// cloning again. A Miscompile verdict is handled like a pass failure
	// under Policy: the clone is discarded (the caller's module was never
	// touched), and the pipeline aborts or continues per the policy.
	Validator *validate.Oracle
	// Snapshots counts scratch clones taken across the run, surfaced by
	// llvm-opt -time: with -check and -validate both active it stays at one
	// clone per pass run, not two.
	Snapshots int
	// AM is the analysis cache shared by the pipeline's passes. Run creates
	// it lazily; callers may install their own to share across managers.
	AM      *analysis.Manager
	Results []PassResult
}

// NewPassManager returns an empty pass manager.
func NewPassManager() *PassManager { return &PassManager{} }

// Failures returns the results of all failed passes so far.
func (pm *PassManager) Failures() []PassResult {
	var out []PassResult
	for _, r := range pm.Results {
		if r.Failed {
			out = append(out, r)
		}
	}
	return out
}

// Add appends module passes to the pipeline.
func (pm *PassManager) Add(ps ...ModulePass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// AddFunctionPass appends function passes, each adapted to run over every
// function in the module.
func (pm *PassManager) AddFunctionPass(ps ...FunctionPass) *PassManager {
	for _, p := range ps {
		pm.passes = append(pm.passes, &funcPassAdapter{p: p})
	}
	return pm
}

// AdaptFunctionPass lifts a FunctionPass to a ModulePass. When the result is
// driven by a PassManager it inherits the manager's analysis cache and
// parallel function scheduling; called directly it runs serially without a
// cache, like the pass itself.
func AdaptFunctionPass(p FunctionPass) ModulePass { return &funcPassAdapter{p: p} }

// parallelism resolves the worker count for function passes.
func (pm *PassManager) parallelism() int {
	if pm.Parallelism > 0 {
		return pm.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// manager returns the pipeline's analysis cache, creating it on first use;
// nil when caching is disabled (passes then compute analyses fresh).
func (pm *PassManager) manager() *analysis.Manager {
	if pm.DisableAnalysisCache {
		return nil
	}
	if pm.AM == nil {
		pm.AM = analysis.NewManager()
	}
	return pm.AM
}

// AnalysisStats returns the pipeline-wide analysis cache counters.
func (pm *PassManager) AnalysisStats() analysis.Stats { return pm.AM.Stats() }

// Spec returns the pipeline's canonical identity: the pass names in run
// order, comma-joined. Two managers with equal Spec apply the same
// transformations in the same order (pass behavior is deterministic at
// any Parallelism), so the string is usable as a cache-key component for
// optimized artifacts.
func (pm *PassManager) Spec() string {
	names := make([]string, len(pm.passes))
	for i, p := range pm.passes {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// Run executes the pipeline. It returns the total number of changes. Pass
// failures (panic, timeout, verifier rejection) never propagate as panics:
// under FailFast and Rollback the structured *FailureReport is returned as
// the error; under SkipAndContinue failed passes are recorded in Results
// (see Failures) and the pipeline continues.
func (pm *PassManager) Run(m *core.Module) (int, error) {
	total := 0
	for _, p := range pm.passes {
		res := pm.runOne(m, p)
		pm.recordMetrics(res)
		pm.Results = append(pm.Results, res)
		total += res.Changed
		if !res.Failed {
			continue
		}
		switch pm.Policy {
		case FailFast, Rollback:
			return total, &FailureReport{Failures: []PassResult{res}}
		case SkipAndContinue:
			// keep going with the module in its pre-pass state
		}
	}
	return total, nil
}

// runOne executes a single pass under the manager's policy. Under any mode
// that must preserve the module on failure (a snapshotting policy or a
// time budget, whose expiry abandons the worker goroutine mid-mutation),
// the pass runs against a scratch clone that is committed into m only on
// success; m itself is never exposed to a failing or runaway pass.
func (pm *PassManager) runOne(m *core.Module, p ModulePass) PassResult {
	res := PassResult{Pass: p.Name()}
	isolated := pm.Policy != FailFast || pm.Timeout > 0 || pm.Validator != nil
	target := m
	if isolated {
		target = core.CloneModule(m)
		pm.Snapshots++
	}
	am := pm.manager()
	before := am.Stats()
	pm.Remarks.BeginPass()
	if rp, ok := p.(remarkable); ok {
		rp.setRemarks(pm.Remarks)
	}

	type outcome struct {
		n   int
		cpu time.Duration
		err error
	}
	runPass := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out.err = fmt.Errorf("pass %q panicked: %v", p.Name(), r)
			}
		}()
		out.n, out.cpu = pm.dispatch(p, target, am)
		return
	}

	span := pm.Tracer.Begin(p.Name(), "pass", 0)
	start := time.Now()
	var out outcome
	timedOut := false
	if pm.Timeout > 0 {
		done := make(chan outcome, 1)
		go func() { done <- runPass() }()
		timer := time.NewTimer(pm.Timeout)
		defer timer.Stop()
		select {
		case out = <-done:
		case <-timer.C:
			out.err = fmt.Errorf("pass %q exceeded time budget %v", p.Name(), pm.Timeout)
			timedOut = true
		}
	} else {
		out = runPass()
	}
	res.Duration = time.Since(start)
	res.CPUTime = out.cpu
	if pm.Tracer != nil {
		span.EndArgs(map[string]string{
			"changed": strconv.Itoa(out.n),
			"failed":  strconv.FormatBool(out.err != nil),
		})
	}

	if out.err == nil && pm.VerifyEach {
		if verr := core.Verify(target); verr != nil {
			out.err = fmt.Errorf("module invalid after pass %q: %w", p.Name(), verr)
		}
	}
	if out.err != nil {
		res.Failed = true
		res.Err = out.err
		res.RolledBack = isolated
		pm.settleAfterFailure(m, am, isolated, timedOut)
		res.addStatsDelta(am.Stats(), before)
		if timedOut {
			// The abandoned goroutine may keep publishing into this
			// manager; detach it so later passes start from a clean cache.
			pm.AM = nil
		}
		return res
	}
	if pm.Validator != nil && out.n > 0 {
		// The pre-pass module is still intact in m (validation forces
		// isolation), so the oracle reuses it as the before snapshot.
		v := pm.Validator.ValidatePass(p.Name(), m, target)
		res.Validation = v
		pm.Remarks.Analysisf("validate", v.Pos(), "%s: %s", p.Name(), v.Summary())
		if v.Verdict == validate.Miscompile {
			res.Failed = true
			res.Err = fmt.Errorf("pass %q miscompiled %%%s (counterexample %v): %s",
				p.Name(), v.Function, v.Counterexample, v.Detail)
			res.RolledBack = true
			pm.settleAfterFailure(m, am, true, false)
			res.addStatsDelta(am.Stats(), before)
			return res
		}
	}
	res.Changed = out.n
	if isolated {
		m.AdoptFrom(target)
	}
	if out.n > 0 {
		am.InvalidateModule(preservedBy(p))
	}
	// Drop entries for functions no longer in m: deleted by IPO, or
	// originals replaced when a scratch clone was committed (the adopted
	// clone functions keep the analyses computed during the pass).
	am.Prune(m)
	res.addStatsDelta(am.Stats(), before)
	return res
}

// settleAfterFailure reconciles the analysis cache with a failed pass. With
// isolation the real module was never touched, so its cached analyses stay
// valid and only entries for the discarded clone are dropped. Without
// isolation the pass may have died mid-mutation, so nothing can be trusted.
func (pm *PassManager) settleAfterFailure(m *core.Module, am *analysis.Manager, isolated, timedOut bool) {
	if isolated || timedOut {
		am.Prune(m)
		return
	}
	am.InvalidateModule(analysis.PreserveNone)
	am.Prune(m)
}

// dispatch runs p over target, routing manager-aware passes through am.
// Function-pass adapters additionally get the manager's parallelism and
// tracer. The second result is the pass's cpu-sum: per-function worker
// time for function passes, plain wall time for module passes.
func (pm *PassManager) dispatch(p ModulePass, target *core.Module, am *analysis.Manager) (int, time.Duration) {
	if ap, ok := p.(*funcPassAdapter); ok {
		return ap.runTimed(target, am, pm.parallelism(), pm.Tracer)
	}
	start := time.Now()
	var n int
	if ap, ok := p.(analysisModulePass); ok {
		n = ap.runOnModuleWith(target, am)
	} else {
		n = p.RunOnModule(target)
	}
	return n, time.Since(start)
}

// recordMetrics publishes one pass result into the metrics registry.
func (pm *PassManager) recordMetrics(r PassResult) {
	reg := pm.Metrics
	if reg == nil {
		return
	}
	reg.Counter("llvm_pass_runs_total", "pass", r.Pass).Inc()
	reg.Counter("llvm_pass_changes_total", "pass", r.Pass).Add(float64(r.Changed))
	if r.Failed {
		reg.Counter("llvm_pass_failures_total", "pass", r.Pass).Inc()
	}
	reg.Histogram("llvm_pass_wall_seconds", nil, "pass", r.Pass).Observe(r.Duration.Seconds())
	reg.Counter("llvm_pass_cpu_seconds_total", "pass", r.Pass).Add(r.CPUTime.Seconds())
	reg.Counter("llvm_analysis_cache_hits_total").Add(float64(r.AnalysisHits))
	reg.Counter("llvm_analysis_cache_misses_total").Add(float64(r.AnalysisMisses))
	reg.Counter("llvm_analysis_cache_invalidations_total").Add(float64(r.AnalysisInvalidations))
	if v := r.Validation; v != nil {
		reg.Counter("llvm_validate_runs_total", "pass", r.Pass).Inc()
		switch v.Verdict {
		case validate.Miscompile:
			reg.Counter("llvm_validate_confirmed_miscompiles_total", "pass", r.Pass).Inc()
		case validate.Inconclusive:
			reg.Counter("llvm_validate_inconclusive_total", "pass", r.Pass).Inc()
		}
	}
}

// addStatsDelta records the pass's cache activity as after-before.
func (r *PassResult) addStatsDelta(after, before analysis.Stats) {
	r.AnalysisHits = after.Hits - before.Hits
	r.AnalysisMisses = after.Misses - before.Misses
	r.AnalysisInvalidations = after.Invalidations - before.Invalidations
}

// funcPassAdapter lifts a FunctionPass to a ModulePass and is the pass
// manager's parallel scheduler: a worker pool transforms the module's
// non-declaration functions concurrently. Function-local SSA transforms are
// independent per function — the only cross-function state they touch is the
// use lists of shared values (functions, globals, constants), which the core
// guards with per-value locks — so any worker count produces the same module
// as a serial run. Change counts are aggregated, and changed functions'
// analyses invalidated, in module order after all workers finish, keeping
// stats and cache state deterministic too.
type funcPassAdapter struct{ p FunctionPass }

func (a *funcPassAdapter) Name() string { return a.p.Name() }

// Preserves extends the wrapped pass's claim with the per-function CFG
// analyses: the adapter invalidates changed functions itself, one by one,
// so the pass manager's module-level invalidation must not also drop the
// entries of functions the pass left alone.
func (a *funcPassAdapter) Preserves() analysis.Preserved {
	return preservedBy(a.p) | analysis.PreserveCFG
}

// setRemarks forwards the collector to the wrapped pass.
func (a *funcPassAdapter) setRemarks(r *obs.Remarks) {
	if rp, ok := a.p.(remarkable); ok {
		rp.setRemarks(r)
	}
}

// RunOnModule runs the pass serially without an analysis cache, preserving
// the adapter's behavior for direct callers outside a PassManager.
func (a *funcPassAdapter) RunOnModule(m *core.Module) int {
	n, _ := a.runTimed(m, nil, 1, nil)
	return n
}

func (a *funcPassAdapter) runTimed(m *core.Module, am *analysis.Manager, parallelism int, tr *obs.Tracer) (int, time.Duration) {
	var fns []*core.Function
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			fns = append(fns, f)
		}
	}
	counts := make([]int, len(fns))
	durs := make([]time.Duration, len(fns))
	if parallelism > len(fns) {
		parallelism = len(fns)
	}
	if parallelism <= 1 {
		for i, f := range fns {
			sp := tr.Begin(f.Name(), "function", 0)
			t0 := time.Now()
			counts[i] = a.runOn(f, am)
			durs[i] = time.Since(t0)
			sp.End()
		}
	} else {
		a.runParallel(fns, counts, durs, am, parallelism, tr)
	}
	n := 0
	var cpu time.Duration
	for i, f := range fns {
		cpu += durs[i]
		if counts[i] > 0 {
			am.InvalidateFunction(f, preservedBy(a.p))
			n += counts[i]
		}
	}
	return n, cpu
}

// runOn transforms one function, through the manager when the pass is
// manager-aware.
func (a *funcPassAdapter) runOn(f *core.Function, am *analysis.Manager) int {
	if ap, ok := a.p.(analysisFunctionPass); ok {
		return ap.runOnFunctionWith(f, am)
	}
	return a.p.RunOnFunction(f)
}

// runParallel fans fns out to a worker pool. Each worker recovers panics per
// function so one bad function cannot kill the process or starve the pool;
// after all functions finish, the first panic (in module order, for
// determinism) is re-raised and flows into the pass manager's existing
// recover/Policy machinery like a serial pass panic would.
func (a *funcPassAdapter) runParallel(fns []*core.Function, counts []int, durs []time.Duration, am *analysis.Manager, workers int, tr *obs.Tracer) {
	type funcPanic struct {
		fn  string
		val any
	}
	panics := make([]*funcPanic, len(fns))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				func() {
					sp := tr.Begin(fns[i].Name(), "function", tid)
					t0 := time.Now()
					defer func() {
						durs[i] = time.Since(t0)
						sp.End()
						if r := recover(); r != nil {
							panics[i] = &funcPanic{fn: fns[i].Name(), val: r}
						}
					}()
					counts[i] = a.runOn(fns[i], am)
				}()
			}
		}(w + 1)
	}
	wg.Wait()
	for _, pc := range panics {
		if pc != nil {
			panic(fmt.Sprintf("function %q: %v", pc.fn, pc.val))
		}
	}
}

// StandardFunctionPasses returns the canonical clean-up pipeline run after
// a front-end (§3.2): scalar expansion, stack promotion, then scalar
// simplification to a fixed point.
func StandardFunctionPasses() []FunctionPass {
	return []FunctionPass{
		NewSROA(),
		NewMem2Reg(),
		NewInstCombine(),
		NewSCCP(),
		NewCSE(),
		NewLICM(),
		NewDSE(),
		NewADCE(),
		NewSimplifyCFG(),
	}
}

// AddStandardPipeline adds the standard per-function clean-up to pm.
func (pm *PassManager) AddStandardPipeline() *PassManager {
	return pm.AddFunctionPass(StandardFunctionPasses()...)
}

// AddLinkTimePipeline adds the link-time interprocedural optimizations in
// the order the linker runs them (§3.3), followed by a scalar clean-up.
func (pm *PassManager) AddLinkTimePipeline() *PassManager {
	pm.Add(
		NewIPConstProp(),
		NewInline(DefaultInlineThreshold),
		NewDeadArgElim(),
		NewDeadGlobalElim(),
		NewPruneEH(),
		NewGlobalLoadElim(),
		NewFieldReorder(),
		NewDeadTypeElim(),
	)
	return pm.AddStandardPipeline()
}
