// Package passes implements the optimizer: the scalar transformations that
// clean up front-end output (mem2reg, sroa, instcombine, sccp, adce, cse,
// simplifycfg) and the link-time interprocedural optimizations the paper
// evaluates in §4 (inlining, dead global elimination, dead argument
// elimination, interprocedural constant propagation, dead type
// elimination, and exception-handler pruning), all driven by a PassManager
// that records per-pass statistics and timings.
package passes

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// FunctionPass transforms one function at a time.
type FunctionPass interface {
	Name() string
	// RunOnFunction returns the number of changes made (0 = no change).
	RunOnFunction(f *core.Function) int
}

// ModulePass transforms a whole module.
type ModulePass interface {
	Name() string
	// RunOnModule returns the number of changes made.
	RunOnModule(m *core.Module) int
}

// PassResult records one pass execution.
type PassResult struct {
	Pass     string
	Changed  int
	Duration time.Duration
}

// PassManager sequences passes over a module.
type PassManager struct {
	passes []ModulePass
	// VerifyEach runs the verifier after every pass; a failure aborts with
	// the offending pass named (the paper's point that type mismatches
	// catch optimizer bugs, §2.2).
	VerifyEach bool
	Results    []PassResult
}

// NewPassManager returns an empty pass manager.
func NewPassManager() *PassManager { return &PassManager{} }

// Add appends module passes to the pipeline.
func (pm *PassManager) Add(ps ...ModulePass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// AddFunctionPass appends function passes, each adapted to run over every
// function in the module.
func (pm *PassManager) AddFunctionPass(ps ...FunctionPass) *PassManager {
	for _, p := range ps {
		pm.passes = append(pm.passes, &funcPassAdapter{p})
	}
	return pm
}

// Run executes the pipeline. It returns the total number of changes, or an
// error if VerifyEach is set and a pass corrupts the module.
func (pm *PassManager) Run(m *core.Module) (int, error) {
	total := 0
	for _, p := range pm.passes {
		start := time.Now()
		n := p.RunOnModule(m)
		pm.Results = append(pm.Results, PassResult{Pass: p.Name(), Changed: n, Duration: time.Since(start)})
		total += n
		if pm.VerifyEach {
			if err := core.Verify(m); err != nil {
				return total, fmt.Errorf("module invalid after pass %q: %w", p.Name(), err)
			}
		}
	}
	return total, nil
}

// funcPassAdapter lifts a FunctionPass to a ModulePass.
type funcPassAdapter struct{ p FunctionPass }

func (a *funcPassAdapter) Name() string { return a.p.Name() }

func (a *funcPassAdapter) RunOnModule(m *core.Module) int {
	n := 0
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			n += a.p.RunOnFunction(f)
		}
	}
	return n
}

// StandardFunctionPasses returns the canonical clean-up pipeline run after
// a front-end (§3.2): scalar expansion, stack promotion, then scalar
// simplification to a fixed point.
func StandardFunctionPasses() []FunctionPass {
	return []FunctionPass{
		NewSROA(),
		NewMem2Reg(),
		NewInstCombine(),
		NewSCCP(),
		NewCSE(),
		NewLICM(),
		NewADCE(),
		NewSimplifyCFG(),
	}
}

// AddStandardPipeline adds the standard per-function clean-up to pm.
func (pm *PassManager) AddStandardPipeline() *PassManager {
	return pm.AddFunctionPass(StandardFunctionPasses()...)
}

// AddLinkTimePipeline adds the link-time interprocedural optimizations in
// the order the linker runs them (§3.3), followed by a scalar clean-up.
func (pm *PassManager) AddLinkTimePipeline() *PassManager {
	pm.Add(
		NewIPConstProp(),
		NewInline(DefaultInlineThreshold),
		NewDeadArgElim(),
		NewDeadGlobalElim(),
		NewPruneEH(),
		NewGlobalLoadElim(),
		NewFieldReorder(),
		NewDeadTypeElim(),
	)
	return pm.AddStandardPipeline()
}
