package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
)

// Mem2Reg is the stack promotion pass (§3.2): front-ends allocate local
// variables with alloca and access them with load/store; this pass rewrites
// allocas whose address does not escape into SSA virtual registers,
// inserting φ-functions at iterated dominance frontiers (Cytron et al.)
// and renaming along the dominator tree.
type Mem2Reg struct {
	rem *obs.Remarks
}

// NewMem2Reg returns the pass.
func NewMem2Reg() *Mem2Reg { return &Mem2Reg{} }

// Name returns the pass name.
func (*Mem2Reg) Name() string { return "mem2reg" }

// Preserves: phi insertion and alloca/load/store removal never touch block
// structure, edges, or call sites.
func (*Mem2Reg) Preserves() analysis.Preserved { return analysis.PreserveAll }

func (m *Mem2Reg) setRemarks(r *obs.Remarks) { m.rem = r }

// RunOnFunction promotes every promotable alloca; the returned count is the
// number of allocas promoted.
func (m *Mem2Reg) RunOnFunction(f *core.Function) int {
	return m.runOnFunctionWith(f, nil)
}

func (m *Mem2Reg) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	var promotable []*core.AllocaInst
	for _, inst := range f.Entry().Instrs {
		a, ok := inst.(*core.AllocaInst)
		if !ok {
			continue
		}
		if reason := promotionBlocker(a); reason == "" {
			promotable = append(promotable, a)
		} else if m.rem.Enabled() {
			m.rem.Missedf("mem2reg", diag.Pos{Fn: f.Name(), Block: f.Entry().Name()},
				"%%%s not promoted: %s", a.Name(), reason)
		}
	}
	if len(promotable) == 0 {
		return 0
	}
	dt := am.DomTree(f)
	df := am.DomFrontier(f)
	for _, a := range promotable {
		name := a.Name()
		phis := promote(f, a, dt, df)
		if m.rem.Enabled() {
			m.rem.Appliedf("mem2reg", diag.Pos{Fn: f.Name(), Block: f.Entry().Name()},
				"promoted %%%s to register (%d phis)", name, phis)
		}
	}
	return len(promotable)
}

// promotionBlocker reports why the alloca cannot live in a register ("" =
// promotable): it must be a single first-class element whose address is
// used only by loads and full-width stores (and never stored itself).
func promotionBlocker(a *core.AllocaInst) string {
	if a.NumElems() != nil {
		return "array allocation"
	}
	if !core.IsFirstClass(a.AllocType) {
		return "aggregate type " + a.AllocType.String()
	}
	for _, u := range a.Uses() {
		switch inst := u.User.(type) {
		case *core.LoadInst:
			// ok
		case *core.StoreInst:
			if inst.Val() == core.Value(a) {
				return "address is stored"
			}
		default:
			return "address escapes" // GEP, cast, call argument, ...
		}
	}
	return ""
}

// isPromotable reports whether the alloca can live in a register.
func isPromotable(a *core.AllocaInst) bool { return promotionBlocker(a) == "" }

// promote rewrites one alloca into SSA form, returning the number of
// φ-functions inserted.
func promote(f *core.Function, a *core.AllocaInst, dt *analysis.DomTree, df analysis.DomFrontier) int {
	t := a.AllocType

	// Blocks containing stores (definitions).
	defBlocks := map[*core.BasicBlock]bool{}
	for _, u := range a.Uses() {
		if st, ok := u.User.(*core.StoreInst); ok {
			defBlocks[st.Parent()] = true
		}
	}

	// Insert φ at the iterated dominance frontier of the def blocks.
	phiFor := map[*core.BasicBlock]*core.PhiInst{}
	work := make([]*core.BasicBlock, 0, len(defBlocks))
	for b := range defBlocks {
		work = append(work, b)
	}
	inWork := map[*core.BasicBlock]bool{}
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fr := range df[b] {
			if phiFor[fr] != nil {
				continue
			}
			phi := core.NewPhi(t)
			phi.SetName(a.Name() + ".phi")
			fr.InsertAt(0, phi)
			phiFor[fr] = phi
			if !inWork[fr] {
				inWork[fr] = true
				work = append(work, fr)
			}
		}
	}

	// Rename: walk the dominator tree carrying the current value.
	type frame struct {
		block *core.BasicBlock
		val   core.Value
	}
	undef := core.Value(core.NewUndef(t))
	var rename func(b *core.BasicBlock, cur core.Value)
	rename = func(b *core.BasicBlock, cur core.Value) {
		if phi := phiFor[b]; phi != nil {
			cur = phi
		}
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			switch i := inst.(type) {
			case *core.LoadInst:
				if i.Ptr() == core.Value(a) {
					core.ReplaceAllUses(i, cur)
					b.Erase(i)
				}
			case *core.StoreInst:
				if i.Ptr() == core.Value(a) {
					cur = i.Val()
					b.Erase(i)
				}
			}
		}
		// Fill φ operands in successors.
		for _, succ := range b.Succs() {
			if phi := phiFor[succ]; phi != nil {
				phi.AddIncoming(cur, b)
			}
		}
		for _, child := range dt.Children(b) {
			rename(child, cur)
		}
	}
	_ = frame{}
	rename(f.Entry(), undef)

	// Successor lists may repeat a block (e.g. a conditional branch with
	// both edges to one target); AddIncoming above then added duplicates.
	// Deduplicate per predecessor.
	for _, phi := range phiFor {
		seen := map[*core.BasicBlock]bool{}
		for n := phi.NumIncoming() - 1; n >= 0; n-- {
			_, blk := phi.Incoming(n)
			if seen[blk] {
				phi.RemoveIncoming(n)
			}
			seen[blk] = true
		}
	}

	// Loads/stores in unreachable blocks were not visited by the renamer;
	// drop them so the alloca has no uses left.
	for _, u := range append([]core.Use(nil), a.Uses()...) {
		switch inst := u.User.(type) {
		case *core.LoadInst:
			core.ReplaceAllUses(inst, core.NewUndef(t))
			inst.Parent().Erase(inst)
		case *core.StoreInst:
			inst.Parent().Erase(inst)
		}
	}
	f.Entry().Erase(a)
	return len(phiFor)
}
