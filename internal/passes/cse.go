package passes

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
)

// CSE performs dominator-scoped common subexpression elimination over pure
// instructions (binary operators, comparisons, casts, getelementptrs): an
// instruction computing the same expression as one that dominates it is
// replaced by the earlier result. This is the "redundancy elimination" the
// paper highlights getelementptr exposing for address arithmetic (§2.2).
// With points-to information it additionally forwards block-local redundant
// loads: a load whose address must-aliases an earlier load or store in the
// block reuses that value, unless an intervening store, free, or call may
// have clobbered the object.
type CSE struct {
	rem *obs.Remarks
	// NoAlias disables points-to-based load forwarding (ablation baseline
	// for llvm-bench -alias).
	NoAlias bool
}

// NewCSE returns the pass.
func NewCSE() *CSE { return &CSE{} }

// Name returns the pass name.
func (*CSE) Name() string { return "cse" }

// Preserves: erasing redundant pure instructions and loads leaves the CFG
// and call sites intact; removals only shrink the points-to relation.
func (*CSE) Preserves() analysis.Preserved { return analysis.PreserveAll | dsa.Key.Mask() }

func (c *CSE) setRemarks(r *obs.Remarks) { c.rem = r }

// RunOnFunction walks the dominator tree with a scoped expression table.
func (c *CSE) RunOnFunction(f *core.Function) int {
	return c.runOnFunctionWith(f, nil)
}

func (c *CSE) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	dt := am.DomTree(f)
	var pt *dsa.Result
	if !c.NoAlias {
		pt = dsa.Of(am, f.Parent())
	}
	table := map[string]core.Instruction{}
	changed := 0

	var walk func(b *core.BasicBlock)
	walk = func(b *core.BasicBlock) {
		var added []string
		// Block-local available memory values: address → value the cell
		// holds, pruned by alias queries at each potential clobber.
		var avail []memAvail
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			if pt != nil {
				if done, ate := c.memCSE(f, b, inst, pt, &avail); ate {
					changed += done
					continue
				}
			}
			key, ok := exprKey(inst)
			if !ok {
				continue
			}
			if prev, hit := table[key]; hit {
				if c.rem.Enabled() {
					c.rem.Appliedf("cse",
						diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
						"eliminated redundant computation, reusing dominating %%%s in block %%%s",
						prev.Name(), prev.Parent().Name())
				}
				core.ReplaceAllUses(inst, prev)
				b.Erase(inst)
				changed++
				continue
			}
			table[key] = inst
			added = append(added, key)
		}
		for _, child := range dt.Children(b) {
			walk(child)
		}
		for _, k := range added {
			delete(table, k)
		}
	}
	walk(f.Entry())
	return changed
}

// exprKey builds a structural key for pure instructions; ok is false for
// instructions with memory effects or control flow.
func exprKey(inst core.Instruction) (string, bool) {
	switch i := inst.(type) {
	case *core.BinaryInst:
		a, b := valueKey(i.LHS()), valueKey(i.RHS())
		op := i.Opcode()
		// Canonical operand order for commutative operators.
		if core.IsCommutative(op) && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("%d|%s|%s|%s", op, i.LHS().Type(), a, b), true
	case *core.CastInst:
		return fmt.Sprintf("cast|%s|%s", i.Type(), valueKey(i.Val())), true
	case *core.GetElementPtrInst:
		var sb strings.Builder
		sb.WriteString("gep|")
		sb.WriteString(valueKey(i.Base()))
		for _, ix := range i.Indices() {
			sb.WriteString("|")
			sb.WriteString(valueKey(ix))
		}
		return sb.String(), true
	}
	return "", false
}

// memAvail records that the memory at ptr currently holds val (within the
// current block).
type memAvail struct {
	ptr core.Value
	val core.Value
}

// memCSE handles one instruction's effect on the block-local available-load
// table. It returns (eliminated, handled): handled is true when the
// instruction was a memory operation this table models (the caller skips
// expression CSE for it).
func (c *CSE) memCSE(f *core.Function, b *core.BasicBlock, inst core.Instruction,
	pt *dsa.Result, avail *[]memAvail) (int, bool) {
	// keep retains only entries that provably survive a write through ptr.
	keepNoAlias := func(ptr core.Value) {
		kept := (*avail)[:0]
		for _, e := range *avail {
			if pt.Alias(e.ptr, ptr) == dsa.NoAlias {
				kept = append(kept, e)
			}
		}
		*avail = kept
	}
	switch i := inst.(type) {
	case *core.LoadInst:
		for _, e := range *avail {
			if pt.Alias(i.Ptr(), e.ptr) == dsa.MustAlias && core.TypesEqual(e.val.Type(), i.Type()) {
				if c.rem.Enabled() {
					c.rem.Appliedf("cse",
						diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
						"forwarded available value to redundant load (must-alias, no intervening clobber)")
				}
				core.ReplaceAllUses(inst, e.val)
				b.Erase(inst)
				return 1, true
			}
		}
		*avail = append(*avail, memAvail{ptr: i.Ptr(), val: i})
		return 0, true
	case *core.StoreInst:
		keepNoAlias(i.Ptr())
		*avail = append(*avail, memAvail{ptr: i.Ptr(), val: i.Val()})
		return 0, true
	case *core.FreeInst:
		keepNoAlias(i.Ptr())
		return 0, true
	case *core.CallInst:
		c.pruneForCall(i.Callee(), pt, avail)
		return 0, true
	case *core.InvokeInst:
		c.pruneForCall(i.Callee(), pt, avail)
		return 0, true
	}
	return 0, false
}

// pruneForCall drops available values the callee may overwrite, using the
// per-function effect summaries.
func (c *CSE) pruneForCall(callee core.Value, pt *dsa.Result, avail *[]memAvail) {
	kept := (*avail)[:0]
	for _, e := range *avail {
		if !pt.CallSiteMayMod(callee, pt.NodeFor(e.ptr)) {
			kept = append(kept, e)
		}
	}
	*avail = kept
}

// valueKey identifies a value: constants structurally, others by identity.
func valueKey(v core.Value) string {
	switch c := v.(type) {
	case *core.ConstantInt:
		return fmt.Sprintf("ci:%s:%d", c.Type(), c.Val)
	case *core.ConstantFloat:
		return fmt.Sprintf("cf:%s:%x", c.Type(), c.Val)
	case *core.ConstantBool:
		return fmt.Sprintf("cb:%v", c.Val)
	case *core.ConstantNull:
		return fmt.Sprintf("cn:%s", c.Type())
	}
	return fmt.Sprintf("v:%p", v)
}
