package passes

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
)

// CSE performs dominator-scoped common subexpression elimination over pure
// instructions (binary operators, comparisons, casts, getelementptrs): an
// instruction computing the same expression as one that dominates it is
// replaced by the earlier result. This is the "redundancy elimination" the
// paper highlights getelementptr exposing for address arithmetic (§2.2).
type CSE struct {
	rem *obs.Remarks
}

// NewCSE returns the pass.
func NewCSE() *CSE { return &CSE{} }

// Name returns the pass name.
func (*CSE) Name() string { return "cse" }

// Preserves: erasing redundant pure instructions leaves the CFG and call
// sites intact.
func (*CSE) Preserves() analysis.Preserved { return analysis.PreserveAll }

func (c *CSE) setRemarks(r *obs.Remarks) { c.rem = r }

// RunOnFunction walks the dominator tree with a scoped expression table.
func (c *CSE) RunOnFunction(f *core.Function) int {
	return c.runOnFunctionWith(f, nil)
}

func (c *CSE) runOnFunctionWith(f *core.Function, am *analysis.Manager) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	dt := am.DomTree(f)
	table := map[string]core.Instruction{}
	changed := 0

	var walk func(b *core.BasicBlock)
	walk = func(b *core.BasicBlock) {
		var added []string
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			key, ok := exprKey(inst)
			if !ok {
				continue
			}
			if prev, hit := table[key]; hit {
				if c.rem.Enabled() {
					c.rem.Appliedf("cse",
						diag.Pos{Fn: f.Name(), Block: b.Name(), Inst: core.InstDebugString(inst)},
						"eliminated redundant computation, reusing dominating %%%s in block %%%s",
						prev.Name(), prev.Parent().Name())
				}
				core.ReplaceAllUses(inst, prev)
				b.Erase(inst)
				changed++
				continue
			}
			table[key] = inst
			added = append(added, key)
		}
		for _, child := range dt.Children(b) {
			walk(child)
		}
		for _, k := range added {
			delete(table, k)
		}
	}
	walk(f.Entry())
	return changed
}

// exprKey builds a structural key for pure instructions; ok is false for
// instructions with memory effects or control flow.
func exprKey(inst core.Instruction) (string, bool) {
	switch i := inst.(type) {
	case *core.BinaryInst:
		a, b := valueKey(i.LHS()), valueKey(i.RHS())
		op := i.Opcode()
		// Canonical operand order for commutative operators.
		if core.IsCommutative(op) && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("%d|%s|%s|%s", op, i.LHS().Type(), a, b), true
	case *core.CastInst:
		return fmt.Sprintf("cast|%s|%s", i.Type(), valueKey(i.Val())), true
	case *core.GetElementPtrInst:
		var sb strings.Builder
		sb.WriteString("gep|")
		sb.WriteString(valueKey(i.Base()))
		for _, ix := range i.Indices() {
			sb.WriteString("|")
			sb.WriteString(valueKey(ix))
		}
		return sb.String(), true
	}
	return "", false
}

// valueKey identifies a value: constants structurally, others by identity.
func valueKey(v core.Value) string {
	switch c := v.(type) {
	case *core.ConstantInt:
		return fmt.Sprintf("ci:%s:%d", c.Type(), c.Val)
	case *core.ConstantFloat:
		return fmt.Sprintf("cf:%s:%x", c.Type(), c.Val)
	case *core.ConstantBool:
		return fmt.Sprintf("cb:%v", c.Val)
	case *core.ConstantNull:
		return fmt.Sprintf("cn:%s", c.Type())
	}
	return fmt.Sprintf("v:%p", v)
}
