package passes

import (
	"repro/internal/analysis"
	"sort"

	"repro/internal/core"
	"repro/internal/dsa"
)

// FieldReorder is the "simple structure field reordering" of §3.3, and the
// transformation §4.1.1 uses to motivate reliable type information:
// "Reliable type information about programs can enable the optimizer to
// perform aggressive transformations that would be difficult otherwise,
// such as reordering two fields of a structure". For every named struct
// type whose objects DSA proves are accessed only at their declared type
// (no collapsed or unknown aliases), fields are permuted into descending
// alignment order, minimizing padding; every getelementptr (instruction
// and constant expression), and every struct constant, is rewritten to the
// new indices. Programs that pun struct layouts are left untouched — the
// analysis, not hope, is what makes this safe.
type FieldReorder struct {
	// Reordered counts struct types whose layout changed; BytesSaved sums
	// the padding eliminated per object.
	Reordered  int
	BytesSaved int
}

// NewFieldReorder returns the pass.
func NewFieldReorder() *FieldReorder { return &FieldReorder{} }

// Preserves: permuting struct fields rewrites GEP indices and initializers
// in place; no block, edge, or call changes.
func (*FieldReorder) Preserves() analysis.Preserved { return analysis.PreserveAll }

// Name returns the pass name.
func (*FieldReorder) Name() string { return "fieldreorder" }

// RunOnModule reorders eligible struct types; the count is types changed.
func (fr *FieldReorder) RunOnModule(m *core.Module) int {
	fr.Reordered, fr.BytesSaved = 0, 0
	res := dsa.Analyze(m)

	for _, name := range m.TypeNames() {
		t, _ := m.NamedType(name)
		st, ok := t.(*core.StructType)
		if !ok || len(st.Fields) < 2 {
			continue
		}
		perm := paddingMinimizingOrder(st)
		if isIdentity(perm) {
			continue
		}
		if !res.TypeReliable(st) {
			continue // something aliases this layout at another type
		}
		saved := core.SizeOf(st)
		fr.applyPermutation(m, st, perm)
		saved -= core.SizeOf(st)
		if saved > 0 {
			fr.BytesSaved += saved
		}
		fr.Reordered++
	}
	return fr.Reordered
}

// paddingMinimizingOrder returns perm where perm[oldIndex] = newIndex,
// sorting fields by descending alignment (stable, so equal-alignment
// fields keep their relative order).
func paddingMinimizingOrder(st *core.StructType) []int {
	idx := make([]int, len(st.Fields))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return core.AlignOf(st.Fields[idx[a]]) > core.AlignOf(st.Fields[idx[b]])
	})
	perm := make([]int, len(st.Fields))
	for newPos, oldPos := range idx {
		perm[oldPos] = newPos
	}
	return perm
}

func isIdentity(perm []int) bool {
	for i, p := range perm {
		if i != p {
			return false
		}
	}
	return true
}

// applyPermutation rewrites the type, all GEPs, and all struct constants.
func (fr *FieldReorder) applyPermutation(m *core.Module, st *core.StructType, perm []int) {
	// 1. The type itself.
	newFields := make([]core.Type, len(st.Fields))
	for oldPos, newPos := range perm {
		newFields[newPos] = st.Fields[oldPos]
	}
	st.Fields = newFields

	// 2. Every getelementptr whose path steps through st.
	for _, f := range m.Funcs {
		f.ForEachInst(func(inst core.Instruction) bool {
			if gep, ok := inst.(*core.GetElementPtrInst); ok {
				fr.rewriteGEP(gep.Base().Type(), gep.Indices(), st, perm,
					func(i int, c *core.ConstantInt) { gep.SetOperand(i+1, c) })
			}
			for _, op := range inst.Operands() {
				if ce, ok := op.(*core.ConstantExpr); ok && ce.Op == core.OpGetElementPtr {
					fr.rewriteGEP(ce.Operand(0).Type(), ce.Operands()[1:], st, perm,
						func(i int, c *core.ConstantInt) { ce.SetOperand(i+1, c) })
				}
			}
			return true
		})
	}
	for _, g := range m.Globals {
		if ce, ok := g.Init.(*core.ConstantExpr); ok && ce.Op == core.OpGetElementPtr {
			fr.rewriteGEP(ce.Operand(0).Type(), ce.Operands()[1:], st, perm,
				func(i int, c *core.ConstantInt) { ce.SetOperand(i+1, c) })
		}
	}

	// 3. Struct constants of this type, anywhere in initializers.
	var fix func(c core.Constant) core.Constant
	fix = func(c core.Constant) core.Constant {
		switch cc := c.(type) {
		case *core.ConstantStruct:
			for i, f := range cc.Fields {
				cc.Fields[i] = fix(f)
			}
			if cc.Type() == core.Type(st) {
				nf := make([]core.Constant, len(cc.Fields))
				for oldPos, newPos := range perm {
					nf[newPos] = cc.Fields[oldPos]
				}
				cc.Fields = nf
			}
		case *core.ConstantArray:
			for i, e := range cc.Elems {
				cc.Elems[i] = fix(e)
			}
		}
		return c
	}
	for _, g := range m.Globals {
		if g.Init != nil {
			g.Init = fix(g.Init)
		}
	}
}

// rewriteGEP walks one GEP's index path (before-permutation types have
// already been mutated in the struct, so walk using the *new* fields but
// detect steps into st by identity) and remaps indices into st.
//
// Implementation note: the struct's Fields were already permuted, so to
// interpret old indices we invert through perm — an old index i now lives
// at perm[i]; the continuation type is the same field type either way.
func (fr *FieldReorder) rewriteGEP(baseType core.Type, indices []core.Value,
	st *core.StructType, perm []int, set func(int, *core.ConstantInt)) {
	pt, ok := baseType.(*core.PointerType)
	if !ok {
		return
	}
	cur := core.Type(pt.Elem)
	for k, idx := range indices {
		if k == 0 {
			continue
		}
		switch ct := cur.(type) {
		case *core.StructType:
			ci, ok := idx.(*core.ConstantInt)
			if !ok {
				return
			}
			old := int(ci.SExt())
			if ct == st {
				if old < 0 || old >= len(perm) {
					return
				}
				newIdx := perm[old]
				if newIdx != old {
					set(k, core.NewInt(ci.Type(), int64(newIdx)))
				}
				cur = ct.Fields[newIdx]
			} else {
				if old < 0 || old >= len(ct.Fields) {
					return
				}
				cur = ct.Fields[old]
			}
		case *core.ArrayType:
			cur = ct.Elem
		default:
			return
		}
	}
}
