package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// ---------------------------------------------------------------------------
// Dead Global Elimination (DGE)

// DeadGlobalElim is the aggressive dead global variable and function
// elimination pass of Table 2: objects are assumed dead until proven
// reachable from an externally-visible root, so dead cycles (mutually
// recursive dead functions, globals pointing at each other) are deleted
// too (footnote 9 of the paper).
type DeadGlobalElim struct {
	// NumFuncs and NumGlobals report what the last run deleted.
	NumFuncs   int
	NumGlobals int
}

// NewDeadGlobalElim returns the pass.
func NewDeadGlobalElim() *DeadGlobalElim { return &DeadGlobalElim{} }

// Preserves: surviving functions' bodies are untouched, so their CFG
// analyses stand; deleting globals and functions invalidates the call graph.
func (*DeadGlobalElim) Preserves() analysis.Preserved { return analysis.PreserveCFG }

// Name returns the pass name.
func (*DeadGlobalElim) Name() string { return "dge" }

// RunOnModule deletes unreferenced internal globals and functions.
func (d *DeadGlobalElim) RunOnModule(m *core.Module) int {
	d.NumFuncs, d.NumGlobals = 0, 0
	liveF := map[*core.Function]bool{}
	liveG := map[*core.GlobalVariable]bool{}
	var work []core.Value

	root := func(v core.Value) {
		switch x := v.(type) {
		case *core.Function:
			if !liveF[x] {
				liveF[x] = true
				work = append(work, x)
			}
		case *core.GlobalVariable:
			if !liveG[x] {
				liveG[x] = true
				work = append(work, x)
			}
		}
	}

	// Roots: externally visible symbols.
	for _, f := range m.Funcs {
		if f.Linkage == core.ExternalLinkage {
			root(f)
		}
	}
	for _, g := range m.Globals {
		if g.Linkage == core.ExternalLinkage {
			root(g)
		}
	}

	var scanConst func(c core.Constant)
	scanConst = func(c core.Constant) {
		switch cc := c.(type) {
		case *core.Function, *core.GlobalVariable:
			root(cc)
		case *core.ConstantArray:
			for _, e := range cc.Elems {
				scanConst(e)
			}
		case *core.ConstantStruct:
			for _, f := range cc.Fields {
				scanConst(f)
			}
		case *core.ConstantExpr:
			for _, op := range cc.Operands() {
				if oc, ok := op.(core.Constant); ok {
					scanConst(oc)
				}
			}
		}
	}

	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		switch x := v.(type) {
		case *core.Function:
			x.ForEachInst(func(inst core.Instruction) bool {
				for _, op := range inst.Operands() {
					if c, ok := op.(core.Constant); ok {
						scanConst(c)
					}
				}
				return true
			})
		case *core.GlobalVariable:
			if x.Init != nil {
				scanConst(x.Init)
			}
		}
	}

	// Delete dead objects: clear bodies/initializers first so dead cycles
	// release their references, then unlink.
	var deadF []*core.Function
	var deadG []*core.GlobalVariable
	for _, f := range m.Funcs {
		if !liveF[f] {
			deadF = append(deadF, f)
		}
	}
	for _, g := range m.Globals {
		if !liveG[g] {
			deadG = append(deadG, g)
		}
	}
	for _, f := range deadF {
		dropFunctionBody(f)
	}
	for _, g := range deadG {
		g.Init = nil
	}
	for _, f := range deadF {
		m.RemoveFunc(f)
		d.NumFuncs++
	}
	for _, g := range deadG {
		m.RemoveGlobal(g)
		d.NumGlobals++
	}
	return d.NumFuncs + d.NumGlobals
}

// ---------------------------------------------------------------------------
// Dead Argument (and return value) Elimination (DAE)

// DeadArgElim removes never-used formal arguments of internal functions,
// and demotes return values that no caller reads to void — the "aggressive
// Dead Argument and return value Elimination" of Table 2. Call sites are
// rewritten to match the new signature.
type DeadArgElim struct {
	// NumArgs and NumRets report what the last run removed.
	NumArgs int
	NumRets int
}

// NewDeadArgElim returns the pass.
func NewDeadArgElim() *DeadArgElim { return &DeadArgElim{} }

// Preserves: a rewritten function reuses the original's blocks, and caller
// CFGs are unchanged by call-site rewrites, so per-function analyses stand
// (entries keyed on replaced *Function objects are pruned by the manager);
// the call graph's nodes do not.
func (*DeadArgElim) Preserves() analysis.Preserved { return analysis.PreserveCFG }

// Name returns the pass name.
func (*DeadArgElim) Name() string { return "dae" }

// RunOnModule rewrites eligible functions and their call sites.
func (d *DeadArgElim) RunOnModule(m *core.Module) int {
	d.NumArgs, d.NumRets = 0, 0
	taken := analysis.AddressTakenFunctions(m)
	for _, f := range append([]*core.Function(nil), m.Funcs...) {
		if f.Linkage != core.InternalLinkage || f.IsDeclaration() || taken[f] || f.Sig.Variadic {
			continue
		}
		deadArgs := make([]bool, len(f.Args))
		nDead := 0
		for i, a := range f.Args {
			if !core.HasUses(a) {
				deadArgs[i] = true
				nDead++
			}
		}
		deadRet := false
		if f.Sig.Ret != core.VoidType {
			deadRet = true
			for _, site := range f.Callers() {
				if core.HasUses(site) {
					deadRet = false
					break
				}
			}
		}
		if nDead == 0 && !deadRet {
			continue
		}
		d.rewrite(m, f, deadArgs, deadRet)
		d.NumArgs += nDead
		if deadRet {
			d.NumRets++
		}
	}
	return d.NumArgs + d.NumRets
}

func (d *DeadArgElim) rewrite(m *core.Module, f *core.Function, deadArgs []bool, deadRet bool) {
	// Build the new signature.
	newSig := &core.FunctionType{Ret: f.Sig.Ret}
	if deadRet {
		newSig.Ret = core.VoidType
	}
	for i, p := range f.Sig.Params {
		if !deadArgs[i] {
			newSig.Params = append(newSig.Params, p)
		}
	}

	name := f.Name()
	nf := core.NewFunction(m.UniqueSymbol(name+".dae"), newSig)
	nf.Linkage = f.Linkage
	// Move the body wholesale: blocks keep their instructions; only
	// argument references and (if deadRet) rets change.
	k := 0
	for i, a := range f.Args {
		if deadArgs[i] {
			continue // no uses by construction
		}
		nf.Args[k].SetName(a.Name())
		core.ReplaceAllUses(a, nf.Args[k])
		k++
	}
	blocks := append([]*core.BasicBlock(nil), f.Blocks...)
	f.Blocks = nil
	for _, b := range blocks {
		nf.AddBlock(b)
	}
	if deadRet {
		for _, b := range nf.Blocks {
			if ret, ok := b.Terminator().(*core.RetInst); ok && ret.Value() != nil {
				b.Erase(ret)
				b.Append(core.NewRet(nil))
			}
		}
	}
	m.AddFunc(nf)

	// Rewrite call sites.
	for _, site := range append([]core.Instruction(nil), f.Callers()...) {
		blk := site.Parent()
		idx := blk.IndexOf(site)
		switch call := site.(type) {
		case *core.CallInst:
			var args []core.Value
			for i, a := range call.Args() {
				if !deadArgs[i] {
					args = append(args, a)
				}
			}
			nc := core.NewCall(nf, args...)
			nc.SetName(call.Name())
			blk.InsertAt(idx, nc)
			if !deadRet && call.Type() != core.VoidType {
				core.ReplaceAllUses(call, nc)
			}
			blk.Erase(call)
		case *core.InvokeInst:
			var args []core.Value
			for i, a := range call.Args() {
				if !deadArgs[i] {
					args = append(args, a)
				}
			}
			ni := core.NewInvoke(nf, args, call.NormalDest(), call.UnwindDest())
			ni.SetName(call.Name())
			blk.InsertAt(idx, ni)
			if !deadRet && call.Type() != core.VoidType {
				core.ReplaceAllUses(call, ni)
			}
			blk.Erase(call)
		}
	}

	m.RemoveFunc(f)
	m.RenameFunc(nf, name)
}

// ---------------------------------------------------------------------------
// Interprocedural constant propagation (IPCP)

// IPConstProp propagates constants across calls: when every call site of an
// internal function passes the same constant for a parameter, uses of that
// parameter are replaced by the constant (DAE then deletes the parameter).
type IPConstProp struct{}

// NewIPConstProp returns the pass.
func NewIPConstProp() *IPConstProp { return &IPConstProp{} }

// Preserves: replacing argument uses with constants touches no block
// structure and no call sites.
func (*IPConstProp) Preserves() analysis.Preserved { return analysis.PreserveAll }

// Name returns the pass name.
func (*IPConstProp) Name() string { return "ipcp" }

// RunOnModule replaces provably-constant parameters.
func (p *IPConstProp) RunOnModule(m *core.Module) int {
	changed := 0
	taken := analysis.AddressTakenFunctions(m)
	for _, f := range m.Funcs {
		if f.Linkage != core.InternalLinkage || f.IsDeclaration() || taken[f] {
			continue
		}
		sites := f.Callers()
		if len(sites) == 0 {
			continue
		}
		for i, a := range f.Args {
			if !core.HasUses(a) {
				continue
			}
			var common core.Constant
			ok := true
			for _, site := range sites {
				var arg core.Value
				switch c := site.(type) {
				case *core.CallInst:
					arg = c.Args()[i]
				case *core.InvokeInst:
					arg = c.Args()[i]
				}
				c, isC := arg.(core.Constant)
				if !isC {
					ok = false
					break
				}
				switch c.(type) {
				case *core.ConstantInt, *core.ConstantFloat, *core.ConstantBool, *core.ConstantNull:
				default:
					ok = false
				}
				if !ok {
					break
				}
				if common == nil {
					common = c
				} else if !constEq(common, c) {
					ok = false
					break
				}
			}
			if ok && common != nil {
				core.ReplaceAllUses(a, common)
				changed++
			}
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Dead type elimination

// DeadTypeElim removes named types from the module symbol table that are
// not used by any global, function signature, or instruction — one of the
// link-time interprocedural transformations listed in §3.3.
type DeadTypeElim struct{}

// NewDeadTypeElim returns the pass.
func NewDeadTypeElim() *DeadTypeElim { return &DeadTypeElim{} }

// Preserves: dropping unreferenced named types never touches IR bodies.
func (*DeadTypeElim) Preserves() analysis.Preserved { return analysis.PreserveAll }

// Name returns the pass name.
func (*DeadTypeElim) Name() string { return "deadtypeelim" }

// RunOnModule drops unused named types.
func (d *DeadTypeElim) RunOnModule(m *core.Module) int {
	used := map[core.Type]bool{}
	var mark func(t core.Type)
	mark = func(t core.Type) {
		if t == nil || used[t] {
			return
		}
		used[t] = true
		switch tt := t.(type) {
		case *core.PointerType:
			mark(tt.Elem)
		case *core.ArrayType:
			mark(tt.Elem)
		case *core.StructType:
			for _, f := range tt.Fields {
				mark(f)
			}
		case *core.FunctionType:
			mark(tt.Ret)
			for _, p := range tt.Params {
				mark(p)
			}
		}
	}
	for _, g := range m.Globals {
		mark(g.ValueType)
	}
	for _, f := range m.Funcs {
		mark(f.Sig)
		f.ForEachInst(func(inst core.Instruction) bool {
			mark(inst.Type())
			switch i := inst.(type) {
			case *core.MallocInst:
				mark(i.AllocType)
			case *core.AllocaInst:
				mark(i.AllocType)
			}
			for _, op := range inst.Operands() {
				if op != nil {
					mark(op.Type())
				}
			}
			return true
		})
	}

	removed := 0
	for _, name := range append([]string(nil), m.TypeNames()...) {
		t, _ := m.NamedType(name)
		if !used[t] {
			m.RemoveTypeName(name)
			removed++
		}
	}
	return removed
}

// ---------------------------------------------------------------------------
// Exception-handler pruning

// PruneEH uses the interprocedural may-unwind analysis to turn invokes of
// functions that provably cannot unwind into plain calls, making their
// exception handlers unreachable (§4.1.2: interprocedural analysis lets
// LLVM "eliminate unused exception handlers", which a per-module
// source-level compiler cannot do).
type PruneEH struct{}

// NewPruneEH returns the pass.
func NewPruneEH() *PruneEH { return &PruneEH{} }

// Name returns the pass name.
func (*PruneEH) Name() string { return "pruneeh" }

// Preserves: nothing — devolving an invoke to a call removes its unwind
// edge, changing the caller's CFG and the graph's call-site bookkeeping.
func (*PruneEH) Preserves() analysis.Preserved { return analysis.PreserveNone }

// RunOnModule devolves invokes whose callee cannot unwind.
func (p *PruneEH) RunOnModule(m *core.Module) int {
	return p.runOnModuleWith(m, nil)
}

func (p *PruneEH) runOnModuleWith(m *core.Module, am *analysis.Manager) int {
	cg := am.CallGraph(m)
	may := cg.MayUnwind()
	changed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			inv, ok := b.Terminator().(*core.InvokeInst)
			if !ok {
				continue
			}
			callee := inv.Callee().(core.Value)
			target, direct := callee.(*core.Function)
			if !direct || may[target] {
				continue
			}
			normal, uw := inv.NormalDest(), inv.UnwindDest()
			call := core.NewCall(inv.Callee(), inv.Args()...)
			call.SetName(inv.Name())
			idx := b.IndexOf(inv)
			b.InsertAt(idx, call)
			if inv.Type() != core.VoidType {
				core.ReplaceAllUses(inv, call)
			}
			b.Erase(inv)
			b.Append(core.NewBr(normal))
			if uw != normal {
				uw.RemovePredecessor(b)
			}
			changed++
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Internalize

// Internalize gives internal linkage to every definition except the listed
// entry points; the linker runs it after merging a whole program so the
// interprocedural passes may assume no external callers (§3.3).
type Internalize struct{ Keep map[string]bool }

// Preserves: linkage changes leave bodies, edges, and calls untouched.
func (*Internalize) Preserves() analysis.Preserved { return analysis.PreserveAll }

// NewInternalize returns the pass; entries lists symbols to keep external
// ("main" is always kept).
func NewInternalize(entries ...string) *Internalize {
	keep := map[string]bool{"main": true}
	for _, e := range entries {
		keep[e] = true
	}
	return &Internalize{Keep: keep}
}

// Name returns the pass name.
func (*Internalize) Name() string { return "internalize" }

// RunOnModule marks non-entry definitions internal.
func (p *Internalize) RunOnModule(m *core.Module) int {
	changed := 0
	for _, f := range m.Funcs {
		if !f.IsDeclaration() && !p.Keep[f.Name()] && f.Linkage != core.InternalLinkage {
			f.Linkage = core.InternalLinkage
			changed++
		}
	}
	for _, g := range m.Globals {
		if !g.IsDeclaration() && !p.Keep[g.Name()] && g.Linkage != core.InternalLinkage {
			g.Linkage = core.InternalLinkage
			changed++
		}
	}
	return changed
}
