package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// SCCP is sparse conditional constant propagation (Wegman-Zadeck): it
// propagates constants along SSA edges while simultaneously tracking which
// CFG edges can execute, so constants flowing around provably-dead branches
// are still discovered. Values proven constant are replaced; branch
// conditions proven constant are materialized so SimplifyCFG can delete the
// dead arms.
type SCCP struct{}

// NewSCCP returns the pass.
func NewSCCP() *SCCP { return &SCCP{} }

// Preserves: SCCP folds values and erases dead pure instructions but leaves
// all branches (even ones proven one-sided) for SimplifyCFG to restructure.
func (*SCCP) Preserves() analysis.Preserved { return analysis.PreserveAll }

// Name returns the pass name.
func (*SCCP) Name() string { return "sccp" }

// Lattice states.
type latticeState int

const (
	latUnknown latticeState = iota // never executed / no information yet
	latConst
	latOverdefined
)

type latticeValue struct {
	state latticeState
	val   core.Constant
}

type sccpSolver struct {
	fn        *core.Function
	values    map[core.Value]latticeValue
	bbExec    map[*core.BasicBlock]bool
	edgeExec  map[[2]*core.BasicBlock]bool
	instWork  []core.Instruction
	blockWork []*core.BasicBlock
}

// RunOnFunction solves the lattice and rewrites proven-constant values.
func (s *SCCP) RunOnFunction(f *core.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	sv := &sccpSolver{
		fn:       f,
		values:   map[core.Value]latticeValue{},
		bbExec:   map[*core.BasicBlock]bool{},
		edgeExec: map[[2]*core.BasicBlock]bool{},
	}
	// Arguments are overdefined; constants are themselves.
	for _, a := range f.Args {
		sv.values[a] = latticeValue{state: latOverdefined}
	}
	sv.markBlockExecutable(f.Entry())
	sv.solve()

	changed := 0
	for _, b := range f.Blocks {
		if !sv.bbExec[b] {
			continue
		}
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			lv := sv.values[inst]
			if lv.state != latConst || inst.Type() == core.VoidType {
				continue
			}
			if _, isC := core.Value(inst).(core.Constant); isC {
				continue
			}
			core.ReplaceAllUses(inst, lv.val)
			if !hasSideEffects(inst) {
				b.Erase(inst)
			}
			changed++
		}
	}
	return changed
}

func (sv *sccpSolver) lattice(v core.Value) latticeValue {
	if c, ok := v.(core.Constant); ok {
		if _, isPh := v.(*core.Placeholder); !isPh {
			switch c.(type) {
			case *core.ConstantInt, *core.ConstantFloat, *core.ConstantBool, *core.ConstantNull:
				return latticeValue{state: latConst, val: c}
			}
		}
		return latticeValue{state: latOverdefined}
	}
	return sv.values[v]
}

func (sv *sccpSolver) markOverdefined(v core.Value) {
	if sv.values[v].state == latOverdefined {
		return
	}
	sv.values[v] = latticeValue{state: latOverdefined}
	sv.notifyUsers(v)
}

func (sv *sccpSolver) markConst(v core.Value, c core.Constant) {
	cur := sv.values[v]
	if cur.state == latOverdefined {
		return
	}
	if cur.state == latConst {
		if !constEq(cur.val, c) {
			sv.markOverdefined(v)
		}
		return
	}
	sv.values[v] = latticeValue{state: latConst, val: c}
	sv.notifyUsers(v)
}

func (sv *sccpSolver) notifyUsers(v core.Value) {
	for _, u := range v.Uses() {
		if inst, ok := u.User.(core.Instruction); ok {
			sv.instWork = append(sv.instWork, inst)
		}
	}
}

func (sv *sccpSolver) markBlockExecutable(b *core.BasicBlock) {
	if sv.bbExec[b] {
		return
	}
	sv.bbExec[b] = true
	sv.blockWork = append(sv.blockWork, b)
}

func (sv *sccpSolver) markEdgeExecutable(from, to *core.BasicBlock) {
	key := [2]*core.BasicBlock{from, to}
	if sv.edgeExec[key] {
		return
	}
	sv.edgeExec[key] = true
	if sv.bbExec[to] {
		// Re-visit the phis of to: a new incoming edge may change them.
		for _, phi := range to.Phis() {
			sv.instWork = append(sv.instWork, phi)
		}
	} else {
		sv.markBlockExecutable(to)
	}
}

func (sv *sccpSolver) solve() {
	for len(sv.instWork) > 0 || len(sv.blockWork) > 0 {
		for len(sv.blockWork) > 0 {
			b := sv.blockWork[len(sv.blockWork)-1]
			sv.blockWork = sv.blockWork[:len(sv.blockWork)-1]
			for _, inst := range b.Instrs {
				sv.visit(inst)
			}
		}
		for len(sv.instWork) > 0 {
			inst := sv.instWork[len(sv.instWork)-1]
			sv.instWork = sv.instWork[:len(sv.instWork)-1]
			if sv.bbExec[inst.Parent()] {
				sv.visit(inst)
			}
		}
	}
}

func (sv *sccpSolver) visit(inst core.Instruction) {
	switch i := inst.(type) {
	case *core.PhiInst:
		sv.visitPhi(i)
	case *core.BinaryInst:
		a, b := sv.lattice(i.LHS()), sv.lattice(i.RHS())
		if a.state == latConst && b.state == latConst {
			if folded := core.FoldBinary(i.Opcode(), a.val, b.val); folded != nil {
				sv.markConst(i, folded)
				return
			}
		}
		if a.state == latOverdefined || b.state == latOverdefined {
			sv.markOverdefined(i)
		}
	case *core.CastInst:
		v := sv.lattice(i.Val())
		if v.state == latConst {
			if folded := core.FoldCast(v.val, i.Type()); folded != nil {
				sv.markConst(i, folded)
				return
			}
		}
		if v.state == latOverdefined {
			sv.markOverdefined(i)
		}
	case *core.BranchInst:
		if !i.IsConditional() {
			sv.markEdgeExecutable(i.Parent(), i.TrueDest())
			return
		}
		c := sv.lattice(i.Cond())
		switch c.state {
		case latConst:
			if cb, ok := c.val.(*core.ConstantBool); ok {
				if cb.Val {
					sv.markEdgeExecutable(i.Parent(), i.TrueDest())
				} else {
					sv.markEdgeExecutable(i.Parent(), i.FalseDest())
				}
				return
			}
			sv.markEdgeExecutable(i.Parent(), i.TrueDest())
			sv.markEdgeExecutable(i.Parent(), i.FalseDest())
		case latOverdefined:
			sv.markEdgeExecutable(i.Parent(), i.TrueDest())
			sv.markEdgeExecutable(i.Parent(), i.FalseDest())
		}
	case *core.SwitchInst:
		c := sv.lattice(i.Value())
		switch c.state {
		case latConst:
			ci, ok := c.val.(*core.ConstantInt)
			if !ok {
				sv.markAllSwitchEdges(i)
				return
			}
			taken := i.Default()
			for n := 0; n < i.NumCases(); n++ {
				val, dest := i.Case(n)
				if val.Val == ci.Val {
					taken = dest
					break
				}
			}
			sv.markEdgeExecutable(i.Parent(), taken)
		case latOverdefined:
			sv.markAllSwitchEdges(i)
		}
	case *core.InvokeInst:
		sv.markOverdefined(i)
		sv.markEdgeExecutable(i.Parent(), i.NormalDest())
		sv.markEdgeExecutable(i.Parent(), i.UnwindDest())
	case *core.RetInst, *core.UnwindInst, *core.StoreInst, *core.FreeInst:
		// No result, no successor edges.
	default:
		// Loads, calls, mallocs, allocas, GEPs, vaargs: overdefined.
		if inst.Type() != core.VoidType {
			sv.markOverdefined(inst)
		}
	}
}

func (sv *sccpSolver) markAllSwitchEdges(i *core.SwitchInst) {
	sv.markEdgeExecutable(i.Parent(), i.Default())
	for n := 0; n < i.NumCases(); n++ {
		_, dest := i.Case(n)
		sv.markEdgeExecutable(i.Parent(), dest)
	}
}

func (sv *sccpSolver) visitPhi(phi *core.PhiInst) {
	// Meet over incoming values whose edges are executable.
	var result latticeValue
	for n := 0; n < phi.NumIncoming(); n++ {
		v, pred := phi.Incoming(n)
		if !sv.edgeExec[[2]*core.BasicBlock{pred, phi.Parent()}] {
			continue
		}
		lv := sv.lattice(v)
		switch lv.state {
		case latUnknown:
			continue
		case latOverdefined:
			sv.markOverdefined(phi)
			return
		case latConst:
			if result.state == latUnknown {
				result = lv
			} else if !constEq(result.val, lv.val) {
				sv.markOverdefined(phi)
				return
			}
		}
	}
	if result.state == latConst {
		sv.markConst(phi, result.val)
	}
}

func constEq(a, b core.Constant) bool {
	switch ca := a.(type) {
	case *core.ConstantInt:
		cb, ok := b.(*core.ConstantInt)
		return ok && core.TypesEqual(ca.Type(), cb.Type()) && ca.Val == cb.Val
	case *core.ConstantFloat:
		cb, ok := b.(*core.ConstantFloat)
		return ok && core.TypesEqual(ca.Type(), cb.Type()) && ca.Val == cb.Val
	case *core.ConstantBool:
		cb, ok := b.(*core.ConstantBool)
		return ok && ca.Val == cb.Val
	case *core.ConstantNull:
		_, ok := b.(*core.ConstantNull)
		return ok
	}
	return a == b
}
