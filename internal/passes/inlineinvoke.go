package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// InlineInvoke integrates a callee at an *invoke* site. This is the
// transformation §2.4 of the paper highlights: "this allows LLVM to turn
// stack unwinding operations into direct branches when the unwind target
// is the same function as the unwinder (this often occurs due to
// inlining)". Concretely:
//
//   - the callee's ret instructions become branches to the invoke's normal
//     destination (via a stub carrying the result φ);
//   - the callee's unwind instructions become *direct branches* to the
//     invoke's unwind destination — no dynamic unwinding remains;
//   - calls inside the callee that could unwind are converted to invokes
//     whose unwind edge is the invoke's unwind destination, preserving the
//     handler's reach over the inlined body.
//
// It reports false (without modifying anything) when the site is not
// safely inlinable (indirect callee, declaration, recursion, or a result
// used outside the region dominated by the normal destination).
func InlineInvoke(inv *core.InvokeInst) bool {
	callee, ok := inv.Callee().(*core.Function)
	if !ok || callee.IsDeclaration() || callee.Sig.Variadic {
		return false
	}
	caller := inv.Parent().Parent()
	if callee == caller {
		return false
	}

	// Guard: every use of the invoke's result must be dominated by the
	// normal destination (a φ in the normal dest counts). Uses reachable
	// through the unwind path would not see the replacement φ.
	if inv.Type() != core.VoidType && core.HasUses(inv) {
		dt := analysis.NewDomTree(caller)
		normal := inv.NormalDest()
		for _, u := range inv.Uses() {
			user, isInst := u.User.(core.Instruction)
			if !isInst || user.Parent() == nil {
				return false
			}
			if phi, isPhi := user.(*core.PhiInst); isPhi {
				if phi.Parent() == normal {
					continue
				}
			}
			if !dt.Dominates(normal, user.Parent()) {
				return false
			}
		}
	}

	invBlock := inv.Parent()
	normal, unwindDest := inv.NormalDest(), inv.UnwindDest()

	// Stub blocks so φ edges in the original destinations stay single.
	retStub := core.NewBlock(invBlock.Name() + ".inlret")
	caller.InsertBlockAfter(retStub, invBlock)
	uwStub := core.NewBlock(invBlock.Name() + ".inluw")
	caller.InsertBlockAfter(uwStub, retStub)

	// Retarget destination φs from the invoke block to the stubs.
	retargetPhis(normal, invBlock, retStub)
	retargetPhis(unwindDest, invBlock, uwStub)

	// Clone the callee with arguments bound.
	vmap := map[core.Value]core.Value{}
	for i, a := range callee.Args {
		vmap[a] = inv.Args()[i]
	}
	clones := core.CloneBlocks(callee, vmap)
	mark := uwStub
	for _, nb := range clones {
		caller.InsertBlockAfter(nb, mark)
		mark = nb
	}

	// First, convert interior calls to invokes routing their unwind edge
	// to the handler: split the block after each call and continue
	// scanning in the continuation (appended to the worklist).
	for ci := 0; ci < len(clones); ci++ {
		nb := clones[ci]
		for k := 0; k < len(nb.Instrs); k++ {
			call, isCall := nb.Instrs[k].(*core.CallInst)
			if !isCall {
				continue
			}
			cont := core.NewBlock(nb.Name() + ".cont")
			caller.InsertBlockAfter(cont, nb)
			nb.MoveTailTo(k+1, cont)
			niv := core.NewInvoke(call.Callee(), call.Args(), cont, uwStub)
			niv.SetName(call.Name())
			if call.Type() != core.VoidType {
				core.ReplaceAllUses(call, niv)
			}
			nb.Erase(call)
			nb.Append(niv)
			clones = append(clones, cont)
			break
		}
	}

	// Then rewrite rets and unwinds over the final block list.
	type retEdge struct {
		val  core.Value
		from *core.BasicBlock
	}
	var rets []retEdge
	for _, nb := range clones {
		switch t := nb.Terminator().(type) {
		case *core.RetInst:
			rets = append(rets, retEdge{t.Value(), nb})
			nb.Erase(t)
			nb.Append(core.NewBr(retStub))
		case *core.UnwindInst:
			// The paper's headline: unwinding becomes a direct branch.
			nb.Erase(t)
			nb.Append(core.NewBr(uwStub))
		}
	}

	// Bind the result via a φ in the ret stub.
	if inv.Type() != core.VoidType {
		var result core.Value
		switch len(rets) {
		case 0:
			result = core.NewUndef(inv.Type())
		case 1:
			result = rets[0].val
		default:
			phi := core.NewPhi(inv.Type())
			phi.SetName(inv.Name())
			for _, re := range rets {
				phi.AddIncoming(re.val, re.from)
			}
			retStub.InsertAt(0, phi)
			result = phi
		}
		core.ReplaceAllUses(inv, result)
	}
	retStub.Append(core.NewBr(normal))
	uwStub.Append(core.NewBr(unwindDest))

	// Replace the invoke with a branch into the inlined body.
	invBlock.Erase(inv)
	invBlock.Append(core.NewBr(clones[0]))

	// Unreachable stubs (no rets, or nothing unwinds) are left for
	// simplifycfg to sweep.
	return true
}

// retargetPhis rewrites φ entries in dest that name oldPred to newPred.
func retargetPhis(dest, oldPred, newPred *core.BasicBlock) {
	for _, phi := range dest.Phis() {
		for n := 0; n < phi.NumIncoming(); n++ {
			if _, blk := phi.Incoming(n); blk == oldPred {
				phi.SetOperand(2*n+1, newPred)
			}
		}
	}
}
