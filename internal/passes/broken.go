package passes

// Deliberately miscompiling pass variants, the seeded corpus the
// translation-validation oracle is tested against (examples/validate/,
// DESIGN.md §11). Each takes a classic optimization and removes exactly
// the safety check that makes it sound, so the output is verifier-valid
// IR that is semantically wrong on some input. They are reachable from
// the tools only through BrokenPassByName behind the LLVM_BROKEN_PASSES=1
// environment gate; nothing in the real pipelines constructs them.

import (
	"repro/internal/core"
)

// BrokenCSE merges repeated loads from the same pointer within a block
// while ignoring clobbering stores in between, so a reload after a store
// yields the stale pre-store value.
type BrokenCSE struct{}

// NewBrokenCSE returns the unsound load-CSE variant.
func NewBrokenCSE() *BrokenCSE { return &BrokenCSE{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenCSE) Name() string { return "broken-cse" }

// RunOnFunction performs the unsound merge.
func (p *BrokenCSE) RunOnFunction(f *core.Function) int {
	n := 0
	for _, b := range f.Blocks {
		first := map[core.Value]*core.LoadInst{}
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			ld, ok := inst.(*core.LoadInst)
			if !ok {
				continue
			}
			if prev, seen := first[ld.Ptr()]; seen {
				core.ReplaceAllUses(ld, prev)
				b.Erase(ld)
				n++
			} else {
				first[ld.Ptr()] = ld
			}
		}
	}
	return n
}

// BrokenLICM hoists a division out of its guarding block into the entry
// block without proving the divisor nonzero on the hoisted path, turning
// a guarded division into an unconditional trap when the guard would have
// skipped it.
type BrokenLICM struct{}

// NewBrokenLICM returns the unsound hoisting variant.
func NewBrokenLICM() *BrokenLICM { return &BrokenLICM{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenLICM) Name() string { return "broken-licm" }

// RunOnFunction performs the unsound hoist.
func (p *BrokenLICM) RunOnFunction(f *core.Function) int {
	if len(f.Blocks) < 2 {
		return 0
	}
	entry := f.Blocks[0]
	term := entry.Terminator()
	if term == nil {
		return 0
	}
	n := 0
	for _, b := range f.Blocks[1:] {
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			bin, ok := inst.(*core.BinaryInst)
			if !ok || (bin.Opcode() != core.OpDiv && bin.Opcode() != core.OpRem) {
				continue
			}
			// Only operands that trivially dominate the entry terminator.
			if !hoistableOperand(bin.LHS()) || !hoistableOperand(bin.RHS()) {
				continue
			}
			b.Remove(bin)
			entry.InsertBefore(bin, term)
			n++
		}
	}
	return n
}

func hoistableOperand(v core.Value) bool {
	switch v.(type) {
	case *core.Argument, core.Constant:
		return true
	}
	return false
}

// BrokenDSE deletes a store when a later store to the same pointer exists
// in the same block, ignoring loads in between, so the intervening load
// observes the pre-store memory instead of the stored value.
type BrokenDSE struct{}

// NewBrokenDSE returns the unsound dead-store-elimination variant.
func NewBrokenDSE() *BrokenDSE { return &BrokenDSE{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenDSE) Name() string { return "broken-dse" }

// RunOnFunction performs the unsound store deletion.
func (p *BrokenDSE) RunOnFunction(f *core.Function) int {
	n := 0
	for _, b := range f.Blocks {
		insts := append([]core.Instruction(nil), b.Instrs...)
		for i, inst := range insts {
			st, ok := inst.(*core.StoreInst)
			if !ok {
				continue
			}
			for _, later := range insts[i+1:] {
				st2, ok := later.(*core.StoreInst)
				if ok && st2.Ptr() == st.Ptr() && st2 != st {
					b.Erase(st)
					n++
					break
				}
			}
		}
	}
	return n
}

// BrokenInline replaces a call to a constant-returning callee with the
// constant while dropping the callee body entirely — including its side
// effects on global state.
type BrokenInline struct{}

// NewBrokenInline returns the unsound inlining variant.
func NewBrokenInline() *BrokenInline { return &BrokenInline{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenInline) Name() string { return "broken-inline" }

// RunOnModule performs the unsound call elimination.
func (p *BrokenInline) RunOnModule(m *core.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
				call, ok := inst.(*core.CallInst)
				if !ok {
					continue
				}
				callee := call.CalledFunction()
				if callee == nil || callee.IsDeclaration() || len(callee.Blocks) != 1 || callee == f {
					continue
				}
				ret, ok := callee.Blocks[0].Terminator().(*core.RetInst)
				if !ok || ret.Value() == nil {
					continue
				}
				c, ok := ret.Value().(core.Constant)
				if !ok {
					continue
				}
				core.ReplaceAllUses(call, c)
				b.Erase(call)
				n++
			}
		}
	}
	return n
}

// BrokenReassoc "canonicalizes" subtractions by swapping their operands,
// as if subtraction commuted.
type BrokenReassoc struct{}

// NewBrokenReassoc returns the unsound reassociation variant.
func NewBrokenReassoc() *BrokenReassoc { return &BrokenReassoc{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenReassoc) Name() string { return "broken-reassoc" }

// RunOnFunction performs the unsound operand swap.
func (p *BrokenReassoc) RunOnFunction(f *core.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			bin, ok := inst.(*core.BinaryInst)
			if !ok || bin.Opcode() != core.OpSub || !core.IsInteger(bin.Type()) {
				continue
			}
			lhs, rhs := bin.LHS(), bin.RHS()
			if lhs == rhs {
				continue
			}
			bin.SetOperand(0, rhs)
			bin.SetOperand(1, lhs)
			n++
		}
	}
	return n
}

// BrokenSCCP strength-reduces a signed division by two into an arithmetic
// shift right. The two disagree on negative odd operands: division
// truncates toward zero (-7/2 = -3) while the shift floors (-7>>1 = -4).
type BrokenSCCP struct{}

// NewBrokenSCCP returns the unsound strength-reduction variant.
func NewBrokenSCCP() *BrokenSCCP { return &BrokenSCCP{} }

// Name identifies the pass; it matches its corpus file in examples/validate.
func (p *BrokenSCCP) Name() string { return "broken-sccp" }

// RunOnFunction performs the unsound strength reduction.
func (p *BrokenSCCP) RunOnFunction(f *core.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, inst := range append([]core.Instruction(nil), b.Instrs...) {
			bin, ok := inst.(*core.BinaryInst)
			if !ok || bin.Opcode() != core.OpDiv || !core.IsSigned(bin.Type()) {
				continue
			}
			c, ok := bin.RHS().(*core.ConstantInt)
			if !ok || c.Val != 2 {
				continue
			}
			shr := core.NewBinary(core.OpShr, bin.LHS(), core.NewInt(core.UByteType, 1))
			b.InsertBefore(shr, bin)
			core.ReplaceAllUses(bin, shr)
			b.Erase(bin)
			n++
		}
	}
	return n
}

// BrokenPassByName constructs a deliberately miscompiling pass by its
// corpus name. Tools expose these only when the LLVM_BROKEN_PASSES=1
// environment gate is set (see tooling.PassByName).
func BrokenPassByName(name string) (ModulePass, bool) {
	switch name {
	case "broken-cse":
		return AdaptFunctionPass(NewBrokenCSE()), true
	case "broken-licm":
		return AdaptFunctionPass(NewBrokenLICM()), true
	case "broken-dse":
		return AdaptFunctionPass(NewBrokenDSE()), true
	case "broken-inline":
		return NewBrokenInline(), true
	case "broken-reassoc":
		return AdaptFunctionPass(NewBrokenReassoc()), true
	case "broken-sccp":
		return AdaptFunctionPass(NewBrokenSCCP()), true
	}
	return nil, false
}
