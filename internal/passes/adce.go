package passes

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

// ADCE is aggressive dead code elimination: instructions are assumed dead
// until proven live (the paper's footnote 9 describes the same assume-dead
// discipline for global-level DCE). Roots are instructions with side
// effects (stores, calls, invokes, free) and terminators; everything a live
// instruction uses becomes live; the rest is deleted.
type ADCE struct{}

// NewADCE returns the pass.
func NewADCE() *ADCE { return &ADCE{} }

// Preserves: only non-terminator instructions are erased, so the CFG
// stands; calls are control (live) and never removed.
func (*ADCE) Preserves() analysis.Preserved { return analysis.PreserveAll }

// Name returns the pass name.
func (*ADCE) Name() string { return "adce" }

// hasSideEffects reports whether an instruction must be preserved
// regardless of whether its result is used.
func hasSideEffects(inst core.Instruction) bool {
	switch inst.(type) {
	case *core.StoreInst, *core.CallInst, *core.FreeInst, *core.VAArgInst:
		return true
	}
	// Terminators (including invoke and unwind) are control flow.
	return inst.IsTerminator()
}

// RunOnFunction deletes instructions not transitively required by a root.
func (a *ADCE) RunOnFunction(f *core.Function) int {
	live := map[core.Instruction]bool{}
	var work []core.Instruction

	markLive := func(inst core.Instruction) {
		if !live[inst] {
			live[inst] = true
			work = append(work, inst)
		}
	}
	f.ForEachInst(func(inst core.Instruction) bool {
		if hasSideEffects(inst) {
			markLive(inst)
		}
		return true
	})
	for len(work) > 0 {
		inst := work[len(work)-1]
		work = work[:len(work)-1]
		for _, op := range inst.Operands() {
			if oi, ok := op.(core.Instruction); ok {
				markLive(oi)
			}
		}
	}

	// Delete dead instructions (reverse order within each block so uses
	// between dead instructions disappear before their definitions).
	deleted := 0
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			inst := b.Instrs[i]
			if live[inst] {
				continue
			}
			// Dead instructions may still be used by other dead ones that
			// appear earlier (phis); break those edges first.
			if core.HasUses(inst) {
				core.ReplaceAllUses(inst, core.NewUndef(inst.Type()))
			}
			b.Erase(inst)
			deleted++
		}
	}
	return deleted
}
