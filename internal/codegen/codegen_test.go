package codegen

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/core"
)

func parse(t *testing.T, src string) *core.Module {
	t.Helper()
	m, err := asm.ParseModule("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

const loopSrc = `
int %sum(int %n) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %loop ]
	%s = phi int [ 0, %entry ], [ %s2, %loop ]
	%s2 = add int %s, %i
	%i2 = add int %i, 1
	%c = setlt int %i2, %n
	br bool %c, label %loop, label %exit
exit:
	ret int %s2
}
`

func TestLowering(t *testing.T) {
	m := parse(t, loopSrc)
	mf := LowerFunction(m.Func("sum"))
	if len(mf.Blocks) != 3 {
		t.Fatalf("block count = %d", len(mf.Blocks))
	}
	// Loop block should contain phi copies feeding back.
	var movs, alus int
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case MMov:
				movs++
			case MALU:
				alus++
			}
		}
	}
	if alus != 2 {
		t.Errorf("ALU ops = %d, want 2 adds", alus)
	}
	if movs < 4 {
		t.Errorf("phi copies = %d, want >= 4 (2 phis x 2 preds)", movs)
	}
}

func TestRegallocKeepsOperandsInRange(t *testing.T) {
	m := parse(t, loopSrc)
	for _, k := range []int{4, 8, 32} {
		mf := LowerFunction(m.Func("sum"))
		Allocate(mf, k)
		for _, b := range mf.Blocks {
			for _, in := range b.Instrs {
				check := func(r VReg, what string) {
					if r == NoReg || r == framePtr {
						return
					}
					if int(r) < 0 || int(r) >= k {
						t.Fatalf("k=%d: %s register %d out of range in %v", k, what, r, in)
					}
				}
				if definesDst(in.Op) && in.Dst != NoReg {
					check(in.Dst, "dst")
				}
				if usesSrc1(in.Op) {
					check(in.Src1, "src1")
				}
				if usesSrc2(in.Op) {
					check(in.Src2, "src2")
				}
			}
		}
	}
}

func TestFewerRegistersMoreSpills(t *testing.T) {
	// A function with many simultaneously-live values: with 4 registers
	// there must be more memory traffic than with 32.
	src := `
int %busy(int %a, int %b, int %c, int %d, int %e, int %f) {
entry:
	%t1 = add int %a, %b
	%t2 = add int %c, %d
	%t3 = add int %e, %f
	%t4 = mul int %t1, %t2
	%t5 = mul int %t3, %t1
	%t6 = add int %t4, %t5
	%t7 = mul int %t6, %t2
	%t8 = add int %t7, %t3
	ret int %t8
}
`
	m := parse(t, src)
	spills := func(k int) int {
		mf := LowerFunction(m.Func("busy"))
		Allocate(mf, k)
		n := 0
		for _, b := range mf.Blocks {
			for _, in := range b.Instrs {
				if (in.Op == MLoad || in.Op == MStore) && in.Src1 == framePtr || in.Src2 == framePtr {
					n++
				}
			}
		}
		return n
	}
	s4, s32 := spills(4), spills(32)
	if s4 <= s32 {
		t.Fatalf("spills: k=4 -> %d, k=32 -> %d; expected more with fewer registers", s4, s32)
	}
}

func TestEncodersProduceBytes(t *testing.T) {
	m := parse(t, loopSrc)
	for _, tgt := range []Target{Cisc86{}, RiscV9{}} {
		code := CompileFunction(m.Func("sum"), tgt)
		if len(code) == 0 {
			t.Fatalf("%s produced no code", tgt.Name())
		}
		if tgt.Name() == "RISC-V9" && len(code)%4 != 0 {
			t.Fatalf("RISC code not word-aligned: %d bytes", len(code))
		}
	}
}

func TestFigure5SizeOrdering(t *testing.T) {
	// The Figure 5 claim: LLVM bytecode is comparable to CISC code and
	// roughly 25% smaller than RISC code. Check the ordering and rough
	// ratios on a mid-sized program.
	src := `
%rec = type { int, double, [8 x sbyte], %rec* }

internal int %hash(sbyte* %s, int %len) {
entry:
	br label %loop
loop:
	%i = phi int [ 0, %entry ], [ %i2, %body ]
	%h = phi int [ 5381, %entry ], [ %h3, %body ]
	%c = setlt int %i, %len
	br bool %c, label %body, label %done
body:
	%il = cast int %i to long
	%p = getelementptr sbyte* %s, long %il
	%ch = load sbyte* %p
	%chi = cast sbyte %ch to int
	%h2 = mul int %h, 33
	%h3 = add int %h2, %chi
	%i2 = add int %i, 1
	br label %loop
done:
	ret int %h
}

internal %rec* %build(int %n) {
entry:
	%r = malloc %rec
	%f0 = getelementptr %rec* %r, long 0, ubyte 0
	store int %n, int* %f0
	%f1 = getelementptr %rec* %r, long 0, ubyte 1
	store double 3.25, double* %f1
	%f3 = getelementptr %rec* %r, long 0, ubyte 3
	store %rec* null, %rec** %f3
	ret %rec* %r
}

int %main() {
entry:
	%r = call %rec* %build(int 7)
	%f0 = getelementptr %rec* %r, long 0, ubyte 0
	%v = load int* %f0
	%buf = getelementptr %rec* %r, long 0, ubyte 2, long 0
	%h = call int %hash(sbyte* %buf, int 8)
	%s = add int %v, %h
	free %rec* %r
	ret int %s
}
`
	m := parse(t, src)
	enc, err := bytecode.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	bc := len(enc)
	x86 := CompileModule(m, Cisc86{}).Size()
	sparc := CompileModule(m, RiscV9{}).Size()

	if sparc <= x86 {
		t.Errorf("RISC image (%d) should exceed CISC image (%d)", sparc, x86)
	}
	if bc >= sparc {
		t.Errorf("bytecode (%d) should be smaller than RISC (%d)", bc, sparc)
	}
	// Bytecode comparable to CISC: within a factor of two either way.
	if bc > 2*x86 || x86 > 2*bc {
		t.Errorf("bytecode (%d) not comparable to CISC (%d)", bc, x86)
	}
	t.Logf("sizes: LLVM=%d CISC-86=%d RISC-V9=%d", bc, x86, sparc)
}

func TestCompileModuleImage(t *testing.T) {
	m := parse(t, `
%g = global int 7
%tab = constant [2 x int] [ int 1, int 2 ]
declare void %external()

void %main() {
entry:
	call void %external()
	ret void
}
`)
	im := CompileModule(m, Cisc86{})
	if len(im.Data) != 12 {
		t.Errorf("data size = %d, want 12", len(im.Data))
	}
	if im.Data[0] != 7 || im.Data[4] != 1 || im.Data[8] != 2 {
		t.Errorf("data bytes wrong: %v", im.Data[:12])
	}
	if im.FuncSizes["main"] == 0 {
		t.Error("main has no code")
	}
	if im.Size() <= len(im.Code)+len(im.Data) {
		t.Error("image overhead missing")
	}
	if len(im.Bytes()) != imageHeaderSize+len(im.Code)+len(im.Data) {
		t.Error("Bytes() length mismatch")
	}
}

func TestInvokeUnwindLowering(t *testing.T) {
	m := parse(t, `
declare void %may()

void %main() {
entry:
	invoke void %may() to label %ok unwind to label %ex
ok:
	ret void
ex:
	unwind
}
`)
	mf := LowerFunction(m.Func("main"))
	var push, pop, uw int
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case MEHPush:
				push++
			case MEHPop:
				pop++
			case MUnwind:
				uw++
			}
		}
	}
	if push != 1 || pop != 1 || uw != 1 {
		t.Fatalf("EH lowering: push=%d pop=%d unwind=%d", push, pop, uw)
	}
}

func TestSwitchLowering(t *testing.T) {
	m := parse(t, `
int %main(int %x) {
entry:
	switch int %x, label %d [
		int 1, label %a
		int 2, label %b ]
a:
	ret int 1
b:
	ret int 2
d:
	ret int 3
}
`)
	mf := LowerFunction(m.Func("main"))
	cmps := 0
	for _, in := range mf.Blocks[0].Instrs {
		if in.Op == MCmp {
			cmps++
		}
	}
	if cmps != 2 {
		t.Fatalf("switch chain has %d compares, want 2", cmps)
	}
}
