package codegen

// Tier-2 execution lowering: the optimizing tier of the execution engine
// (§3.4, "invokes the appropriate code generator at runtime, translating
// one function at a time"). Where the baseline JIT tier keeps the CFG and
// dispatches per-block with map-resolved φ edges, this lowering produces a
// flat, linearized form the dispatch loop can run with nothing but array
// indexing:
//
//   - the whole function is one []EInstr; branch targets are instruction
//     indices (pcs), resolved at lowering time;
//   - φ-functions are folded into explicit parallel-copy sequences on the
//     incoming edges (small trampolines the branches route through), so
//     block entry does no φ evaluation at all;
//   - every SSA value lives in a dense word register file assigned by the
//     allocator in regalloc.go, reusing the native allocator's
//     block-locality discipline (cross-block values get dedicated
//     registers, block-local values share a scratch pool);
//   - opcodes are specialized by width and signedness at lowering time
//     (EAdd64 vs masked EAddM, shifted signed compares, sized loads), so
//     the executor does no per-instruction type dispatch.
//
// The lowering is machine-independent: constants (including global and
// function addresses) are kept symbolically in a pool and resolved to raw
// bits per Machine, so one EFunction is shareable across every machine
// executing the same module.

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// EOp enumerates tier-2 executable opcodes. The first three are synthetic
// (no IR counterpart): ECount/EPhiMov/EJmp implement profiling and φ edges
// and must not count as executed instructions, so the executor's step
// accounting is gated on op > EJmp. Every other op corresponds to exactly
// one IR instruction.
type EOp uint8

const (
	ECount  EOp = iota // block-entry profile counter; Imm = block index
	EPhiMov            // Dst <- reg A (φ edge copy)
	EJmp               // pc <- Imm (edge trampoline exit)

	// Integer arithmetic. The 64-bit forms skip masking; the M forms mask
	// the result with Imm (truncToWidth semantics).
	EMov   // Dst <- A
	EAdd64 // Dst <- A + B
	EAddM  // Dst <- (A + B) & Imm
	ESub64
	ESubM
	EMul64
	EMulM
	EAnd // logic masks with Imm too: operands may be non-canonical (a 1-byte
	EOr  // load can yield 0xFF for a bool), and bool logic is just mask 1
	EXor
	EShl  // Imm = result mask, Aux = bit width (shift >= width yields 0)
	EShrU // Imm = result mask, Aux = bit width
	EShrS // Imm = result mask, Aux = 64-width sext shift
	EDivU // Imm = result mask; traps on B == 0
	EDivS // Imm = result mask, B(field) unused, Aux = 64-width sext shift
	ERemU
	ERemS

	// Comparisons produce bool bits. Unsigned/equality forms mask with
	// Imm; signed forms sign-extend via the Imm shift (64-width).
	ECmpEq
	ECmpNe
	ECmpULt
	ECmpUGt
	ECmpULe
	ECmpUGe
	ECmpSLt
	ECmpSGt
	ECmpSLe
	ECmpSGe

	// Floats delegate to core's evaluation helpers: Imm = core.Opcode,
	// Aux = index into Types (float32 rounds per step there).
	EFBin
	EFCmp

	// Casts. ECastTrunc masks with Imm; ECastSext sign-extends by the B
	// shift then masks with Imm (EvalIntCast semantics); ECastBool is
	// v != 0; ECastGen (float conversions) evaluates Casts[Aux] exactly
	// like the interpreter's castBits.
	ECastTrunc
	ECastSext
	ECastBool
	ECastGen

	// Sized memory ops (A = address for loads; A = value, B = address for
	// stores).
	ELoad1
	ELoad2
	ELoad4
	ELoad8
	EStore1
	EStore2
	EStore4
	EStore8

	// Address arithmetic: Dst <- A + Imm (+ scaled terms of Geps[Aux]).
	EGepC
	EGep

	// Allocation: Imm = (element) size; A = element count for the V forms.
	EMallocF
	EMallocV
	EAllocaF
	EAllocaV
	EFree

	EVAArg
	ECall // Aux = index into Calls (covers call and invoke, direct and indirect)

	ERet // return reg A
	ERetVoid
	EBr     // pc <- Imm
	ECondBr // pc <- A != 0 ? Imm : Aux
	ESwitch // Switches[Aux] on reg A; Imm = default pc
	EUnwind
)

// EInstr is one flat tier-2 instruction. All operand fields are register
// indices into the activation frame; Imm/Aux carry immediates, masks, pcs,
// and side-table indices as each opcode requires.
type EInstr struct {
	Imm int64
	Dst int32
	A   int32
	B   int32
	Aux int32
	Op  EOp
}

// EGepTerm is one variable term of an address plan: reg's value,
// sign-extended by Shift, times Scale.
type EGepTerm struct {
	Reg   int32
	Scale int64
	Shift uint8
}

// ECallSite is the side table entry for a call or invoke.
type ECallSite struct {
	Target *core.Function // nil for indirect calls (callee address in Callee)
	Callee int32          // register holding the callee address (indirect only)
	Args   []int32        // argument registers
	Invoke bool
	Normal int32 // resume pc (invoke only)
	Unwind int32 // unwind-edge pc (invoke only)
}

// ESwitchTable is a sorted jump table: Vals ascending, Pcs parallel.
// Duplicate case values keep the first occurrence (interpreter order).
type ESwitchTable struct {
	Vals []uint64
	Pcs  []int32
}

// ECastPair is the (from, to) type pair of a general cast.
type ECastPair struct {
	From, To core.Type
}

// EFunction is a lowered tier-2 function. It is machine-independent and
// immutable after lowering: Consts holds unresolved constants the executor
// resolves to raw bits once per machine, so one translation is shared by
// every machine running the same module.
type EFunction struct {
	Fn        *core.Function
	Code      []EInstr
	NumRegs   int // total frame words: [args|values|temp|consts]
	NumArgs   int
	TempReg   int32 // parallel-copy scratch register
	ConstBase int   // first constant register
	Variadic  bool
	NumBlocks int

	Consts   []core.Constant
	Calls    []ECallSite
	Geps     [][]EGepTerm
	Switches []ESwitchTable
	Casts    []ECastPair
	Types    []core.Type // float operation types (EFBin/EFCmp)

	// Per-pc source positions for trap reports: the IR instruction a pc
	// lowers (nil for synthetic ops) and its block index. Consulted only
	// on the error path.
	SrcOf   []core.Instruction
	BlockOf []int32
}

// GEPPath folds a getelementptr index path into a constant byte offset
// plus scaled variable terms, reported through term. It is the single
// source of address arithmetic shared by the MIR lowering (lowerGEPPath),
// the baseline JIT's address plans, and the tier-2 exec lowering, so all
// engines and code generators agree by construction.
func GEPPath(baseType core.Type, indices []core.Value, term func(idx core.Value, scale int64)) (int64, error) {
	pt, ok := baseType.(*core.PointerType)
	if !ok {
		return 0, fmt.Errorf("codegen: GEP base is not a pointer")
	}
	cur := core.Type(pt.Elem)
	var constOff int64
	for k, idx := range indices {
		if k == 0 {
			sz := int64(core.SizeOf(cur))
			if ci, ok := idx.(*core.ConstantInt); ok {
				constOff += ci.SExt() * sz
			} else {
				term(idx, sz)
			}
			continue
		}
		switch ct := cur.(type) {
		case *core.StructType:
			ci, ok := idx.(*core.ConstantInt)
			if !ok {
				return constOff, fmt.Errorf("codegen: non-constant struct field index")
			}
			f := int(ci.SExt())
			if f < 0 || f >= len(ct.Fields) {
				return constOff, fmt.Errorf("codegen: GEP field index %d out of range", f)
			}
			constOff += int64(core.FieldOffset(ct, f))
			cur = ct.Fields[f]
		case *core.ArrayType:
			sz := int64(core.SizeOf(ct.Elem))
			if ci, ok := idx.(*core.ConstantInt); ok {
				constOff += ci.SExt() * sz
			} else {
				term(idx, sz)
			}
			cur = ct.Elem
		default:
			return constOff, fmt.Errorf("codegen: GEP into non-aggregate %s", cur)
		}
	}
	return constOff, nil
}

// patch kinds: where an unresolved CFG edge target gets written once edge
// trampolines are placed.
type epatchKind uint8

const (
	pImm        epatchKind = iota // Code[idx].Imm
	pAux                          // Code[idx].Aux
	pCallNormal                   // Calls[idx].Normal
	pCallUnwind                   // Calls[idx].Unwind
	pSwCase                       // Switches[idx].Pcs[n]
)

type epatch struct {
	kind     epatchKind
	idx, n   int32
	from, to int32 // CFG edge (block indices)
}

type execLowerer struct {
	f  *core.Function
	ef *EFunction
	fr *execFrame

	blockIdx   map[*core.BasicBlock]int32
	blockStart []int32
	constReg   map[core.Constant]int32
	typeIdx    map[core.Type]int32
	patches    []epatch
	// edgePC maps (pred<<32|succ) to a trampoline pc for edges carrying φ
	// copies; absent edges branch straight to the block start.
	edgePC map[uint64]int32
}

// LowerExec translates f to its flat tier-2 form. It fails (cleanly, no
// panic) on constructs the translation cannot represent — placeholder
// operands, malformed GEPs — exactly the cases the baseline JIT also
// rejects; callers fall back to a lower tier.
//
// counts selects the profiling variant: an ECount at every block entry.
// Non-profiling executions get code with no counter instructions at all —
// one fewer dispatch per block, which matters in tight loops. The two
// variants are otherwise identical (ECount is synthetic and unstepped),
// so results and positions cannot differ between them.
func LowerExec(f *core.Function, counts bool) (*EFunction, error) {
	if f.IsDeclaration() {
		return nil, fmt.Errorf("codegen: cannot lower declaration %%%s", f.Name())
	}
	fr := assignExecRegs(f)
	lo := &execLowerer{
		f:  f,
		fr: fr,
		ef: &EFunction{
			Fn:        f,
			NumArgs:   len(f.Args),
			Variadic:  f.Sig.Variadic,
			NumBlocks: len(f.Blocks),
			TempReg:   fr.numVals,
			ConstBase: int(fr.numVals) + 1,
		},
		blockIdx: map[*core.BasicBlock]int32{},
		constReg: map[core.Constant]int32{},
		typeIdx:  map[core.Type]int32{},
		edgePC:   map[uint64]int32{},
	}
	for i, b := range f.Blocks {
		lo.blockIdx[b] = int32(i)
	}
	lo.blockStart = make([]int32, len(f.Blocks))
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].IsTerminator() {
			return nil, fmt.Errorf("codegen: block %%%s in %%%s lacks a terminator", b.Name(), f.Name())
		}
		lo.blockStart[bi] = int32(len(lo.ef.Code))
		if counts {
			lo.emit(EInstr{Op: ECount, Imm: int64(bi)}, nil, int32(bi))
		}
		for _, inst := range b.Instrs[b.FirstNonPhi():] {
			if err := lo.lowerInst(inst, int32(bi)); err != nil {
				return nil, err
			}
		}
	}
	if err := lo.emitEdges(); err != nil {
		return nil, err
	}
	lo.applyPatches()
	lo.ef.NumRegs = lo.ef.ConstBase + len(lo.ef.Consts)
	return lo.ef, nil
}

func (lo *execLowerer) emit(in EInstr, src core.Instruction, block int32) {
	lo.ef.Code = append(lo.ef.Code, in)
	lo.ef.SrcOf = append(lo.ef.SrcOf, src)
	lo.ef.BlockOf = append(lo.ef.BlockOf, block)
}

// reg resolves an operand to its frame register, pooling constants.
func (lo *execLowerer) reg(v core.Value) (int32, error) {
	if c, ok := v.(core.Constant); ok {
		if _, bad := c.(*core.Placeholder); bad {
			return 0, fmt.Errorf("codegen: placeholder operand in %%%s", lo.f.Name())
		}
		if r, ok := lo.constReg[c]; ok {
			return r, nil
		}
		r := int32(lo.ef.ConstBase + len(lo.ef.Consts))
		lo.ef.Consts = append(lo.ef.Consts, c)
		lo.constReg[c] = r
		return r, nil
	}
	r, ok := lo.fr.reg[v]
	if !ok {
		return 0, fmt.Errorf("codegen: unassigned operand %T in %%%s", v, lo.f.Name())
	}
	return r, nil
}

func (lo *execLowerer) typeOf(t core.Type) int32 {
	if i, ok := lo.typeIdx[t]; ok {
		return i
	}
	i := int32(len(lo.ef.Types))
	lo.ef.Types = append(lo.ef.Types, t)
	lo.typeIdx[t] = i
	return i
}

// maskOf is truncToWidth's mask for a bit width.
func maskOf(bits int) int64 {
	if bits >= 64 {
		return -1
	}
	return int64(uint64(1)<<uint(bits) - 1)
}

func (lo *execLowerer) lowerInst(inst core.Instruction, bi int32) error {
	emit := func(in EInstr) { lo.emit(in, inst, bi) }
	dst := int32(-1)
	if inst.Type() != core.VoidType {
		r, err := lo.reg(inst)
		if err != nil {
			return err
		}
		dst = r
	}

	switch i := inst.(type) {
	case *core.RetInst:
		if i.Value() == nil {
			emit(EInstr{Op: ERetVoid})
			return nil
		}
		a, err := lo.reg(i.Value())
		if err != nil {
			return err
		}
		emit(EInstr{Op: ERet, A: a})
		return nil

	case *core.BranchInst:
		if !i.IsConditional() {
			lo.patches = append(lo.patches, epatch{kind: pImm, idx: int32(len(lo.ef.Code)), from: bi, to: lo.blockIdx[i.TrueDest()]})
			emit(EInstr{Op: EBr})
			return nil
		}
		a, err := lo.reg(i.Cond())
		if err != nil {
			return err
		}
		pc := int32(len(lo.ef.Code))
		lo.patches = append(lo.patches,
			epatch{kind: pImm, idx: pc, from: bi, to: lo.blockIdx[i.TrueDest()]},
			epatch{kind: pAux, idx: pc, from: bi, to: lo.blockIdx[i.FalseDest()]})
		emit(EInstr{Op: ECondBr, A: a})
		return nil

	case *core.SwitchInst:
		a, err := lo.reg(i.Value())
		if err != nil {
			return err
		}
		// Keep the first destination for duplicate case values (the
		// interpreter scans cases in order), then sort for binary search.
		type swCase struct {
			val  uint64
			dest int32
		}
		var cases []swCase
		seen := map[uint64]bool{}
		for n := 0; n < i.NumCases(); n++ {
			cv, dest := i.Case(n)
			if seen[cv.Val] {
				continue
			}
			seen[cv.Val] = true
			cases = append(cases, swCase{cv.Val, lo.blockIdx[dest]})
		}
		sort.Slice(cases, func(x, y int) bool { return cases[x].val < cases[y].val })
		tab := ESwitchTable{Vals: make([]uint64, len(cases)), Pcs: make([]int32, len(cases))}
		ti := int32(len(lo.ef.Switches))
		pc := int32(len(lo.ef.Code))
		for n, c := range cases {
			tab.Vals[n] = c.val
			lo.patches = append(lo.patches, epatch{kind: pSwCase, idx: ti, n: int32(n), from: bi, to: c.dest})
		}
		lo.ef.Switches = append(lo.ef.Switches, tab)
		lo.patches = append(lo.patches, epatch{kind: pImm, idx: pc, from: bi, to: lo.blockIdx[i.Default()]})
		emit(EInstr{Op: ESwitch, A: a, Aux: ti})
		return nil

	case *core.UnwindInst:
		emit(EInstr{Op: EUnwind})
		return nil

	case *core.BinaryInst:
		a, err := lo.reg(i.LHS())
		if err != nil {
			return err
		}
		b, err := lo.reg(i.RHS())
		if err != nil {
			return err
		}
		return lo.lowerBinary(i, dst, a, b, emit)

	case *core.MallocInst:
		esz := uint64(core.SizeOf(i.AllocType))
		if n := i.NumElems(); n != nil {
			a, err := lo.reg(n)
			if err != nil {
				return err
			}
			emit(EInstr{Op: EMallocV, Dst: dst, A: a, Imm: int64(esz)})
			return nil
		}
		emit(EInstr{Op: EMallocF, Dst: dst, Imm: int64(esz)})
		return nil

	case *core.AllocaInst:
		esz := uint64(core.SizeOf(i.AllocType))
		if n := i.NumElems(); n != nil {
			a, err := lo.reg(n)
			if err != nil {
				return err
			}
			emit(EInstr{Op: EAllocaV, Dst: dst, A: a, Imm: int64(esz)})
			return nil
		}
		emit(EInstr{Op: EAllocaF, Dst: dst, Imm: int64(esz)})
		return nil

	case *core.FreeInst:
		a, err := lo.reg(i.Ptr())
		if err != nil {
			return err
		}
		emit(EInstr{Op: EFree, A: a})
		return nil

	case *core.LoadInst:
		a, err := lo.reg(i.Ptr())
		if err != nil {
			return err
		}
		op, err := sizedOp(ELoad1, ELoad2, ELoad4, ELoad8, i.Type())
		if err != nil {
			return err
		}
		emit(EInstr{Op: op, Dst: dst, A: a})
		return nil

	case *core.StoreInst:
		a, err := lo.reg(i.Val())
		if err != nil {
			return err
		}
		b, err := lo.reg(i.Ptr())
		if err != nil {
			return err
		}
		op, err := sizedOp(EStore1, EStore2, EStore4, EStore8, i.Val().Type())
		if err != nil {
			return err
		}
		emit(EInstr{Op: op, A: a, B: b})
		return nil

	case *core.GetElementPtrInst:
		a, err := lo.reg(i.Base())
		if err != nil {
			return err
		}
		var terms []EGepTerm
		var termErr error
		off, err := GEPPath(i.Base().Type(), i.Indices(), func(idx core.Value, scale int64) {
			r, e := lo.reg(idx)
			if e != nil {
				termErr = e
				return
			}
			var shift uint8
			if t := idx.Type(); core.IsSigned(t) {
				if bits := core.BitWidth(t); bits < 64 {
					shift = uint8(64 - bits)
				}
			}
			terms = append(terms, EGepTerm{Reg: r, Scale: scale, Shift: shift})
		})
		if err != nil {
			return err
		}
		if termErr != nil {
			return termErr
		}
		if len(terms) == 0 {
			emit(EInstr{Op: EGepC, Dst: dst, A: a, Imm: off})
			return nil
		}
		gi := int32(len(lo.ef.Geps))
		lo.ef.Geps = append(lo.ef.Geps, terms)
		emit(EInstr{Op: EGep, Dst: dst, A: a, Imm: off, Aux: gi})
		return nil

	case *core.CastInst:
		a, err := lo.reg(i.Val())
		if err != nil {
			return err
		}
		lo.lowerCast(i.Val().Type(), i.Type(), dst, a, emit)
		return nil

	case *core.CallInst:
		return lo.lowerCall(i, dst, i.Callee(), i.Args(), nil, nil, bi, emit)

	case *core.InvokeInst:
		return lo.lowerCall(i, dst, i.Callee(), i.Args(), i.NormalDest(), i.UnwindDest(), bi, emit)

	case *core.VAArgInst:
		emit(EInstr{Op: EVAArg, Dst: dst})
		return nil
	}
	return fmt.Errorf("codegen: cannot lower %s for execution", inst.Opcode())
}

// sizedOp picks the 1/2/4/8-byte variant for a first-class type.
func sizedOp(b1, b2, b4, b8 EOp, t core.Type) (EOp, error) {
	switch core.SizeOf(t) {
	case 1:
		return b1, nil
	case 2:
		return b2, nil
	case 4:
		return b4, nil
	case 8:
		return b8, nil
	}
	return 0, fmt.Errorf("codegen: memory op on %d-byte type %s", core.SizeOf(t), t)
}

// lowerBinary specializes one arithmetic/logic/comparison instruction by
// operand type, replicating the interpreter's execBinary semantics
// (core/arith.go: operate raw, then truncate to width; signed operations
// sign-extend through shifts).
func (lo *execLowerer) lowerBinary(i *core.BinaryInst, dst, a, b int32, emit func(EInstr)) error {
	t := i.LHS().Type()
	op := i.Opcode()

	if core.IsFloatingPoint(t) {
		ti := lo.typeOf(t)
		k := EFBin
		if core.IsComparisonOp(op) {
			k = EFCmp
		}
		emit(EInstr{Op: k, Dst: dst, A: a, B: b, Imm: int64(op), Aux: ti})
		return nil
	}

	// bool and pointer comparisons / arithmetic use unsigned 64-bit
	// semantics, exactly like the interpreter.
	et := t
	if !core.IsInteger(et) {
		et = core.ULongType
	}
	bits := core.BitWidth(et)
	signed := core.IsSigned(et)

	if core.IsComparisonOp(op) {
		if signed {
			shift := int64(0)
			if bits < 64 {
				shift = int64(64 - bits)
			}
			var k EOp
			switch op {
			case core.OpSetEQ:
				k = ECmpEq
			case core.OpSetNE:
				k = ECmpNe
			case core.OpSetLT:
				k = ECmpSLt
			case core.OpSetGT:
				k = ECmpSGt
			case core.OpSetLE:
				k = ECmpSLe
			case core.OpSetGE:
				k = ECmpSGe
			}
			imm := shift
			if k == ECmpEq || k == ECmpNe {
				imm = maskOf(bits)
			}
			emit(EInstr{Op: k, Dst: dst, A: a, B: b, Imm: imm})
			return nil
		}
		var k EOp
		switch op {
		case core.OpSetEQ:
			k = ECmpEq
		case core.OpSetNE:
			k = ECmpNe
		case core.OpSetLT:
			k = ECmpULt
		case core.OpSetGT:
			k = ECmpUGt
		case core.OpSetLE:
			k = ECmpULe
		case core.OpSetGE:
			k = ECmpUGe
		}
		emit(EInstr{Op: k, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		return nil
	}

	if t.Kind() == core.BoolKind {
		var k EOp
		switch op {
		case core.OpAnd:
			k = EAnd
		case core.OpOr:
			k = EOr
		case core.OpXor:
			k = EXor
		default:
			return fmt.Errorf("codegen: bad bool op %s", op)
		}
		emit(EInstr{Op: k, Dst: dst, A: a, B: b, Imm: 1})
		return nil
	}

	switch op {
	case core.OpAdd:
		if bits >= 64 {
			emit(EInstr{Op: EAdd64, Dst: dst, A: a, B: b})
		} else {
			emit(EInstr{Op: EAddM, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		}
	case core.OpSub:
		if bits >= 64 {
			emit(EInstr{Op: ESub64, Dst: dst, A: a, B: b})
		} else {
			emit(EInstr{Op: ESubM, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		}
	case core.OpMul:
		if bits >= 64 {
			emit(EInstr{Op: EMul64, Dst: dst, A: a, B: b})
		} else {
			emit(EInstr{Op: EMulM, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		}
	case core.OpAnd:
		emit(EInstr{Op: EAnd, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
	case core.OpOr:
		emit(EInstr{Op: EOr, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
	case core.OpXor:
		emit(EInstr{Op: EXor, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
	case core.OpShl:
		emit(EInstr{Op: EShl, Dst: dst, A: a, B: b, Imm: maskOf(bits), Aux: int32(bits)})
	case core.OpShr:
		if signed {
			emit(EInstr{Op: EShrS, Dst: dst, A: a, B: b, Imm: maskOf(bits), Aux: int32(64 - bits)})
		} else {
			emit(EInstr{Op: EShrU, Dst: dst, A: a, B: b, Imm: maskOf(bits), Aux: int32(bits)})
		}
	case core.OpDiv:
		if signed {
			emit(EInstr{Op: EDivS, Dst: dst, A: a, B: b, Imm: maskOf(bits), Aux: int32(64 - bits)})
		} else {
			emit(EInstr{Op: EDivU, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		}
	case core.OpRem:
		if signed {
			emit(EInstr{Op: ERemS, Dst: dst, A: a, B: b, Imm: maskOf(bits), Aux: int32(64 - bits)})
		} else {
			emit(EInstr{Op: ERemU, Dst: dst, A: a, B: b, Imm: maskOf(bits)})
		}
	default:
		return fmt.Errorf("codegen: bad int op %s", op)
	}
	return nil
}

// lowerCast specializes the interpreter's castBits decision tree at
// lowering time. Only conversions involving floats stay generic.
func (lo *execLowerer) lowerCast(from, to core.Type, dst, a int32, emit func(EInstr)) {
	switch {
	case core.IsFloatingPoint(from) || core.IsFloatingPoint(to):
		ci := int32(len(lo.ef.Casts))
		lo.ef.Casts = append(lo.ef.Casts, ECastPair{From: from, To: to})
		emit(EInstr{Op: ECastGen, Dst: dst, A: a, Aux: ci})
	case from.Kind() == core.PointerKind || to.Kind() == core.PointerKind:
		// Pointer-integer conversions keep the bit pattern (truncated to
		// the integer width when the destination is an integer).
		if core.IsInteger(to) {
			emit(EInstr{Op: ECastTrunc, Dst: dst, A: a, Imm: maskOf(core.BitWidth(to))})
		} else {
			emit(EInstr{Op: EMov, Dst: dst, A: a})
		}
	case to.Kind() == core.BoolKind:
		emit(EInstr{Op: ECastBool, Dst: dst, A: a})
	default:
		// Integer-to-integer: EvalIntCast. Sign-extend from the source
		// width when the source is signed, then truncate to the target.
		fb, tb := core.BitWidth(from), core.BitWidth(to)
		if core.IsSigned(from) && fb < 64 {
			emit(EInstr{Op: ECastSext, Dst: dst, A: a, B: int32(64 - fb), Imm: maskOf(tb)})
		} else {
			m := fb
			if tb < m {
				m = tb
			}
			emit(EInstr{Op: ECastTrunc, Dst: dst, A: a, Imm: maskOf(m)})
		}
	}
}

func (lo *execLowerer) lowerCall(inst core.Instruction, dst int32, callee core.Value,
	args []core.Value, normal, unwind *core.BasicBlock, bi int32, emit func(EInstr)) error {

	cs := ECallSite{Callee: -1}
	for _, a := range args {
		r, err := lo.reg(a)
		if err != nil {
			return err
		}
		cs.Args = append(cs.Args, r)
	}
	if f, ok := callee.(*core.Function); ok {
		cs.Target = f
	} else {
		r, err := lo.reg(callee)
		if err != nil {
			return err
		}
		cs.Callee = r
	}
	ci := int32(len(lo.ef.Calls))
	if normal != nil {
		cs.Invoke = true
		lo.patches = append(lo.patches,
			epatch{kind: pCallNormal, idx: ci, from: bi, to: lo.blockIdx[normal]},
			epatch{kind: pCallUnwind, idx: ci, from: bi, to: lo.blockIdx[unwind]})
	}
	lo.ef.Calls = append(lo.ef.Calls, cs)
	emit(EInstr{Op: ECall, Dst: dst, Aux: ci})
	return nil
}

// emitEdges places the φ parallel-copy trampolines. Each CFG edge into a
// block with φs gets a copy sequence (sequentialized with the temp
// register, so simultaneous-assignment semantics are preserved) followed
// by a jump to the block start; branches along that edge are patched to
// enter through the trampoline.
func (lo *execLowerer) emitEdges() error {
	for bi, b := range lo.f.Blocks {
		phis := b.Phis()
		if len(phis) == 0 {
			continue
		}
		for _, pred := range b.Preds() {
			var dsts, srcs []int32
			for _, phi := range phis {
				v := phi.IncomingFor(pred)
				if v == nil {
					return fmt.Errorf("codegen: phi %%%s has no entry for predecessor %%%s", phi.Name(), pred.Name())
				}
				d, err := lo.reg(phi)
				if err != nil {
					return err
				}
				s, err := lo.reg(v)
				if err != nil {
					return err
				}
				dsts = append(dsts, d)
				srcs = append(srcs, s)
			}
			pc := int32(len(lo.ef.Code))
			n := 0
			seqCopies(dsts, srcs, lo.ef.TempReg, func(d, s int32) {
				lo.emit(EInstr{Op: EPhiMov, Dst: d, A: s}, nil, int32(bi))
				n++
			})
			if n == 0 {
				continue // every copy was a no-op: branch straight in
			}
			lo.emit(EInstr{Op: EJmp, Imm: int64(lo.blockStart[bi])}, nil, int32(bi))
			pi := lo.blockIdx[pred]
			lo.edgePC[uint64(pi)<<32|uint64(uint32(bi))] = pc
		}
	}
	return nil
}

// seqCopies sequentializes a parallel copy: emit dst<-src moves in an
// order where no source is clobbered before it is read, breaking cycles
// (swaps) through the temp register.
func seqCopies(dsts, srcs []int32, temp int32, emit func(d, s int32)) {
	type cp struct{ d, s int32 }
	var pending []cp
	for i := range dsts {
		if dsts[i] != srcs[i] {
			pending = append(pending, cp{dsts[i], srcs[i]})
		}
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			blocked := false
			for j := range pending {
				if j != i && pending[j].s == pending[i].d {
					blocked = true
					break
				}
			}
			if !blocked {
				emit(pending[i].d, pending[i].s)
				pending = append(pending[:i], pending[i+1:]...)
				i--
				progress = true
			}
		}
		if !progress {
			// Pure cycle: park one source in temp, redirect its readers.
			s := pending[0].s
			emit(temp, s)
			for j := range pending {
				if pending[j].s == s {
					pending[j].s = temp
				}
			}
		}
	}
}

// applyPatches resolves every recorded CFG target to a pc, routing edges
// with φ copies through their trampolines.
func (lo *execLowerer) applyPatches() {
	target := func(from, to int32) int32 {
		if pc, ok := lo.edgePC[uint64(from)<<32|uint64(uint32(to))]; ok {
			return pc
		}
		return lo.blockStart[to]
	}
	for _, p := range lo.patches {
		pc := target(p.from, p.to)
		switch p.kind {
		case pImm:
			lo.ef.Code[p.idx].Imm = int64(pc)
		case pAux:
			lo.ef.Code[p.idx].Aux = pc
		case pCallNormal:
			lo.ef.Calls[p.idx].Normal = pc
		case pCallUnwind:
			lo.ef.Calls[p.idx].Unwind = pc
		case pSwCase:
			lo.ef.Switches[p.idx].Pcs[p.n] = pc
		}
	}
}
