package codegen

import (
	"fmt"

	"repro/internal/core"
)

// lowerer translates one IR function to machine IR with virtual registers.
type lowerer struct {
	fn       *core.Function
	mf       *MFunction
	blockIdx map[*core.BasicBlock]int
	vregs    map[core.Value]VReg
	cur      *MBlock
	frameOff int
}

// LowerFunction produces the machine IR for f (virtual registers, no
// register allocation yet).
func LowerFunction(f *core.Function) *MFunction {
	lo := &lowerer{
		fn:       f,
		mf:       &MFunction{Name: f.Name()},
		blockIdx: map[*core.BasicBlock]int{},
		vregs:    map[core.Value]VReg{},
	}
	for i, b := range f.Blocks {
		lo.blockIdx[b] = i
		lo.mf.Blocks = append(lo.mf.Blocks, &MBlock{})
	}
	// Arguments arrive in registers/stack; materialize as vregs.
	lo.cur = lo.mf.Blocks[0]
	for i, a := range f.Args {
		r := lo.vregFor(a)
		lo.emit(MInstr{Op: MArgIn, Dst: r, Imm: int64(i)})
	}

	// Bodies (without terminators).
	for i, b := range f.Blocks {
		lo.cur = lo.mf.Blocks[i]
		for _, inst := range b.Instrs {
			if inst.IsTerminator() {
				continue
			}
			lo.lowerInst(inst)
		}
	}
	// Phi copies at the end of predecessors.
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			dst := lo.vregFor(phi)
			for n := 0; n < phi.NumIncoming(); n++ {
				v, pred := phi.Incoming(n)
				lo.cur = lo.mf.Blocks[lo.blockIdx[pred]]
				src := lo.useValue(v)
				lo.emit(MInstr{Op: MMov, Dst: dst, Src1: src, Float: core.IsFloatingPoint(phi.Type())})
			}
		}
	}
	// Terminators.
	for i, b := range f.Blocks {
		lo.cur = lo.mf.Blocks[i]
		lo.lowerTerminator(b.Terminator())
	}
	lo.mf.FrameSize = lo.frameOff
	return lo.mf
}

// MArgIn is declared here to keep the MOp list in mir.go focused; it moves
// the Imm'th incoming argument into Dst.
const MArgIn MOp = 100

func (lo *lowerer) emit(i MInstr) { lo.cur.Instrs = append(lo.cur.Instrs, i) }

func (lo *lowerer) newVReg() VReg {
	r := VReg(lo.mf.NumVRegs)
	lo.mf.NumVRegs++
	return r
}

func (lo *lowerer) vregFor(v core.Value) VReg {
	if r, ok := lo.vregs[v]; ok {
		return r
	}
	r := lo.newVReg()
	lo.vregs[v] = r
	return r
}

// useValue returns a vreg holding v, materializing constants.
func (lo *lowerer) useValue(v core.Value) VReg {
	switch c := v.(type) {
	case *core.ConstantInt:
		r := lo.newVReg()
		lo.emit(MInstr{Op: MImm, Dst: r, Imm: c.SExt()})
		return r
	case *core.ConstantBool:
		r := lo.newVReg()
		imm := int64(0)
		if c.Val {
			imm = 1
		}
		lo.emit(MInstr{Op: MImm, Dst: r, Imm: imm})
		return r
	case *core.ConstantFloat:
		r := lo.newVReg()
		lo.emit(MInstr{Op: MImm, Dst: r, Imm: int64(floatImmBits(c)), Float: true})
		return r
	case *core.ConstantNull, *core.ConstantUndef, *core.ConstantZero:
		r := lo.newVReg()
		lo.emit(MInstr{Op: MImm, Dst: r, Imm: 0})
		return r
	case *core.GlobalVariable:
		r := lo.newVReg()
		lo.emit(MInstr{Op: MLea, Dst: r, Sym: c.Name()})
		return r
	case *core.Function:
		r := lo.newVReg()
		lo.emit(MInstr{Op: MLea, Dst: r, Sym: c.Name()})
		return r
	case *core.ConstantExpr:
		return lo.lowerConstExpr(c)
	default:
		return lo.vregFor(v)
	}
}

func floatImmBits(c *core.ConstantFloat) uint64 {
	// Encoders only need the payload width; pass the IEEE bits.
	return uint64(int64(c.Val)) // representative bits; size driven by type
}

func (lo *lowerer) lowerConstExpr(c *core.ConstantExpr) VReg {
	switch c.Op {
	case core.OpCast:
		return lo.useValue(c.Operand(0))
	case core.OpGetElementPtr:
		base := lo.useValue(c.Operand(0))
		return lo.lowerGEPPath(base, c.Operand(0).Type(), c.Operands()[1:])
	}
	r := lo.newVReg()
	lo.emit(MInstr{Op: MImm, Dst: r, Imm: 0})
	return r
}

// lowerGEPPath emits address arithmetic for a GEP index path. The path
// folding itself (constant offsets, field offsets, scaled terms) lives in
// GEPPath, shared with the tier-2 execution lowering so every backend
// agrees on address arithmetic by construction; MIR lowering is
// best-effort and keeps whatever constant prefix a malformed path yields.
func (lo *lowerer) lowerGEPPath(base VReg, baseType core.Type, indices []core.Value) VReg {
	addr := base
	constOff, _ := GEPPath(baseType, indices, func(idx core.Value, scale int64) {
		iv := lo.useValue(idx)
		sc := lo.newVReg()
		lo.emit(MInstr{Op: MImm, Dst: sc, Imm: scale})
		prod := lo.newVReg()
		lo.emit(MInstr{Op: MALU, Dst: prod, Src1: iv, Src2: sc, ALU: AMul})
		next := lo.newVReg()
		lo.emit(MInstr{Op: MALU, Dst: next, Src1: addr, Src2: prod, ALU: AAdd})
		addr = next
	})
	if constOff != 0 {
		co := lo.newVReg()
		lo.emit(MInstr{Op: MImm, Dst: co, Imm: constOff})
		next := lo.newVReg()
		lo.emit(MInstr{Op: MALU, Dst: next, Src1: addr, Src2: co, ALU: AAdd})
		addr = next
	}
	return addr
}

var aluFor = map[core.Opcode]ALUOp{
	core.OpAdd: AAdd, core.OpSub: ASub, core.OpMul: AMul,
	core.OpDiv: ADiv, core.OpRem: ARem,
	core.OpAnd: AAnd, core.OpOr: AOr, core.OpXor: AXor,
	core.OpShl: AShl,
}

func condFor(op core.Opcode, signed bool) Cond {
	switch op {
	case core.OpSetEQ:
		return CEq
	case core.OpSetNE:
		return CNe
	case core.OpSetLT:
		if signed {
			return CLt
		}
		return CULt
	case core.OpSetGT:
		if signed {
			return CGt
		}
		return CUGt
	case core.OpSetLE:
		if signed {
			return CLe
		}
		return CULe
	default:
		if signed {
			return CGe
		}
		return CUGe
	}
}

func (lo *lowerer) lowerInst(inst core.Instruction) {
	switch i := inst.(type) {
	case *core.PhiInst:
		// Handled by the phi-copy phase; ensure the vreg exists.
		lo.vregFor(i)

	case *core.BinaryInst:
		t := i.LHS().Type()
		a, b := lo.useValue(i.LHS()), lo.useValue(i.RHS())
		dst := lo.vregFor(i)
		if core.IsComparisonOp(i.Opcode()) {
			lo.emit(MInstr{Op: MCmp, Dst: dst, Src1: a, Src2: b,
				Cond: condFor(i.Opcode(), core.IsSigned(t)), Float: core.IsFloatingPoint(t)})
			return
		}
		alu := aluFor[i.Opcode()]
		if i.Opcode() == core.OpShr {
			if core.IsSigned(t) {
				alu = AShrA
			} else {
				alu = AShrL
			}
		}
		lo.emit(MInstr{Op: MALU, Dst: dst, Src1: a, Src2: b, ALU: alu, Float: core.IsFloatingPoint(t)})

	case *core.MallocInst:
		size := lo.allocSizeVReg(i.AllocType, i.NumElems())
		lo.emit(MInstr{Op: MArg, Src1: size, Imm: 0})
		lo.emit(MInstr{Op: MCall, Dst: lo.vregFor(i), Sym: "malloc", Imm: 1})

	case *core.FreeInst:
		p := lo.useValue(i.Ptr())
		lo.emit(MInstr{Op: MArg, Src1: p, Imm: 0})
		lo.emit(MInstr{Op: MCall, Dst: NoReg, Sym: "free", Imm: 1})

	case *core.AllocaInst:
		if i.NumElems() == nil {
			// Static alloca: a fixed frame slot.
			sz := core.SizeOf(i.AllocType)
			lo.frameOff = align8(lo.frameOff) + align8(sz)
			lo.emit(MInstr{Op: MFrame, Dst: lo.vregFor(i), Imm: int64(-lo.frameOff)})
			return
		}
		size := lo.allocSizeVReg(i.AllocType, i.NumElems())
		lo.emit(MInstr{Op: MAllocaOp, Dst: lo.vregFor(i), Src1: size})

	case *core.LoadInst:
		p := lo.useValue(i.Ptr())
		lo.emit(MInstr{Op: MLoad, Dst: lo.vregFor(i), Src1: p,
			Size: core.SizeOf(i.Type()), Float: core.IsFloatingPoint(i.Type())})

	case *core.StoreInst:
		v := lo.useValue(i.Val())
		p := lo.useValue(i.Ptr())
		lo.emit(MInstr{Op: MStore, Src1: v, Src2: p,
			Size: core.SizeOf(i.Val().Type()), Float: core.IsFloatingPoint(i.Val().Type())})

	case *core.GetElementPtrInst:
		base := lo.useValue(i.Base())
		addr := lo.lowerGEPPath(base, i.Base().Type(), i.Indices())
		// Bind the GEP's vreg to the computed address via a move (keeps
		// one-def-per-vreg for the simple allocator).
		lo.emit(MInstr{Op: MMov, Dst: lo.vregFor(i), Src1: addr})

	case *core.CastInst:
		src := lo.useValue(i.Val())
		dst := lo.vregFor(i)
		// Same-size integer/pointer casts are free moves; width changes
		// and int<->float conversions are a conversion-flavored move the
		// encoders charge appropriately.
		lo.emit(MInstr{Op: MMov, Dst: dst, Src1: src,
			Float: core.IsFloatingPoint(i.Type()) != core.IsFloatingPoint(i.Val().Type()),
			Size:  core.SizeOf(i.Type())})

	case *core.CallInst:
		lo.lowerCall(i, i.Callee(), i.Args())

	case *core.VAArgInst:
		// va_arg loads through the list pointer and bumps it.
		p := lo.useValue(i.List())
		lo.emit(MInstr{Op: MLoad, Dst: lo.vregFor(i), Src1: p, Size: 8})

	default:
		panic(fmt.Sprintf("codegen: cannot lower %s", inst.Opcode()))
	}
}

func (lo *lowerer) allocSizeVReg(t core.Type, numElems core.Value) VReg {
	szReg := lo.newVReg()
	lo.emit(MInstr{Op: MImm, Dst: szReg, Imm: int64(core.SizeOf(t))})
	if numElems == nil {
		return szReg
	}
	n := lo.useValue(numElems)
	total := lo.newVReg()
	lo.emit(MInstr{Op: MALU, Dst: total, Src1: szReg, Src2: n, ALU: AMul})
	return total
}

func (lo *lowerer) lowerCall(result core.Instruction, callee core.Value, args []core.Value) {
	for k, a := range args {
		v := lo.useValue(a)
		lo.emit(MInstr{Op: MArg, Src1: v, Imm: int64(k)})
	}
	dst := NoReg
	if result.Type() != core.VoidType {
		dst = lo.vregFor(result)
	}
	if f, ok := callee.(*core.Function); ok {
		lo.emit(MInstr{Op: MCall, Dst: dst, Sym: f.Name(), Imm: int64(len(args))})
		return
	}
	c := lo.useValue(callee)
	lo.emit(MInstr{Op: MCallInd, Dst: dst, Src1: c, Imm: int64(len(args))})
}

func (lo *lowerer) lowerTerminator(inst core.Instruction) {
	switch i := inst.(type) {
	case *core.RetInst:
		if i.Value() == nil {
			lo.emit(MInstr{Op: MRet, Src1: NoReg})
		} else {
			v := lo.useValue(i.Value())
			lo.emit(MInstr{Op: MRet, Src1: v})
		}
	case *core.BranchInst:
		if !i.IsConditional() {
			lo.emit(MInstr{Op: MJmp, Target: lo.blockIdx[i.TrueDest()]})
			return
		}
		c := lo.useValue(i.Cond())
		lo.emit(MInstr{Op: MBr, Src1: c,
			Target: lo.blockIdx[i.TrueDest()], Target2: lo.blockIdx[i.FalseDest()]})
	case *core.SwitchInst:
		// Compare-and-branch chain.
		v := lo.useValue(i.Value())
		for n := 0; n < i.NumCases(); n++ {
			cv, dest := i.Case(n)
			cr := lo.newVReg()
			lo.emit(MInstr{Op: MImm, Dst: cr, Imm: cv.SExt()})
			fl := lo.newVReg()
			lo.emit(MInstr{Op: MCmp, Dst: fl, Src1: v, Src2: cr, Cond: CEq})
			// Branch-taken to the case, fall through to the next test.
			lo.emit(MInstr{Op: MBr, Src1: fl, Target: lo.blockIdx[dest], Target2: -1})
		}
		lo.emit(MInstr{Op: MJmp, Target: lo.blockIdx[i.Default()]})
	case *core.InvokeInst:
		lo.emit(MInstr{Op: MEHPush, Target: lo.blockIdx[i.UnwindDest()]})
		lo.lowerCall(i, i.Callee(), i.Args())
		lo.emit(MInstr{Op: MEHPop})
		lo.emit(MInstr{Op: MJmp, Target: lo.blockIdx[i.NormalDest()]})
	case *core.UnwindInst:
		lo.emit(MInstr{Op: MUnwind})
	default:
		panic(fmt.Sprintf("codegen: bad terminator %v", inst))
	}
}

func align8(n int) int { return (n + 7) &^ 7 }
