package codegen

import (
	"sort"

	"repro/internal/core"
)

// Image is a generated executable: header, symbol table, code, and data,
// mirroring what the paper measures as on-disk executable size (Figure 5).
type Image struct {
	Target    string
	Code      []byte
	Data      []byte
	FuncSizes map[string]int
	symBytes  int
}

// imageHeaderSize approximates the fixed object-format overhead.
const imageHeaderSize = 64

// Size returns the total image size in bytes.
func (im *Image) Size() int {
	return imageHeaderSize + im.symBytes + len(im.Code) + len(im.Data)
}

// Bytes returns a flattened byte image (header zeroes + code + data); the
// symbol table is accounted in Size but carried implicitly.
func (im *Image) Bytes() []byte {
	out := make([]byte, 0, im.Size())
	out = append(out, make([]byte, imageHeaderSize)...)
	out = append(out, im.Code...)
	out = append(out, im.Data...)
	return out
}

// CompileFunction lowers, register-allocates, and encodes one function.
func CompileFunction(f *core.Function, t Target) []byte {
	mf := LowerFunction(f)
	Allocate(mf, t.NumRegs())
	var out []byte
	out = append(out, t.Prologue(mf.FrameSize)...)
	for _, b := range mf.Blocks {
		for _, in := range b.Instrs {
			out = append(out, t.Encode(in)...)
		}
	}
	out = append(out, t.Epilogue()...)
	return out
}

// CompileModule produces a whole-program image for the target.
func CompileModule(m *core.Module, t Target) *Image {
	im := &Image{Target: t.Name(), FuncSizes: map[string]int{}}
	// Deterministic order.
	funcs := append([]*core.Function(nil), m.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name() < funcs[j].Name() })
	for _, f := range funcs {
		if f.IsDeclaration() {
			im.symBytes += len(f.Name()) + 13 // undefined-symbol entry
			continue
		}
		code := CompileFunction(f, t)
		im.FuncSizes[f.Name()] = len(code)
		im.Code = append(im.Code, code...)
		im.symBytes += len(f.Name()) + 13
	}
	for _, g := range m.Globals {
		im.symBytes += len(g.Name()) + 13
		if g.IsDeclaration() {
			continue
		}
		// Zero-initialized objects live in .bss and occupy no file bytes,
		// as in a real object format.
		if isAllZero(g.Init) {
			continue
		}
		size := core.SizeOf(g.ValueType)
		buf := make([]byte, size)
		fillConstant(buf, g.Init, g.ValueType)
		im.Data = append(im.Data, buf...)
	}
	return im
}

// isAllZero reports whether a constant is entirely zero bits.
func isAllZero(c core.Constant) bool {
	switch cc := c.(type) {
	case nil:
		return true
	case *core.ConstantZero, *core.ConstantUndef, *core.ConstantNull:
		return true
	case *core.ConstantInt:
		return cc.Val == 0
	case *core.ConstantFloat:
		return cc.Val == 0
	case *core.ConstantBool:
		return !cc.Val
	case *core.ConstantArray:
		for _, e := range cc.Elems {
			if !isAllZero(e) {
				return false
			}
		}
		return true
	case *core.ConstantStruct:
		for _, f := range cc.Fields {
			if !isAllZero(f) {
				return false
			}
		}
		return true
	}
	return false
}

// fillConstant serializes a constant into buf (best-effort; relocated
// pointers render as zero words, as in a real object file before fixups).
func fillConstant(buf []byte, c core.Constant, t core.Type) {
	if c == nil {
		return
	}
	switch cc := c.(type) {
	case *core.ConstantInt:
		putLE(buf, cc.Val, core.SizeOf(t))
	case *core.ConstantFloat:
		putLE(buf, uint64(int64(cc.Val)), core.SizeOf(t))
	case *core.ConstantBool:
		if cc.Val {
			buf[0] = 1
		}
	case *core.ConstantArray:
		at := t.(*core.ArrayType)
		esz := core.SizeOf(at.Elem)
		for i, e := range cc.Elems {
			fillConstant(buf[i*esz:], e, at.Elem)
		}
	case *core.ConstantStruct:
		st := t.(*core.StructType)
		for i, f := range cc.Fields {
			off := core.FieldOffset(st, i)
			fillConstant(buf[off:], f, st.Fields[i])
		}
	}
}

func putLE(buf []byte, v uint64, n int) {
	for i := 0; i < n && i < len(buf); i++ {
		buf[i] = byte(v >> (8 * uint(i)))
	}
}
