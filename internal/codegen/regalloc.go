package codegen

import "repro/internal/core"

// Local (per-block) register allocation with LRU eviction. Every virtual
// register owns an 8-byte frame slot assigned lazily; values live in
// physical registers inside a block and are flushed to their slots at block
// boundaries and around calls (a caller-saved world). Fewer physical
// registers therefore cost extra spill loads and stores — the mechanism
// that differentiates the 8-register CISC target from the 32-register RISC
// target in code size.

// Allocate rewrites mf in place, replacing virtual register numbers with
// physical ones (0..K-1) and inserting spill code. It updates FrameSize.
func Allocate(mf *MFunction, numRegs int) {
	a := &allocator{
		mf:    mf,
		k:     numRegs,
		slot:  map[VReg]int{},
		inReg: map[VReg]int{},
		uses:  map[VReg]int{},
	}
	// Use counts and block-locality: a dirty register holding a purely
	// block-local value (all uses in its defining block) with no remaining
	// uses never needs to be spilled. Values visible to other blocks must
	// always reach their slot (they may be re-read around the loop).
	defBlock := map[VReg]int{}
	local := map[VReg]bool{}
	for bi, b := range mf.Blocks {
		for _, in := range b.Instrs {
			if definesDst(in.Op) && in.Dst != NoReg {
				defBlock[in.Dst] = bi
				local[in.Dst] = true
			}
		}
	}
	for bi, b := range mf.Blocks {
		for _, in := range b.Instrs {
			note := func(v VReg) {
				a.uses[v]++
				if db, ok := defBlock[v]; !ok || db != bi {
					local[v] = false
				}
			}
			if usesSrc1(in.Op) && in.Src1 != NoReg && in.Src1 != framePtr {
				note(in.Src1)
			}
			if usesSrc2(in.Op) && in.Src2 != NoReg {
				note(in.Src2)
			}
		}
	}
	a.local = local
	for _, b := range mf.Blocks {
		a.runBlock(b)
	}
	mf.FrameSize = a.frameOff
}

type allocator struct {
	mf       *MFunction
	k        int
	frameOff int
	slot     map[VReg]int  // vreg -> frame offset (negative)
	uses     map[VReg]int  // remaining use count per vreg
	local    map[VReg]bool // all uses in the defining block

	// Per-block state.
	regVal  []VReg       // physical reg -> vreg (NoReg if free)
	inReg   map[VReg]int // vreg -> physical reg
	dirty   []bool
	lastUse []int64
	clock   int64
	out     []MInstr
}

func (a *allocator) slotOf(v VReg) int {
	if off, ok := a.slot[v]; ok {
		return off
	}
	a.frameOff = align8(a.frameOff) + 8
	// Spill slots sit below the fixed frame allocated during lowering.
	off := -(a.mf.FrameSize + a.frameOff)
	a.slot[v] = off
	return off
}

func (a *allocator) resetBlock() {
	a.regVal = make([]VReg, a.k)
	for i := range a.regVal {
		a.regVal[i] = NoReg
	}
	a.dirty = make([]bool, a.k)
	a.lastUse = make([]int64, a.k)
	a.inReg = map[VReg]int{}
	a.out = nil
}

// touch refreshes the LRU stamp.
func (a *allocator) touch(phys int) {
	a.clock++
	a.lastUse[phys] = a.clock
}

// evict frees one physical register, spilling if dirty.
func (a *allocator) evict(except map[int]bool) int {
	best, bestT := -1, int64(1<<62)
	for p := 0; p < a.k; p++ {
		if except[p] {
			continue
		}
		if a.regVal[p] == NoReg {
			return p
		}
		if a.lastUse[p] < bestT {
			best, bestT = p, a.lastUse[p]
		}
	}
	a.spill(best)
	return best
}

func (a *allocator) spill(p int) {
	v := a.regVal[p]
	if v != NoReg {
		if a.dirty[p] && (a.uses[v] > 0 || !a.local[v]) {
			a.out = append(a.out, MInstr{Op: MStore, Src1: VReg(p), Src2: framePtr, Imm: int64(a.slotOf(v)), Size: 8})
		}
		delete(a.inReg, v)
		a.regVal[p] = NoReg
		a.dirty[p] = false
	}
}

// framePtr is a pseudo register operand meaning "the frame pointer"; the
// encoders special-case it.
const framePtr VReg = -2

// use brings a vreg into a physical register (loading from its slot if it
// is not resident) and returns the physical number.
func (a *allocator) use(v VReg, except map[int]bool) int {
	if p, ok := a.inReg[v]; ok {
		a.touch(p)
		return p
	}
	p := a.evict(except)
	a.out = append(a.out, MInstr{Op: MLoad, Dst: VReg(p), Src1: framePtr, Imm: int64(a.slotOf(v)), Size: 8})
	a.regVal[p] = v
	a.inReg[v] = p
	a.dirty[p] = false
	a.touch(p)
	return p
}

// def allocates a physical register for a fresh definition.
func (a *allocator) def(v VReg, except map[int]bool) int {
	if p, ok := a.inReg[v]; ok {
		a.dirty[p] = true
		a.touch(p)
		return p
	}
	p := a.evict(except)
	a.regVal[p] = v
	a.inReg[v] = p
	a.dirty[p] = true
	a.touch(p)
	return p
}

// flushAll spills every dirty register (block boundaries, calls).
func (a *allocator) flushAll() {
	for p := 0; p < a.k; p++ {
		a.spill(p)
	}
}

func isTerminatorM(op MOp) bool {
	switch op {
	case MJmp, MBr, MRet, MUnwind:
		return true
	}
	return false
}

func (a *allocator) runBlock(b *MBlock) {
	a.resetBlock()
	for _, in := range b.Instrs {
		except := map[int]bool{}
		ni := in

		// Sources first.
		if in.Src1 != NoReg && in.Src1 != framePtr && usesSrc1(in.Op) {
			p := a.use(in.Src1, except)
			except[p] = true
			ni.Src1 = VReg(p)
			a.uses[in.Src1]--
		}
		if in.Src2 != NoReg && usesSrc2(in.Op) {
			p := a.use(in.Src2, except)
			except[p] = true
			ni.Src2 = VReg(p)
			a.uses[in.Src2]--
		}

		// Calls clobber everything: flush before, so live values survive
		// in their slots; the result is defined after.
		if in.Op == MCall || in.Op == MCallInd {
			a.flushAll()
			// Re-pin the indirect callee (flushed above): reload.
			if in.Op == MCallInd {
				p := a.use(in.Src1, map[int]bool{})
				ni.Src1 = VReg(p)
			}
		}

		// Terminators end the block: flush dirty registers first so other
		// blocks can reload from slots.
		if isTerminatorM(in.Op) {
			// Keep the branch condition / return value register pinned.
			keep := -1
			if ni.Src1 != NoReg && usesSrc1(in.Op) {
				keep = int(ni.Src1)
			}
			for p := 0; p < a.k; p++ {
				if p != keep {
					a.spill(p)
				}
			}
			a.out = append(a.out, ni)
			continue
		}

		// Destination.
		if in.Dst != NoReg && definesDst(in.Op) {
			p := a.def(in.Dst, except)
			ni.Dst = VReg(p)
		}
		a.out = append(a.out, ni)
	}
	// Blocks that end without an explicit terminator (cannot happen for
	// verified IR) would still flush here.
	b.Instrs = a.out
}

// --- Dense register assignment for the tier-2 execution engine ---
//
// assignExecRegs maps a function's SSA values onto a dense word frame for
// the flat tier-2 form (execlower.go), applying the same block-locality
// discipline Allocate uses above: a value whose uses all sit after its
// definition in the defining block is "local" and can share a scratch
// register that is recycled at its last use; everything visible across
// blocks (including every φ, whose writes happen on predecessor edges,
// and every φ-incoming, which is read on an edge after the source block's
// scratch pool has been recycled) gets a dedicated register. The layout
// is [args | dedicated | scratch] with the scratch high-water mark shared
// across blocks.

type execFrame struct {
	reg     map[core.Value]int32
	numArgs int32
	numVals int32 // args + dedicated + scratch watermark
}

func assignExecRegs(f *core.Function) *execFrame {
	fr := &execFrame{reg: map[core.Value]int32{}}
	next := int32(0)
	for _, a := range f.Args {
		fr.reg[a] = next
		next++
	}
	fr.numArgs = next

	// Classify each value-producing instruction. Demote to non-local on:
	// φ (edge-written), φ-incoming (edge-read), any use in another block,
	// or a use at/before the definition point (unverified SSA must read
	// a zeroed dedicated register, like the interpreter's absent-entry 0).
	defBlock := map[core.Value]int{}
	defPos := map[core.Value]int{}
	local := map[core.Value]bool{}
	lastUse := map[core.Value]int{}
	for bi, b := range f.Blocks {
		for ii, inst := range b.Instrs {
			if inst.Type() == core.VoidType {
				continue
			}
			defBlock[inst] = bi
			defPos[inst] = ii
			_, isPhi := inst.(*core.PhiInst)
			local[inst] = !isPhi
		}
	}
	for bi, b := range f.Blocks {
		for ii, inst := range b.Instrs {
			if phi, ok := inst.(*core.PhiInst); ok {
				for n := 0; n < phi.NumIncoming(); n++ {
					v, _ := phi.Incoming(n)
					if _, def := defBlock[v]; def {
						local[v] = false
					}
				}
				continue
			}
			for _, op := range inst.Operands() {
				if _, isBlock := op.(*core.BasicBlock); isBlock {
					continue
				}
				if _, def := defBlock[op]; !def {
					continue // arguments and constants
				}
				if defBlock[op] != bi || ii <= defPos[op] {
					local[op] = false
				} else if ii > lastUse[op] {
					lastUse[op] = ii
				}
			}
		}
	}

	// Dedicated registers for cross-block values, in layout order.
	for _, b := range f.Blocks {
		for _, inst := range b.Instrs {
			if inst.Type() == core.VoidType {
				continue
			}
			if !local[inst] {
				fr.reg[inst] = next
				next++
			}
		}
	}

	// Scratch pool: per block, recycle a local's register at its last use
	// (safe because every executor op reads its operands before writing
	// its destination). LIFO free list keeps the assignment deterministic.
	scratchBase := next
	high := scratchBase
	for _, b := range f.Blocks {
		var free []int32
		nextScratch := scratchBase
		released := map[core.Value]bool{}
		for ii, inst := range b.Instrs {
			if _, isPhi := inst.(*core.PhiInst); isPhi {
				continue
			}
			for _, op := range inst.Operands() {
				if local[op] && lastUse[op] == ii && !released[op] {
					released[op] = true
					free = append(free, fr.reg[op])
				}
			}
			if inst.Type() != core.VoidType && local[inst] {
				var r int32
				if n := len(free); n > 0 {
					r = free[n-1]
					free = free[:n-1]
				} else {
					r = nextScratch
					nextScratch++
				}
				fr.reg[inst] = r
			}
		}
		if nextScratch > high {
			high = nextScratch
		}
	}
	fr.numVals = high
	return fr
}

func usesSrc1(op MOp) bool {
	switch op {
	case MMov, MALU, MCmp, MLoad, MStore, MArg, MCallInd, MRet, MBr, MAllocaOp:
		return true
	}
	return false
}

func usesSrc2(op MOp) bool {
	switch op {
	case MALU, MCmp, MStore:
		return true
	}
	return false
}

func definesDst(op MOp) bool {
	switch op {
	case MImm, MMov, MALU, MCmp, MLoad, MLea, MFrame, MCall, MCallInd, MAllocaOp, MArgIn:
		return true
	}
	return false
}
