package codegen

// The two binary encoders. Byte patterns are synthetic but the *lengths*
// follow the real machines' encoding rules, which is what the Figure 5
// size comparison exercises:
//
//   CISC-86 — variable-length: 1-byte stack ops, 2-byte reg-reg ALU,
//   1/4-byte immediates and displacements chosen by value, 2/5-byte
//   branches, memory operands. 8 allocatable registers.
//
//   RISC-V9 — every instruction is exactly 4 bytes; immediates beyond 13
//   bits need a sethi+or pair, 64-bit constants up to 6 instructions;
//   branches and calls carry a delay slot. 32 allocatable registers.

// Cisc86 is the x86-flavoured target.
type Cisc86 struct{}

// Name returns "CISC-86".
func (Cisc86) Name() string { return "CISC-86" }

// NumRegs returns 8.
func (Cisc86) NumRegs() int { return 8 }

func fitsInt8(v int64) bool  { return v >= -128 && v <= 127 }
func fitsInt32(v int64) bool { return v >= -(1<<31) && v < 1<<31 }

// emitBytes fabricates n bytes with an identifying opcode byte.
func emitBytes(op byte, n int) []byte {
	b := make([]byte, n)
	b[0] = op
	for i := 1; i < n; i++ {
		b[i] = byte(i * 37)
	}
	return b
}

// Encode implements Target.
func (Cisc86) Encode(i MInstr) []byte {
	switch i.Op {
	case MNop:
		return emitBytes(0x90, 1)
	case MImm:
		switch {
		case i.Imm == 0:
			return emitBytes(0x31, 2) // xor r,r
		case fitsInt8(i.Imm):
			return emitBytes(0x6A, 3)
		case fitsInt32(i.Imm):
			return emitBytes(0xB8, 5)
		default:
			return emitBytes(0x48, 10) // movabs
		}
	case MMov:
		if i.Float {
			return emitBytes(0xF2, 4) // cvt/movsd
		}
		return emitBytes(0x89, 2)
	case MALU:
		switch {
		case i.Float:
			return emitBytes(0xF3, 4) // SSE op
		case i.ALU == ADiv || i.ALU == ARem:
			return emitBytes(0xF7, 3) // cdq+idiv flavour
		case i.ALU == AMul:
			return emitBytes(0x0F, 3) // imul r,r
		default:
			return emitBytes(0x01, 2)
		}
	case MCmp:
		if i.Float {
			return emitBytes(0x2E, 4+3) // ucomisd + setcc
		}
		return emitBytes(0x39, 2+3) // cmp r,r + setcc
	case MLoad:
		if disp := i.Imm; disp == 0 {
			return emitBytes(0x8B, 2)
		} else if fitsInt8(disp) {
			return emitBytes(0x8B, 3)
		}
		return emitBytes(0x8B, 6)
	case MStore:
		if disp := i.Imm; disp == 0 {
			return emitBytes(0x88, 2)
		} else if fitsInt8(disp) {
			return emitBytes(0x88, 3)
		}
		return emitBytes(0x88, 6)
	case MLea:
		return emitBytes(0x8D, 5) // lea r, [sym]
	case MFrame:
		if fitsInt8(i.Imm) {
			return emitBytes(0x8D, 3) // lea r, [bp+disp8]
		}
		return emitBytes(0x8D, 6)
	case MArg:
		return emitBytes(0x50, 1) // push r
	case MArgIn:
		if fitsInt8(8 * (i.Imm + 2)) {
			return emitBytes(0x8B, 3) // mov r, [bp+disp8]
		}
		return emitBytes(0x8B, 6)
	case MCall:
		return emitBytes(0xE8, 5) // call rel32
	case MCallInd:
		return emitBytes(0xFF, 2)
	case MRet:
		return emitBytes(0xC3, 1)
	case MJmp:
		return emitBytes(0xEB, 2) // rel8 (small functions dominate)
	case MBr:
		if i.Target2 < 0 {
			return emitBytes(0x74, 3) // test+jcc fallthrough form
		}
		return emitBytes(0x74, 3+2) // test+jcc, jmp
	case MEHPush:
		return emitBytes(0x68, 5+1) // push handler, push
	case MEHPop:
		return emitBytes(0x58, 2)
	case MUnwind:
		return emitBytes(0xE8, 5) // call __unwind
	case MAllocaOp:
		return emitBytes(0x29, 2+2) // sub sp, r; mov r, sp
	}
	return emitBytes(0x90, 1)
}

// Prologue implements Target (push bp; mov bp,sp; sub sp,frame).
func (Cisc86) Prologue(frameSize int) []byte {
	if frameSize == 0 {
		return emitBytes(0x55, 1+2)
	}
	if fitsInt8(int64(frameSize)) {
		return emitBytes(0x55, 1+2+3)
	}
	return emitBytes(0x55, 1+2+6)
}

// Epilogue implements Target (leave; ret).
func (Cisc86) Epilogue() []byte { return emitBytes(0xC9, 2) }

// RiscV9 is the SPARC-flavoured target.
type RiscV9 struct{}

// Name returns "RISC-V9".
func (RiscV9) Name() string { return "RISC-V9" }

// NumRegs returns 32.
func (RiscV9) NumRegs() int { return 32 }

const riscWord = 4

// words emits n 4-byte instructions.
func words(op byte, n int) []byte {
	b := make([]byte, n*riscWord)
	for i := 0; i < n; i++ {
		b[i*riscWord] = op
		b[i*riscWord+1] = byte(i)
	}
	return b
}

func fits13(v int64) bool { return v >= -4096 && v <= 4095 }

// immWords counts the instructions to materialize an integer constant:
// 1 (13-bit), 2 (sethi+or, 32-bit), or 6 (full 64-bit pattern).
func immWords(v int64) int {
	switch {
	case fits13(v):
		return 1
	case fitsInt32(v):
		return 2
	default:
		return 6
	}
}

// Encode implements Target.
func (RiscV9) Encode(i MInstr) []byte {
	switch i.Op {
	case MNop:
		return words(0x01, 1)
	case MImm:
		return words(0x10, immWords(i.Imm))
	case MMov:
		return words(0x11, 1)
	case MALU:
		if i.ALU == ADiv || i.ALU == ARem {
			return words(0x12, 2) // wr %y + div
		}
		return words(0x12, 1)
	case MCmp:
		return words(0x13, 2) // subcc + conditional move
	case MLoad:
		if fits13(i.Imm) {
			return words(0x14, 1)
		}
		return words(0x14, 3) // sethi+or+ld
	case MStore:
		if fits13(i.Imm) {
			return words(0x15, 1)
		}
		return words(0x15, 3)
	case MLea:
		return words(0x16, 2) // sethi+or
	case MFrame:
		if fits13(i.Imm) {
			return words(0x17, 1)
		}
		return words(0x17, 3)
	case MArg:
		return words(0x18, 1) // mov to %oN
	case MArgIn:
		return words(0x19, 1) // mov from %iN
	case MCall:
		return words(0x1A, 2) // call + delay slot
	case MCallInd:
		return words(0x1B, 2) // jmpl + delay slot
	case MRet:
		return words(0x1C, 2) // ret + restore
	case MJmp:
		return words(0x1D, 2) // ba + delay slot
	case MBr:
		if i.Target2 < 0 {
			return words(0x1E, 2)
		}
		return words(0x1E, 3) // bcc + delay, ba
	case MEHPush:
		return words(0x1F, 3)
	case MEHPop:
		return words(0x20, 1)
	case MUnwind:
		return words(0x21, 2)
	case MAllocaOp:
		return words(0x22, 2)
	}
	return words(0x01, 1)
}

// Prologue implements Target ("save %sp, -frame, %sp", possibly with a
// sethi pair for large frames).
func (RiscV9) Prologue(frameSize int) []byte {
	if fits13(int64(frameSize)) {
		return words(0x30, 1)
	}
	return words(0x30, 3)
}

// Epilogue implements Target (folded into ret+restore; nothing extra).
func (RiscV9) Epilogue() []byte { return nil }
