// Package codegen translates IR modules to native code images for two
// synthetic targets that stand in for the paper's X86 and SPARC back-ends
// (Figure 5): CISC-86, a variable-length two-address machine with 8
// registers and memory operands, and RISC-V9, a fixed 32-bit-word
// load/store machine with 32 registers whose large constants take
// multi-instruction sequences. Lowering, phi elimination, and local
// register allocation are shared; only the binary encoders differ, so size
// comparisons reflect the instruction-set mechanics the paper measures.
package codegen

import "fmt"

// VReg is a virtual register number (assigned during lowering); after
// register allocation operands carry physical register numbers.
type VReg int

// NoReg marks an absent operand.
const NoReg VReg = -1

// MOp enumerates machine-IR operations.
type MOp int

// Machine-IR opcodes.
const (
	MNop      MOp = iota
	MImm          // dst <- Imm
	MMov          // dst <- src1
	MALU          // dst <- src1 op src2 (ALUOp; float if Float)
	MCmp          // dst <- (src1 cond src2) ? 1 : 0
	MLoad         // dst <- [src1 + Imm] (Size bytes)
	MStore        // [src2 + Imm] <- src1 (Size bytes)
	MLea          // dst <- address of Sym
	MFrame        // dst <- frame pointer + Imm (spill slots, allocas)
	MArg          // pass src1 as argument #Imm
	MCall         // direct call Sym; dst <- result (if any)
	MCallInd      // indirect call through src1
	MRet          // return src1 (or nothing if src1 == NoReg)
	MJmp          // jump Target
	MBr           // branch on src1: true -> Target, false -> Target2
	MEHPush       // install unwind handler Target (invoke prologue)
	MEHPop        // remove unwind handler (normal path of invoke)
	MUnwind       // unwind the stack
	MAllocaOp     // dst <- allocate src1 bytes in frame (dynamic)
)

// ALUOp distinguishes MALU operations.
type ALUOp int

// ALU operations (shift right has separate arithmetic/logical forms).
const (
	AAdd ALUOp = iota
	ASub
	AMul
	ADiv
	ARem
	AAnd
	AOr
	AXor
	AShl
	AShrA // arithmetic
	AShrL // logical
)

// Cond is a comparison condition.
type Cond int

// Comparison conditions; unsigned forms are separate so encoders can pick
// the correct condition codes.
const (
	CEq Cond = iota
	CNe
	CLt
	CGt
	CLe
	CGe
	CULt
	CUGt
	CULe
	CUGe
)

// MInstr is one machine instruction (before or after register allocation).
type MInstr struct {
	Op      MOp
	Dst     VReg
	Src1    VReg
	Src2    VReg
	Imm     int64
	Size    int // memory access size in bytes
	Float   bool
	ALU     ALUOp
	Cond    Cond
	Sym     string
	Target  int // block index
	Target2 int
}

func (i MInstr) String() string {
	return fmt.Sprintf("{%d dst=%d s1=%d s2=%d imm=%d sym=%q t=%d}", i.Op, i.Dst, i.Src1, i.Src2, i.Imm, i.Sym, i.Target)
}

// MBlock is a machine basic block.
type MBlock struct {
	Instrs []MInstr
}

// MFunction is a lowered function.
type MFunction struct {
	Name      string
	Blocks    []*MBlock
	NumVRegs  int
	FrameSize int // bytes of fixed frame (allocas + spill slots)
}

// Target is a binary encoder for one machine.
type Target interface {
	Name() string
	// NumRegs is the number of allocatable registers.
	NumRegs() int
	// Encode returns the instruction's machine-code bytes. Operands hold
	// physical register numbers after allocation.
	Encode(i MInstr) []byte
	// Prologue and Epilogue bytes for a function with the given frame size.
	Prologue(frameSize int) []byte
	Epilogue() []byte
}
