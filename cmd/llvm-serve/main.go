// llvm-serve is the lifelong compilation daemon (§3.6): a long-running
// service over a persistent content-addressed module store. Clients POST
// modules (assembly or bytecode) to /compile, /run, and /check; compiled
// artifacts are cached by (module hash, pipeline, profile epoch),
// profiles accumulate in the store across runs, and an idle-time
// reoptimizer rebuilds the hottest modules with profile-guided
// optimization whenever the request queue goes quiet.
//
// Usage: llvm-serve -store DIR [-addr :8191] [flags]
//
// With -reopt-now the daemon instead drains the reoptimization queue
// once (building current-epoch artifacts for every profiled module) and
// exits — the offline half of the lifelong loop, for cron-style use.
//
// Every reoptimized artifact is proved against its pre-reopt module by the
// translation-validation oracle (DESIGN.md §11) before it is stored. A
// confirmed miscompile is quarantined: the poisoned bytes are kept on disk
// for debugging but never indexed or served, and the daemon falls back to
// the module's epoch-0 artifact (marked stale) — a slower program beats a
// wrong one. -no-validate disables the oracle and the quarantine with it.
//
// Observability (DESIGN.md §10): /metrics serves the daemon's registry in
// Prometheus text format (request, store, interpreter, pass, and reopt
// series); every response carries an X-Trace-Id header, and -access-log
// FILE appends one JSON line per request keyed by that id. -trace-out FILE
// writes a Chrome trace-event JSON timeline (request spans, per-pass
// compile spans, store cache events) on shutdown.
//
// Cluster mode (DESIGN.md §14): -peers lists the full membership and -self
// names this node's own address in it; module hashes shard across the
// peers on a consistent-hash ring, artifact misses fetch through from the
// owning peer, and /run profile counts forward to the owner. -front turns
// the process into a stateless router instead: it hashes each POSTed
// module and forwards the request to the owning peer, retrying down the
// ring on failure.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/interp"
	"repro/internal/lifelong"
	"repro/internal/obs"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-serve")
	addr := flag.String("addr", ":8191", "listen address")
	storeDir := flag.String("store", "", "persistent store directory (required)")
	maxStore := flag.Int64("max-store-bytes", 0, "store size cap in bytes (0 = default, negative = unlimited)")
	workers := flag.Int("workers", 0, "max concurrently-served requests (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget")
	pipeline := flag.String("pipeline", "std", "default /compile pipeline spec")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "/run instruction budget")
	maxHeap := flag.Int64("max-heap", interp.DefaultMaxHeapBytes, "/run heap budget in bytes")
	idleDelay := flag.Duration("idle-delay", time.Second, "quiet period before idle reoptimization kicks in")
	noReopt := flag.Bool("no-reopt", false, "disable the idle-time reoptimizer")
	noValidate := flag.Bool("no-validate", false, "skip translation validation of reoptimized artifacts (disables quarantine)")
	reoptNow := flag.Bool("reopt-now", false, "drain the reoptimization queue and exit instead of serving")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline to FILE on shutdown")
	accessLog := flag.String("access-log", "", "append one JSON access-log line per request to FILE")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	procName := flag.String("proc-name", "", "process name for trace export (cluster traces merge by process; default: role + address)")
	peersFlag := flag.String("peers", "", "comma-separated cluster membership (host:port,...); enables cluster mode")
	selfAddr := flag.String("self", "", "this node's own address in -peers (cluster node mode)")
	front := flag.Bool("front", false, "run as a stateless cluster front-end over -peers (no store)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per peer on the hash ring (0 = default)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer health-probe period in cluster mode")
	flag.Parse()
	if *front {
		if *peersFlag == "" || flag.NArg() != 0 {
			tooling.Fatalf("usage: %s", cluster.FrontUsage)
		}
		runFront(frontOptions{
			addr:      *addr,
			peers:     splitPeers(*peersFlag),
			vnodes:    *vnodes,
			probe:     *probeInterval,
			timeout:   *timeout,
			traceOut:  *traceOut,
			accessLog: *accessLog,
			pprof:     *pprofFlag,
			procName:  *procName,
		})
		return
	}
	if *storeDir == "" || flag.NArg() != 0 {
		tooling.Fatalf("usage: llvm-serve -store DIR [flags]")
	}
	if (*peersFlag == "") != (*selfAddr == "") {
		tooling.Fatalf("llvm-serve: cluster node mode needs both -peers and -self")
	}

	st, err := lifelong.Open(*storeDir, *maxStore)
	if err != nil {
		tooling.Fatalf("llvm-serve: %v", err)
	}
	cfg := lifelong.Config{
		Store:           st,
		Workers:         *workers,
		RequestTimeout:  *timeout,
		DefaultPipeline: *pipeline,
		MaxSteps:        *maxSteps,
		MaxHeapBytes:    *maxHeap,
		IdleDelay:       *idleDelay,
		DisableReopt:    *noReopt || *reoptNow,
		DisableValidate: *noValidate,
		EnablePprof:     *pprofFlag,
	}
	if *traceOut != "" {
		cfg.Tracer = obs.NewTracer()
		name := *procName
		if name == "" {
			name = "node " + *addr
			if *selfAddr != "" {
				name = "node " + *selfAddr
			}
		}
		cfg.Tracer.SetProcess(1, name)
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			tooling.Fatalf("llvm-serve: %v", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	var (
		srv     *lifelong.Server
		handler http.Handler
		role    = "standalone"
	)
	if *peersFlag != "" {
		node, err := cluster.NewNode(cluster.Config{
			Self:          *selfAddr,
			Peers:         splitPeers(*peersFlag),
			VNodes:        *vnodes,
			ProbeInterval: *probeInterval,
			Lifelong:      cfg,
		})
		if err != nil {
			tooling.Fatalf("llvm-serve: %v", err)
		}
		defer node.Close()
		srv = node.Server()
		handler = node.Handler()
		role = fmt.Sprintf("cluster node %s of %d", node.Self(), len(node.Ring().Peers()))
	} else {
		srv = lifelong.NewServer(cfg)
		defer srv.Close()
		handler = srv.Handler()
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "llvm-serve: %v\n", err)
				return
			}
			defer f.Close()
			if err := cfg.Tracer.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "llvm-serve: writing %s: %v\n", *traceOut, err)
			}
		}()
	}

	if *reoptNow {
		built, err := srv.ReoptimizeAll()
		if err != nil {
			tooling.Fatalf("llvm-serve: reoptimize: %v", err)
		}
		fmt.Printf("llvm-serve: reoptimized %d module(s) in %s\n", built, *storeDir)
		return
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "llvm-serve: listening on %s (store %s, %s)\n", *addr, *storeDir, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		tooling.Fatalf("llvm-serve: %v", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "llvm-serve: %v, shutting down\n", s)
		hs.Close()
	}
}

// splitPeers parses the -peers flag into a peer list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// frontOptions gathers runFront's flag values.
type frontOptions struct {
	addr      string
	peers     []string
	vnodes    int
	probe     time.Duration
	timeout   time.Duration
	traceOut  string
	accessLog string
	pprof     bool
	procName  string
}

// runFront serves the stateless cluster front-end until interrupted. The
// front gets the same observability surface as a node: -trace-out spans
// (it is the edge where trace IDs are minted), -access-log lines, the
// /debug flight recorder, and -pprof.
func runFront(o frontOptions) {
	fcfg := cluster.FrontConfig{
		Peers:         o.peers,
		VNodes:        o.vnodes,
		ProbeInterval: o.probe,
		PeerTimeout:   o.timeout,
		EnablePprof:   o.pprof,
	}
	if o.traceOut != "" {
		fcfg.Tracer = obs.NewTracer()
		name := o.procName
		if name == "" {
			name = "front " + o.addr
		}
		fcfg.Tracer.SetProcess(1, name)
	}
	if o.accessLog != "" {
		lf, err := os.OpenFile(o.accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			tooling.Fatalf("llvm-serve: %v", err)
		}
		defer lf.Close()
		fcfg.AccessLog = lf
	}
	f, err := cluster.NewFront(fcfg)
	if err != nil {
		tooling.Fatalf("llvm-serve: %v", err)
	}
	defer f.Close()
	if o.traceOut != "" {
		defer func() {
			tf, err := os.Create(o.traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "llvm-serve: %v\n", err)
				return
			}
			defer tf.Close()
			if err := fcfg.Tracer.WriteJSON(tf); err != nil {
				fmt.Fprintf(os.Stderr, "llvm-serve: writing %s: %v\n", o.traceOut, err)
			}
		}()
	}
	hs := &http.Server{Addr: o.addr, Handler: f.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "llvm-serve: front-end listening on %s, routing over %d peer(s)\n", o.addr, len(o.peers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		tooling.Fatalf("llvm-serve: %v", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "llvm-serve: %v, shutting down\n", s)
		hs.Close()
	}
}
