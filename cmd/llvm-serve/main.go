// llvm-serve is the lifelong compilation daemon (§3.6): a long-running
// service over a persistent content-addressed module store. Clients POST
// modules (assembly or bytecode) to /compile, /run, and /check; compiled
// artifacts are cached by (module hash, pipeline, profile epoch),
// profiles accumulate in the store across runs, and an idle-time
// reoptimizer rebuilds the hottest modules with profile-guided
// optimization whenever the request queue goes quiet.
//
// Usage: llvm-serve -store DIR [-addr :8191] [flags]
//
// With -reopt-now the daemon instead drains the reoptimization queue
// once (building current-epoch artifacts for every profiled module) and
// exits — the offline half of the lifelong loop, for cron-style use.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/interp"
	"repro/internal/lifelong"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-serve")
	addr := flag.String("addr", ":8191", "listen address")
	storeDir := flag.String("store", "", "persistent store directory (required)")
	maxStore := flag.Int64("max-store-bytes", 0, "store size cap in bytes (0 = default, negative = unlimited)")
	workers := flag.Int("workers", 0, "max concurrently-served requests (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget")
	pipeline := flag.String("pipeline", "std", "default /compile pipeline spec")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "/run instruction budget")
	maxHeap := flag.Int64("max-heap", interp.DefaultMaxHeapBytes, "/run heap budget in bytes")
	idleDelay := flag.Duration("idle-delay", time.Second, "quiet period before idle reoptimization kicks in")
	noReopt := flag.Bool("no-reopt", false, "disable the idle-time reoptimizer")
	reoptNow := flag.Bool("reopt-now", false, "drain the reoptimization queue and exit instead of serving")
	flag.Parse()
	if *storeDir == "" || flag.NArg() != 0 {
		tooling.Fatalf("usage: llvm-serve -store DIR [flags]")
	}

	st, err := lifelong.Open(*storeDir, *maxStore)
	if err != nil {
		tooling.Fatalf("llvm-serve: %v", err)
	}
	srv := lifelong.NewServer(lifelong.Config{
		Store:           st,
		Workers:         *workers,
		RequestTimeout:  *timeout,
		DefaultPipeline: *pipeline,
		MaxSteps:        *maxSteps,
		MaxHeapBytes:    *maxHeap,
		IdleDelay:       *idleDelay,
		DisableReopt:    *noReopt || *reoptNow,
	})
	defer srv.Close()

	if *reoptNow {
		built, err := srv.ReoptimizeAll()
		if err != nil {
			tooling.Fatalf("llvm-serve: reoptimize: %v", err)
		}
		fmt.Printf("llvm-serve: reoptimized %d module(s) in %s\n", built, *storeDir)
		return
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "llvm-serve: listening on %s (store %s)\n", *addr, *storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		tooling.Fatalf("llvm-serve: %v", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "llvm-serve: %v, shutting down\n", s)
		hs.Close()
	}
}
