// llvm-bench regenerates the paper's evaluation over the synthetic SPEC
// CPU2000 analogues: Table 1 (provably-typed memory accesses), Table 2
// (interprocedural optimization timings vs a baseline compile), and
// Figure 5 (executable sizes: LLVM bytecode vs CISC vs RISC images).
//
// Usage: llvm-bench [-table1] [-table2] [-fig5] [-checker] [-v] [-json path]
// (no table flags = all). -checker runs the static memory-safety checker
// over each optimized benchmark; since the synthetic programs are
// well-formed, any error it reports is a checker false positive. -json additionally writes the selected tables as
// machine-readable JSON (see experiments.Report), the format the repo's
// BENCH_*.json trajectory files use.
package main

import (
	"flag"
	"os"

	"repro/internal/experiments"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-bench")
	t1 := flag.Bool("table1", false, "Table 1: typed memory accesses")
	t2 := flag.Bool("table2", false, "Table 2: interprocedural optimization timings")
	f5 := flag.Bool("fig5", false, "Figure 5: executable sizes")
	ck := flag.Bool("checker", false, "Checker: static memory-safety diagnostics per benchmark")
	verbose := flag.Bool("v", false, "verbose (per-pass work counts)")
	jsonPath := flag.String("json", "", "also write results as JSON to this path (- for stdout)")
	flag.Parse()
	all := !*t1 && !*t2 && !*f5 && !*ck

	var rows1 []experiments.Table1Row
	var rows2 []experiments.Table2Row
	var rows5 []experiments.Figure5Row
	var rowsC []experiments.CheckerRow
	if *t1 || all {
		var err error
		rows1, err = experiments.Table1()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable1(os.Stdout, rows1)
		os.Stdout.WriteString("\n")
	}
	if *t2 || all {
		var err error
		rows2, err = experiments.Table2()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable2(os.Stdout, rows2, *verbose)
		os.Stdout.WriteString("\n")
	}
	if *f5 || all {
		var err error
		rows5, err = experiments.Figure5()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintFigure5(os.Stdout, rows5)
	}
	if *ck || all {
		var err error
		rowsC, err = experiments.CheckerTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintCheckerTable(os.Stdout, rowsC)
	}
	if *jsonPath != "" {
		report := experiments.NewReport(rows1, rows2, rows5, rowsC)
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				tooling.Fatalf("llvm-bench: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := experiments.WriteJSON(out, report); err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
	}
}
