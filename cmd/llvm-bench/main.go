// llvm-bench regenerates the paper's evaluation over the synthetic SPEC
// CPU2000 analogues: Table 1 (provably-typed memory accesses), Table 2
// (interprocedural optimization timings vs a baseline compile), and
// Figure 5 (executable sizes: LLVM bytecode vs CISC vs RISC images).
//
// Usage: llvm-bench [-table1] [-table2] [-fig5] [-v]   (no flags = all)
package main

import (
	"flag"
	"os"

	"repro/internal/experiments"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-bench")
	t1 := flag.Bool("table1", false, "Table 1: typed memory accesses")
	t2 := flag.Bool("table2", false, "Table 2: interprocedural optimization timings")
	f5 := flag.Bool("fig5", false, "Figure 5: executable sizes")
	verbose := flag.Bool("v", false, "verbose (per-pass work counts)")
	flag.Parse()
	all := !*t1 && !*t2 && !*f5

	if *t1 || all {
		rows, err := experiments.Table1()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable1(os.Stdout, rows)
		os.Stdout.WriteString("\n")
	}
	if *t2 || all {
		rows, err := experiments.Table2()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable2(os.Stdout, rows, *verbose)
		os.Stdout.WriteString("\n")
	}
	if *f5 || all {
		rows, err := experiments.Figure5()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintFigure5(os.Stdout, rows)
	}
}
