// llvm-bench regenerates the paper's evaluation over the synthetic SPEC
// CPU2000 analogues: Table 1 (provably-typed memory accesses), Table 2
// (interprocedural optimization timings vs a baseline compile), and
// Figure 5 (executable sizes: LLVM bytecode vs CISC vs RISC images).
//
// Usage: llvm-bench [-table1] [-table2] [-fig5] [-checker] [-obs]
// [-validate] [-tiers] [-store DIR] [-v] [-json path] (no flags = the
// default tables; any explicit selection runs only what was asked). -obs
// times the standard
// pipeline with observability (tracing, remarks, metrics) off vs on,
// reporting the overhead percent. -validate does the same for the
// translation-validation oracle, reporting the per-benchmark verdict
// tallies alongside the overhead — a confirmed miscompile of a real pass
// aborts the benchmark, so the table doubles as a soundness check.
// -checker runs the static memory-safety checker over each optimized
// benchmark; since the synthetic programs are well-formed, any error it
// reports is a checker false positive. -tiers runs each benchmark to
// completion at every execution tier (interpreter, baseline, optimizing,
// and auto seeded with a prior run's profile) and reports per-tier
// latency with tier-2 speedups. -store DIR compiles each benchmark
// twice through a lifelong store rooted at DIR and reports cold-vs-warm
// latency (DIR persists, so successive runs measure a warm daemon).
// -serve-load drives a 3-node in-process cluster open-loop at fixed
// arrival rates (-load-rates, -load-dur) and reports p50/p95/p99/max
// latency, throughput, and cache/dedup mix per rate, plus a saturation
// arm (-load-sat-rate against a 1-worker node, proving fast 503
// refusals) and the serving-layer observability overhead at p50.
// -json additionally writes the selected tables as machine-readable JSON
// (see experiments.Report), the format the repo's BENCH_*.json trajectory
// files use.
package main

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-bench")
	t1 := flag.Bool("table1", false, "Table 1: typed memory accesses")
	t2 := flag.Bool("table2", false, "Table 2: interprocedural optimization timings")
	f5 := flag.Bool("fig5", false, "Figure 5: executable sizes")
	ck := flag.Bool("checker", false, "Checker: static memory-safety diagnostics per benchmark")
	obsFlag := flag.Bool("obs", false, "Obs: pipeline latency with observability off vs on")
	validateFlag := flag.Bool("validate", false, "Validate: pipeline latency with the translation-validation oracle off vs on")
	tiersFlag := flag.Bool("tiers", false, "Tiers: execution latency per engine tier (interp/tier-1/tier-2/auto+profile)")
	aliasFlag := flag.Bool("alias", false, "Alias: memory-pass optimization work and pipeline cost, points-to analysis off vs on")
	clusterFlag := flag.Bool("cluster", false, "Cluster: cold/warm-local/remote-hit compile latency through a 3-node in-process cluster")
	serveLoad := flag.Bool("serve-load", false, "ServeLoad: open-loop latency quantiles (p50/p95/p99) against a 3-node cluster front, plus saturation and obs-overhead arms")
	loadRates := flag.String("load-rates", "50,200", "comma-separated arrival rates (req/s) for -serve-load")
	loadDur := flag.Duration("load-dur", 2*time.Second, "duration of each -serve-load rate run")
	loadSatRate := flag.Float64("load-sat-rate", 300, "arrival rate for the -serve-load saturation arm (1-worker /run)")
	storeDir := flag.String("store", "", "Store: cold-vs-warm compile latency through a lifelong store at this dir")
	verbose := flag.Bool("v", false, "verbose (per-pass work counts)")
	jsonPath := flag.String("json", "", "also write results as JSON to this path (- for stdout)")
	flag.Parse()
	// No section flags at all = the paper's default tables. Any explicit
	// selection (including the opt-in sections) runs only what was asked.
	all := !*t1 && !*t2 && !*f5 && !*ck &&
		!*obsFlag && !*validateFlag && !*tiersFlag && !*aliasFlag &&
		!*clusterFlag && !*serveLoad && *storeDir == ""

	var rows1 []experiments.Table1Row
	var rows2 []experiments.Table2Row
	var rows5 []experiments.Figure5Row
	var rowsC []experiments.CheckerRow
	if *t1 || all {
		var err error
		rows1, err = experiments.Table1()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable1(os.Stdout, rows1)
		os.Stdout.WriteString("\n")
	}
	if *t2 || all {
		var err error
		rows2, err = experiments.Table2()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintTable2(os.Stdout, rows2, *verbose)
		os.Stdout.WriteString("\n")
	}
	if *f5 || all {
		var err error
		rows5, err = experiments.Figure5()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		experiments.PrintFigure5(os.Stdout, rows5)
	}
	if *ck || all {
		var err error
		rowsC, err = experiments.CheckerTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintCheckerTable(os.Stdout, rowsC)
	}
	var rowsO []experiments.ObsRow
	if *obsFlag {
		var err error
		rowsO, err = experiments.ObsTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintObsTable(os.Stdout, rowsO)
	}
	var rowsV []experiments.ValidateRow
	if *validateFlag {
		var err error
		rowsV, err = experiments.ValidateTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintValidateTable(os.Stdout, rowsV)
	}
	var rowsT []experiments.TiersRow
	if *tiersFlag {
		var err error
		rowsT, err = experiments.TiersTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintTiersTable(os.Stdout, rowsT)
	}
	var rowsA []experiments.AliasRow
	if *aliasFlag {
		var err error
		rowsA, err = experiments.AliasTable()
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintAliasTable(os.Stdout, rowsA)
	}
	var rowsCl []experiments.ClusterRow
	if *clusterFlag {
		dir, err := os.MkdirTemp("", "llvm-bench-cluster-")
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		defer os.RemoveAll(dir)
		rowsCl, err = experiments.ClusterTable(dir)
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintClusterTable(os.Stdout, rowsCl)
	}
	var loadRes *experiments.ServeLoadResult
	if *serveLoad {
		dir, err := os.MkdirTemp("", "llvm-bench-load-")
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		defer os.RemoveAll(dir)
		var rates []float64
		for _, s := range strings.Split(*loadRates, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			r, err := strconv.ParseFloat(s, 64)
			if err != nil || r <= 0 {
				tooling.Fatalf("llvm-bench: bad -load-rates entry %q", s)
			}
			rates = append(rates, r)
		}
		if len(rates) == 0 {
			tooling.Fatalf("llvm-bench: -load-rates is empty")
		}
		loadRes, err = experiments.ServeLoadTable(dir, rates, *loadDur, *loadSatRate)
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintServeLoadTable(os.Stdout, loadRes)
	}
	var rowsS []experiments.StoreRow
	if *storeDir != "" {
		var err error
		rowsS, err = experiments.StoreTable(*storeDir)
		if err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
		os.Stdout.WriteString("\n")
		experiments.PrintStoreTable(os.Stdout, rowsS)
	}
	if *jsonPath != "" {
		report := experiments.NewReport(rows1, rows2, rows5, rowsC)
		report.AddObs(rowsO)
		report.AddValidate(rowsV)
		report.AddTiers(rowsT)
		report.AddAlias(rowsA)
		report.AddCluster(rowsCl)
		report.AddServeLoad(loadRes)
		report.AddStore(rowsS)
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				tooling.Fatalf("llvm-bench: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := experiments.WriteJSON(out, report); err != nil {
			tooling.Fatalf("llvm-bench: %v", err)
		}
	}
}
