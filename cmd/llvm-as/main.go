// llvm-as assembles textual IR (.ll) into the compact bytecode form (.bc),
// verifying the module first.
//
// Usage: llvm-as [-o out.bc] input.ll
package main

import (
	"flag"
	"strings"

	"repro/internal/core"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-as")
	out := flag.String("o", "", "output file (default: input with .bc suffix, or - for stdout)")
	noverify := flag.Bool("disable-verify", false, "skip the module verifier")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-as [-o out.bc] input.ll")
	}
	in := flag.Arg(0)
	m, err := tooling.LoadModule(in)
	if err != nil {
		tooling.Fatalf("llvm-as: %v", err)
	}
	if !*noverify {
		if err := core.Verify(m); err != nil {
			tooling.Fatalf("llvm-as: %v", err)
		}
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(in, ".ll") + ".bc"
	}
	if err := tooling.SaveModule(dest, m, true); err != nil {
		tooling.Fatalf("llvm-as: %v", err)
	}
}
