// llvm-run executes a module's main function in the tiered execution
// engine (§3.4): -tier selects the interpreter (0), the baseline
// translation (1), the optimizing register-allocated tier (2), or
// profile-driven tier-up between them (auto, the default). Execution is
// sandboxed: instruction, heap, call-depth, and wall-clock budgets all
// turn runaway or hostile programs into diagnostics, never crashes.
//
// With -profile-out the engine's own per-block counters are written as a
// persistent profile (§3.6's gathering of end-user profile information
// across runs, with no instrumentation probes); -profile-in merges a
// prior profile file in first, so repeated `-profile-in p -profile-out p`
// runs accumulate — and under -tier=auto the incoming profile seeds
// functions hot at start, so warm code skips the baseline tier.
//
// Usage: llvm-run [-tier {0,1,2,auto}] [-tier-stats] [-stats]
//
//	[-max-steps N] [-max-heap N] [-timeout D]
//	[-profile-in FILE] [-profile-out FILE] input
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-run")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "instruction budget")
	maxHeap := flag.Int64("max-heap", interp.DefaultMaxHeapBytes, "heap budget in bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none), e.g. 5s")
	tier := flag.String("tier", "auto", "execution tier: 0 (interpreter), 1 (baseline), 2 (optimizing), auto (profile-driven tier-up)")
	tierStats := flag.Bool("tier-stats", false, "print per-function tier decisions and compile times to stderr")
	profileIn := flag.String("profile-in", "", "merge an existing profile file and seed tier-up from it")
	profileOut := flag.String("profile-out", "", "record the engine's block counts and write the accumulated profile to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-run [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-run: module invalid: %v", err)
	}
	policy, ok := interp.ParseTierPolicy(*tier)
	if !ok {
		tooling.Fatalf("llvm-run: bad -tier %q (want 0, 1, 2, or auto)", *tier)
	}
	mc, err := interp.NewMachine(m, os.Stdout)
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	mc.SetTier(policy)
	mc.MaxSteps = *maxSteps
	mc.MaxHeapBytes = *maxHeap
	if *profileOut != "" {
		mc.EnableProfile()
	}
	var seed *profile.File
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			tooling.Fatalf("llvm-run: reading -profile-in: %v", err)
		}
		if seed, err = profile.DecodeFile(data); err != nil {
			tooling.Fatalf("llvm-run: decoding -profile-in %s: %v", *profileIn, err)
		}
		mc.SeedProfile(seed.Counts.Funcs)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code, err := mc.RunMainContext(ctx)
	if err != nil {
		var ee *interp.ExitError
		switch {
		case errors.As(err, &ee):
			code = ee.Code
		case errors.Is(err, interp.ErrCancelled):
			tooling.Fatalf("llvm-run: killed after %v wall-clock budget (%v)", *timeout, err)
		default:
			// Traps carry function/block/instruction position.
			tooling.Fatalf("llvm-run: trap: %v", err)
		}
	}
	if *profileOut != "" {
		if err := writeProfile(mc, seed, *profileOut); err != nil {
			tooling.Fatalf("llvm-run: %v", err)
		}
	}
	if *tierStats {
		printTierStats(mc.TierStats())
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps: %d\n", mc.Steps)
		fmt.Fprintf(os.Stderr, "heap: %d allocations, %d bytes\n", mc.NumMallocs, mc.MallocBytes)
		for op := 0; op < core.NumOpcodes; op++ {
			if mc.OpCounts[op] > 0 {
				fmt.Fprintf(os.Stderr, "  %-16s %d\n", core.Opcode(op), mc.OpCounts[op])
			}
		}
	}
	os.Exit(int(code & 0xFF))
}

// writeProfile folds this run's engine block counts into the profile
// file: counts from -profile-in (if any) accumulate first, then the file
// is written atomically so a crash mid-save never corrupts the
// accumulated history.
func writeProfile(mc *interp.Machine, seed *profile.File, out string) error {
	f := seed
	if f == nil {
		f = &profile.File{}
	}
	f.Merge(profile.CountsFromBlocks(mc.BlockCounts()))
	data, err := profile.EncodeFile(f)
	if err != nil {
		return err
	}
	return tooling.AtomicWriteFile(out, data, 0o644)
}

// printTierStats renders the engine's tiering decisions.
func printTierStats(st interp.TierStats) {
	fmt.Fprintf(os.Stderr, "tier policy: %s\n", st.Policy)
	for t := 0; t < 3; t++ {
		if st.Calls[t] == 0 && st.Compiles[t] == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "tier %d: %d calls, %d compiles (%v compile time)\n",
			t, st.Calls[t], st.Compiles[t], st.CompileTime[t])
	}
	fmt.Fprintf(os.Stderr, "tier-ups: %d\n", st.TierUps)
	for _, f := range st.Funcs {
		fmt.Fprintf(os.Stderr, "  %-24s tier %d, %d calls\n", "%"+f.Name, f.Tier, f.Calls)
	}
}
