// llvm-run executes a module's main function in the execution engine
// (§3.4's portable interpreter), optionally printing execution statistics.
//
// Usage: llvm-run [-stats] [-max-steps N] input
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/tooling"
)

func main() {
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "instruction budget")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-run [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-run: module invalid: %v", err)
	}
	mc, err := interp.NewMachine(m, os.Stdout)
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	mc.MaxSteps = *maxSteps
	code, err := mc.RunMain()
	if err != nil {
		if ee, ok := err.(*interp.ExitError); ok {
			code = ee.Code
		} else {
			tooling.Fatalf("llvm-run: %v", err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps: %d\n", mc.Steps)
		fmt.Fprintf(os.Stderr, "heap: %d allocations, %d bytes\n", mc.NumMallocs, mc.MallocBytes)
		for op := 0; op < core.NumOpcodes; op++ {
			if mc.OpCounts[op] > 0 {
				fmt.Fprintf(os.Stderr, "  %-16s %d\n", core.Opcode(op), mc.OpCounts[op])
			}
		}
	}
	os.Exit(int(code & 0xFF))
}
