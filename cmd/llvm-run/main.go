// llvm-run executes a module's main function in the execution engine
// (§3.4's portable interpreter), optionally printing execution statistics.
// Execution is sandboxed: instruction, heap, call-depth, and wall-clock
// budgets all turn runaway or hostile programs into diagnostics, never
// crashes.
//
// With -profile-out the run is instrumented and its block counts are
// written as a persistent profile (§3.6's gathering of end-user profile
// information across runs); -profile-in merges a prior profile file in
// first, so repeated `-profile-in p -profile-out p` runs accumulate.
//
// Usage: llvm-run [-stats] [-max-steps N] [-max-heap N] [-timeout D]
//
//	[-profile-in FILE] [-profile-out FILE] input
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-run")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "instruction budget")
	maxHeap := flag.Int64("max-heap", interp.DefaultMaxHeapBytes, "heap budget in bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none), e.g. 5s")
	profileIn := flag.String("profile-in", "", "merge an existing profile file before writing -profile-out")
	profileOut := flag.String("profile-out", "", "instrument the run and write accumulated block counts to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-run [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-run: module invalid: %v", err)
	}
	if *profileIn != "" && *profileOut == "" {
		tooling.Fatalf("llvm-run: -profile-in requires -profile-out")
	}
	var ins *profile.Instrumentation
	if *profileOut != "" {
		ins = profile.Instrument(m)
	}
	mc, err := interp.NewMachine(m, os.Stdout)
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	mc.MaxSteps = *maxSteps
	mc.MaxHeapBytes = *maxHeap

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code, err := mc.RunMainContext(ctx)
	if err != nil {
		var ee *interp.ExitError
		switch {
		case errors.As(err, &ee):
			code = ee.Code
		case errors.Is(err, interp.ErrCancelled):
			tooling.Fatalf("llvm-run: killed after %v wall-clock budget (%v)", *timeout, err)
		default:
			// Traps carry function/block/instruction position.
			tooling.Fatalf("llvm-run: trap: %v", err)
		}
	}
	if ins != nil {
		if err := writeProfile(ins, mc, m, *profileIn, *profileOut); err != nil {
			tooling.Fatalf("llvm-run: %v", err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps: %d\n", mc.Steps)
		fmt.Fprintf(os.Stderr, "heap: %d allocations, %d bytes\n", mc.NumMallocs, mc.MallocBytes)
		for op := 0; op < core.NumOpcodes; op++ {
			if mc.OpCounts[op] > 0 {
				fmt.Fprintf(os.Stderr, "  %-16s %d\n", core.Opcode(op), mc.OpCounts[op])
			}
		}
	}
	os.Exit(int(code & 0xFF))
}

// writeProfile folds this run's block counts into the profile file:
// counts from -profile-in (if any) are merged first, then the file is
// written atomically so a crash mid-save never corrupts the accumulated
// history.
func writeProfile(ins *profile.Instrumentation, mc *interp.Machine, m *core.Module, in, out string) error {
	d, err := ins.ReadCounts(mc)
	if err != nil {
		return fmt.Errorf("reading profile counts: %v", err)
	}
	ins.Strip()
	f := &profile.File{}
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return fmt.Errorf("reading -profile-in: %v", err)
		}
		if f, err = profile.DecodeFile(data); err != nil {
			return fmt.Errorf("decoding -profile-in %s: %v", in, err)
		}
	}
	f.Merge(d.ToCounts(m))
	data, err := profile.EncodeFile(f)
	if err != nil {
		return err
	}
	return tooling.AtomicWriteFile(out, data, 0o644)
}
