// llvm-run executes a module's main function in the execution engine
// (§3.4's portable interpreter), optionally printing execution statistics.
// Execution is sandboxed: instruction, heap, call-depth, and wall-clock
// budgets all turn runaway or hostile programs into diagnostics, never
// crashes.
//
// Usage: llvm-run [-stats] [-max-steps N] [-max-heap N] [-timeout D] input
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-run")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	maxSteps := flag.Int64("max-steps", interp.DefaultMaxSteps, "instruction budget")
	maxHeap := flag.Int64("max-heap", interp.DefaultMaxHeapBytes, "heap budget in bytes (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none), e.g. 5s")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-run [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-run: module invalid: %v", err)
	}
	mc, err := interp.NewMachine(m, os.Stdout)
	if err != nil {
		tooling.Fatalf("llvm-run: %v", err)
	}
	mc.MaxSteps = *maxSteps
	mc.MaxHeapBytes = *maxHeap

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code, err := mc.RunMainContext(ctx)
	if err != nil {
		var ee *interp.ExitError
		switch {
		case errors.As(err, &ee):
			code = ee.Code
		case errors.Is(err, interp.ErrCancelled):
			tooling.Fatalf("llvm-run: killed after %v wall-clock budget (%v)", *timeout, err)
		default:
			// Traps carry function/block/instruction position.
			tooling.Fatalf("llvm-run: trap: %v", err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "steps: %d\n", mc.Steps)
		fmt.Fprintf(os.Stderr, "heap: %d allocations, %d bytes\n", mc.NumMallocs, mc.MallocBytes)
		for op := 0; op < core.NumOpcodes; op++ {
			if mc.OpCounts[op] > 0 {
				fmt.Fprintf(os.Stderr, "  %-16s %d\n", core.Opcode(op), mc.OpCounts[op])
			}
		}
	}
	os.Exit(int(code & 0xFF))
}
