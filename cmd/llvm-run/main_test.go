package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/frontend/minic"
	"repro/internal/profile"
	"repro/internal/tooling"
)

// TestProfileFlagsAccumulate exercises the built binary end to end:
// profiling one run, merging a second on top, and checking the
// accumulated counts are exactly one run doubled (the program is
// deterministic) with the epoch advancing per the doubling rule.
func TestProfileFlagsAccumulate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the llvm-run binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "llvm-run")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building llvm-run: %v\n%s", err, out)
	}

	m, err := minic.Compile("prog", `
static int work(int x) { return x * 3 + 1; }
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 50; i++) acc = (acc + work(i)) % 1000;
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog := filepath.Join(dir, "prog.bc")
	if err := tooling.SaveModule(prog, m, true); err != nil {
		t.Fatal(err)
	}

	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if out, err := exec.Command(bin, "-profile-out", a, prog).CombinedOutput(); err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, "-profile-in", a, "-profile-out", b, prog).CombinedOutput(); err != nil {
		t.Fatalf("second run: %v\n%s", err, out)
	}

	fa := decodeProfile(t, a)
	fb := decodeProfile(t, b)
	if fa.Counts.Total == 0 {
		t.Fatal("first run recorded no counts")
	}
	doubled := &profile.Counts{}
	doubled.Merge(&fa.Counts)
	doubled.Merge(&fa.Counts)
	if !fb.Counts.Equal(doubled) {
		t.Fatalf("two merged runs != one doubled run:\n a=%+v\n b=%+v", fa.Counts, fb.Counts)
	}
	if fa.Epoch != 1 || fb.Epoch != 2 {
		t.Fatalf("epochs: first=%d second=%d, want 1 then 2", fa.Epoch, fb.Epoch)
	}
}

func decodeProfile(t *testing.T, path string) *profile.File {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := profile.DecodeFile(data)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return f
}
