// minicc is the MiniC front-end (Figure 4's "Compiler FE"): it translates
// a C-subset source file into IR, optionally running the compile-time
// optimization pipeline.
//
// Usage: minicc [-O] [-b] [-o out] input.c
package main

import (
	"flag"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/passes"
	"repro/internal/summary"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("minicc")
	optimize := flag.Bool("O", false, "run the standard scalar optimization pipeline")
	withSummary := flag.Bool("summary", false, "also write the interprocedural summary sidecar (.sum)")
	binary := flag.Bool("b", false, "write bytecode instead of text")
	out := flag.String("o", "", "output file (default: input with .ll/.bc suffix)")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: minicc [-O] [-b] [-o out] input.c")
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		tooling.Fatalf("minicc: %v", err)
	}
	name := strings.TrimSuffix(in, ".c")
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	m, err := minic.Compile(name, string(src))
	if err != nil {
		tooling.Fatalf("minicc: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("minicc: front-end produced invalid IR: %v", err)
	}
	if *optimize {
		pm := passes.NewPassManager()
		pm.VerifyEach = true
		pm.AddStandardPipeline()
		if _, err := pm.Run(m); err != nil {
			tooling.Fatalf("minicc: %v", err)
		}
	}
	dest := *out
	if dest == "" {
		suffix := ".ll"
		if *binary {
			suffix = ".bc"
		}
		dest = strings.TrimSuffix(in, ".c") + suffix
	}
	if err := tooling.SaveModule(dest, m, *binary); err != nil {
		tooling.Fatalf("minicc: %v", err)
	}
	if *withSummary {
		blob := summary.Encode(summary.Compute(m))
		sumPath := strings.TrimSuffix(in, ".c") + ".sum"
		if err := os.WriteFile(sumPath, blob, 0o644); err != nil {
			tooling.Fatalf("minicc: %v", err)
		}
	}
}
