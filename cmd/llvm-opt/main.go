// llvm-opt runs optimization passes over a module (text or bytecode).
//
// Usage:
//
//	llvm-opt [-std] [-linktime] [-passes mem2reg,dge,...] [-policy P]
//	         [-pass-timeout D] [-j N] [-time] [-check] [-o out] input
//
// -std runs the standard per-function clean-up pipeline (§3.2); -linktime
// runs the link-time interprocedural pipeline (§3.3); -passes selects
// individual passes by name. Passes run in the order given. -policy
// selects how pass failures (panics, timeouts, verifier rejections) are
// handled: failfast aborts, rollback aborts but restores the last
// known-good module, skip discards the failed pass's changes and keeps
// going. -pass-timeout bounds each pass's wall-clock time. -j selects how
// many functions a function pass transforms concurrently (default
// GOMAXPROCS); output is identical at any setting. -check runs the static
// memory-safety checker before and after the pipeline and diffs the two
// reports: findings the pipeline fixed and findings it introduced are
// printed, and a pipeline that introduces a new error-severity finding is
// treated as a miscompile (nonzero exit).
//
// Observability (DESIGN.md §10): -trace-out FILE records one span per pass
// and per function worker in Chrome trace-event JSON (load it in Perfetto
// or about:tracing); -remarks streams optimization remarks (applied /
// missed / analysis, per pass and position) to stderr, and -remarks-json
// FILE writes the same stream as JSON. The remark stream is byte-identical
// at any -j.
//
// Translation validation (DESIGN.md §11): -validate runs the semantic
// equivalence oracle after every changed pass and prints one verdict line
// per pass run. A confirmed miscompile discards the pass's changes (like
// any pass failure under -policy) and the process exits with status 2 —
// distinct from status 1, which covers usage and infrastructure errors —
// so scripts can tell "the optimizer is buggy" from "the invocation is".
// Validation shares the scratch clone isolation already takes: -check,
// -validate, and rollback together still cost one snapshot per pass run
// (see the snapshots line under -time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/tooling"
	"repro/internal/validate"
)

// exitMiscompile is the exit status for a confirmed miscompile: the tool
// worked, the optimizer did not.
const exitMiscompile = 2

func main() {
	defer tooling.ExitOnPanic("llvm-opt")
	std := flag.Bool("std", false, "run the standard scalar pipeline")
	linktime := flag.Bool("linktime", false, "run the link-time interprocedural pipeline")
	passList := flag.String("passes", "", "comma-separated pass names")
	policy := flag.String("policy", "failfast", "pass-failure policy: failfast, skip, or rollback")
	passTimeout := flag.Duration("pass-timeout", 0, "per-pass wall-clock budget (0 = none), e.g. 30s")
	timing := flag.Bool("time", false, "report per-pass timings, change counts, and analysis cache activity")
	check := flag.Bool("check", false, "run the static checker before and after the pipeline and diff the diagnostics")
	doValidate := flag.Bool("validate", false, "prove each changed pass run semantically equivalent; confirmed miscompiles exit 2")
	jobs := flag.Int("j", 0, "function-pass parallelism (0 = GOMAXPROCS, 1 = serial)")
	binary := flag.Bool("b", false, "write bytecode instead of text")
	out := flag.String("o", "-", "output file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON pipeline trace to FILE")
	remarks := flag.Bool("remarks", false, "print optimization remarks (applied/missed/analysis) to stderr")
	remarksJSON := flag.String("remarks-json", "", "write optimization remarks as JSON to FILE")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-opt [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-opt: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-opt: input invalid: %v", err)
	}

	pm := passes.NewPassManager()
	pm.VerifyEach = true
	pm.Timeout = *passTimeout
	pm.Parallelism = *jobs
	if *traceOut != "" {
		pm.Tracer = obs.NewTracer()
	}
	if *remarks || *remarksJSON != "" {
		pm.Remarks = obs.NewRemarks()
	}
	switch *policy {
	case "failfast":
		pm.Policy = passes.FailFast
	case "skip":
		pm.Policy = passes.SkipAndContinue
	case "rollback":
		pm.Policy = passes.Rollback
	default:
		tooling.Fatalf("llvm-opt: unknown policy %q (want failfast, skip, or rollback)", *policy)
	}
	if *doValidate {
		pm.Validator = validate.Default()
	}
	if *std {
		pm.AddStandardPipeline()
	}
	if *linktime {
		pm.AddLinkTimePipeline()
	}
	if *passList != "" {
		for _, name := range strings.Split(*passList, ",") {
			p, ok := tooling.PassByName(strings.TrimSpace(name))
			if !ok {
				tooling.Fatalf("llvm-opt: unknown pass %q", name)
			}
			pm.Add(p)
		}
	}
	var chk *checker.Checker
	var preRep *checker.Report
	if *check {
		if pm.AM == nil {
			pm.AM = analysis.NewManager()
		}
		chk = checker.New()
		chk.AM = pm.AM
		chk.Parallelism = *jobs
		chk.Remarks = pm.Remarks
		var err error
		preRep, err = chk.Check(m)
		if err != nil {
			tooling.Fatalf("llvm-opt: pre-pipeline check: %v", err)
		}
	}
	_, runErr := pm.Run(m)
	reportFailures(pm)
	var miscompiles int
	if *doValidate {
		miscompiles = reportVerdicts(pm)
	}
	if runErr != nil {
		if miscompiles > 0 {
			fmt.Fprintf(os.Stderr, "llvm-opt: validate: %d confirmed miscompile(s); module left in its last known-good state\n", miscompiles)
			os.Exit(exitMiscompile)
		}
		if pm.Policy == passes.Rollback {
			tooling.Fatalf("llvm-opt: pipeline aborted; module left in last known-good state")
		}
		tooling.Fatalf("llvm-opt: %v", runErr)
	}
	if *timing {
		for _, r := range pm.Results {
			fmt.Fprintf(os.Stderr, "%-16s %6d changes  %12v  analyses: %d hit / %d miss / %d invalidated\n",
				r.Pass, r.Changed, r.Duration, r.AnalysisHits, r.AnalysisMisses, r.AnalysisInvalidations)
		}
		s := pm.AnalysisStats()
		fmt.Fprintf(os.Stderr, "%-16s analysis cache: %d hits, %d misses, %d invalidations\n",
			"total", s.Hits, s.Misses, s.Invalidations)
		fmt.Fprintf(os.Stderr, "%-16s %d scratch clones (isolation, -check, and -validate share one per pass run)\n",
			"snapshots", pm.Snapshots)
		qs := dsa.Stats()
		fmt.Fprintf(os.Stderr, "%-16s %d queries: %d no-alias, %d may-alias, %d must-alias\n",
			"alias", qs.Total(), qs.No, qs.May, qs.Must)
		if *doValidate {
			var oracle time.Duration
			for _, r := range pm.Results {
				if r.Validation != nil {
					oracle += r.Validation.Duration
				}
			}
			fmt.Fprintf(os.Stderr, "%-16s %v total oracle time\n", "validate", oracle)
		}
	}
	if *check {
		postRep, err := chk.Check(m)
		if err != nil {
			tooling.Fatalf("llvm-opt: post-pipeline check: %v", err)
		}
		reportCheckDiff(preRep, postRep, *timing)
	}
	if pm.Remarks != nil {
		sorted := pm.Remarks.Sorted()
		if *remarks {
			if err := obs.WriteRemarksText(os.Stderr, sorted); err != nil {
				tooling.Fatalf("llvm-opt: writing remarks: %v", err)
			}
		}
		if *remarksJSON != "" {
			f, err := os.Create(*remarksJSON)
			if err != nil {
				tooling.Fatalf("llvm-opt: %v", err)
			}
			werr := obs.WriteRemarksJSON(f, sorted)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				tooling.Fatalf("llvm-opt: writing %s: %v", *remarksJSON, werr)
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			tooling.Fatalf("llvm-opt: %v", err)
		}
		werr := pm.Tracer.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			tooling.Fatalf("llvm-opt: writing %s: %v", *traceOut, werr)
		}
	}
	if err := tooling.SaveModule(*out, m, *binary); err != nil {
		tooling.Fatalf("llvm-opt: %v", err)
	}
	if miscompiles > 0 {
		// Under -policy skip the output module is sound (the miscompiling
		// pass's changes were discarded), but the run still found a
		// compiler bug; say so in the exit status.
		os.Exit(exitMiscompile)
	}
}

// reportVerdicts prints the per-pass verdict table and returns the number
// of confirmed miscompiles. Passes that made no changes were not validated
// (there is nothing to prove); that is reported rather than hidden so a
// clean table can be told apart from a table that never ran.
func reportVerdicts(pm *passes.PassManager) int {
	miscompiles := 0
	for _, r := range pm.Results {
		v := r.Validation
		if v == nil {
			why := "no changes; nothing to prove"
			if r.Failed {
				why = "pass failed before validation"
			}
			fmt.Fprintf(os.Stderr, "llvm-opt: validate: %-16s %s\n", r.Pass, why)
			continue
		}
		fmt.Fprintf(os.Stderr, "llvm-opt: validate: %-16s %s\n", r.Pass, v.Summary())
		if v.Verdict == validate.Miscompile {
			miscompiles++
		}
	}
	return miscompiles
}

// reportCheckDiff compares the checker reports from before and after the
// pipeline. Diagnostics that disappeared are defects the optimizer removed
// (dead stores eliminated, unreachable blocks pruned) — reported as fixed.
// Diagnostics that appeared are suspicious: a transformation introduced
// behavior the input did not have. New warnings are reported but tolerated
// (optimizations legitimately reshape code); a NEW error-severity finding
// means the pipeline manufactured a provable memory-safety defect, which is
// treated as a miscompile and aborts with a nonzero exit.
func reportCheckDiff(pre, post *checker.Report, timing bool) {
	removed, added := diag.Diff(pre.Diags, post.Diags)
	for _, d := range removed {
		fmt.Fprintf(os.Stderr, "llvm-opt: check: fixed by pipeline: %s\n", d)
	}
	for _, d := range added {
		fmt.Fprintf(os.Stderr, "llvm-opt: check: introduced by pipeline: %s\n", d)
	}
	if timing {
		fmt.Fprintf(os.Stderr, "%-16s %d before, %d after (%d fixed, %d introduced)  %12v  analyses: %d hit / %d miss\n",
			"check", len(pre.Diags), len(post.Diags), len(removed), len(added),
			pre.Stats.Duration+post.Stats.Duration,
			pre.Stats.CacheHits+post.Stats.CacheHits,
			pre.Stats.CacheMisses+post.Stats.CacheMisses)
	}
	if n := diag.CountErrors(added); n > 0 {
		tooling.Fatalf("llvm-opt: check: pipeline introduced %d error(s) not present in the input (possible miscompile)", n)
	}
}

// reportFailures prints one line per failed pass: its name, how long it
// ran, whether its changes were rolled back, and the cause.
func reportFailures(pm *passes.PassManager) {
	for _, f := range pm.Failures() {
		state := "module state undefined"
		if f.RolledBack {
			state = "rolled back"
		}
		fmt.Fprintf(os.Stderr, "llvm-opt: pass %s failed after %v (%s): %v\n",
			f.Pass, f.Duration.Round(time.Microsecond), state, f.Err)
	}
}
