// llvm-opt runs optimization passes over a module (text or bytecode).
//
// Usage:
//
//	llvm-opt [-std] [-linktime] [-passes mem2reg,dge,...] [-time] [-o out] input
//
// -std runs the standard per-function clean-up pipeline (§3.2); -linktime
// runs the link-time interprocedural pipeline (§3.3); -passes selects
// individual passes by name. Passes run in the order given.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/passes"
	"repro/internal/tooling"
)

func main() {
	std := flag.Bool("std", false, "run the standard scalar pipeline")
	linktime := flag.Bool("linktime", false, "run the link-time interprocedural pipeline")
	passList := flag.String("passes", "", "comma-separated pass names")
	timing := flag.Bool("time", false, "report per-pass timings and change counts")
	binary := flag.Bool("b", false, "write bytecode instead of text")
	out := flag.String("o", "-", "output file")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-opt [flags] input")
	}
	m, err := tooling.LoadModule(flag.Arg(0))
	if err != nil {
		tooling.Fatalf("llvm-opt: %v", err)
	}
	if err := core.Verify(m); err != nil {
		tooling.Fatalf("llvm-opt: input invalid: %v", err)
	}

	pm := passes.NewPassManager()
	pm.VerifyEach = true
	if *std {
		pm.AddStandardPipeline()
	}
	if *linktime {
		pm.AddLinkTimePipeline()
	}
	if *passList != "" {
		for _, name := range strings.Split(*passList, ",") {
			p, ok := tooling.PassByName(strings.TrimSpace(name))
			if !ok {
				tooling.Fatalf("llvm-opt: unknown pass %q", name)
			}
			pm.Add(p)
		}
	}
	if _, err := pm.Run(m); err != nil {
		tooling.Fatalf("llvm-opt: %v", err)
	}
	if *timing {
		for _, r := range pm.Results {
			fmt.Fprintf(os.Stderr, "%-16s %6d changes  %12v\n", r.Pass, r.Changed, r.Duration)
		}
	}
	if err := tooling.SaveModule(*out, m, *binary); err != nil {
		tooling.Fatalf("llvm-opt: %v", err)
	}
}
