// llvm-check runs the static memory-safety and IR-lint checker over one or
// more modules (text or bytecode) and prints positioned diagnostics.
//
// Usage:
//
//	llvm-check [-json] [-min-severity S] [-no-lint] [-j N] [-stats] input...
//
// Diagnostics carry the same fn/block/inst positions the execution
// sandbox's traps use, so a prediction and an observed fault can be
// compared line for line. Exit status: 0 when no error-severity
// diagnostics were found, 1 when at least one error was reported, 2 when
// an input failed to load or the checker itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/dsa"
	"repro/internal/tooling"
)

// fileReport is the JSON shape of one input's results.
type fileReport struct {
	File        string            `json:"file"`
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	Stats       checker.Stats     `json:"stats"`
}

func main() {
	defer tooling.ExitOnPanic("llvm-check")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	minSev := flag.String("min-severity", "warning", "lowest severity to report: warning or error")
	noLint := flag.Bool("no-lint", false, "suppress lint kinds (unreachable-code, dead-store)")
	jobs := flag.Int("j", 0, "per-function analysis parallelism (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print per-file checker statistics to stderr")
	aliasRep := flag.Bool("alias", false, "print the whole-program points-to report (object classes, typed-access table, function summaries, query tallies)")
	noVerify := flag.Bool("no-verify", false, "check even modules the verifier rejects")
	flag.Parse()
	if flag.NArg() < 1 {
		tooling.Fatalf("usage: llvm-check [flags] input...")
	}
	min, err := diag.ParseSeverity(*minSev)
	if err != nil {
		tooling.Fatalf("llvm-check: %v", err)
	}

	exit := 0
	var jsonReports []fileReport
	for _, path := range flag.Args() {
		m, err := tooling.LoadModule(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llvm-check: %v\n", err)
			exit = 2
			continue
		}
		if err := core.Verify(m); err != nil {
			if !*noVerify {
				fmt.Fprintf(os.Stderr, "llvm-check: %s: module invalid: %v\n", path, err)
				exit = 2
				continue
			}
			fmt.Fprintf(os.Stderr, "llvm-check: %s: warning: module fails verification, results may be partial: %v\n", path, err)
		}
		c := checker.New()
		c.Parallelism = *jobs
		c.MinSeverity = min
		c.NoLint = *noLint
		if *aliasRep {
			// Share an analysis cache so the report reads the same
			// points-to result the checker consulted.
			c.AM = analysis.NewManager()
		}
		rep, err := c.Check(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llvm-check: %s: %v\n", path, err)
			exit = 2
			continue
		}
		if rep.Stats.Errors > 0 && exit == 0 {
			exit = 1
		}
		if *jsonOut {
			jsonReports = append(jsonReports, fileReport{File: path, Diagnostics: rep.Diags, Stats: rep.Stats})
		} else {
			for _, d := range rep.Diags {
				fmt.Printf("%s: %s\n", path, d)
			}
		}
		if *aliasRep {
			printAliasReport(path, m, dsa.Of(c.AM, m))
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "%s: %d functions, %d diagnostics (%d errors) in %v; analyses: %d hit / %d miss\n",
				path, rep.Stats.Functions, rep.Stats.Diagnostics, rep.Stats.Errors,
				rep.Stats.Duration.Round(1000), rep.Stats.CacheHits, rep.Stats.CacheMisses)
			for _, k := range diag.SortKinds(rep.Stats.ByKind) {
				fmt.Fprintf(os.Stderr, "  %-20s %d\n", k, rep.Stats.ByKind[k])
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			tooling.Fatalf("llvm-check: %v", err)
		}
	}
	os.Exit(exit)
}

// printAliasReport renders the points-to result for one module: the object
// class count, the paper's Table-1-style typed/untyped access breakdown,
// one summary line per defined function, and the process-wide alias query
// tallies accumulated so far.
func printAliasReport(path string, m *core.Module, pt *dsa.Result) {
	fmt.Printf("%s: points-to: %d object classes\n", path, pt.NumClasses())
	fmt.Printf("  typed accesses: %d loads + %d stores; untyped: %d loads + %d stores (%.1f%% typed)\n",
		pt.TypedLoads, pt.TypedStores, pt.UntypedLoads, pt.UntypedStores, pt.TypedPercent())
	names := make([]string, 0, len(pt.PerFunction))
	for name := range pt.PerFunction {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := pt.PerFunction[name]
		line := fmt.Sprintf("  %%%s: %d typed / %d untyped", name, c.TypedAccesses, c.UntypedAccesses)
		if sum := pt.Summary(name); sum != nil {
			esc, mod, ref := 0, 0, 0
			for i := range sum.ArgEscapes {
				if sum.ArgEscapes[i] {
					esc++
				}
				if sum.ArgMod[i] {
					mod++
				}
				if sum.ArgRef[i] {
					ref++
				}
			}
			line += fmt.Sprintf("; args: %d escape, %d mod, %d ref", esc, mod, ref)
			if sum.ReturnsFresh {
				line += "; returns fresh"
			}
		}
		fmt.Println(line)
	}
	qs := dsa.Stats()
	fmt.Printf("  alias queries: %d no, %d may, %d must (%d total)\n", qs.No, qs.May, qs.Must, qs.Total())
}
