// llvm-dis disassembles bytecode (.bc) back into textual IR (.ll),
// demonstrating the lossless round trip between the representations (§2.5).
//
// Usage: llvm-dis [-o out.ll] input.bc
package main

import (
	"flag"
	"strings"

	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-dis")
	out := flag.String("o", "-", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		tooling.Fatalf("usage: llvm-dis [-o out.ll] input.bc")
	}
	in := flag.Arg(0)
	m, err := tooling.LoadModule(in)
	if err != nil {
		tooling.Fatalf("llvm-dis: %v", err)
	}
	dest := *out
	if dest == "-" && strings.HasSuffix(in, ".bc") {
		// Still stdout by default, mirroring the original tool.
	}
	if err := tooling.SaveModule(dest, m, false); err != nil {
		tooling.Fatalf("llvm-dis: %v", err)
	}
}
