// llvm-trace merges Chrome trace-event JSON files exported by different
// llvm-serve processes (-trace-out) into one timeline loadable in
// Perfetto / about:tracing. Each input carries the wall-clock epoch its
// per-process monotonic timestamps are relative to; the merge aligns the
// timelines on it and keeps each process on its own named track group, so
// a request that entered at the front and compiled at its owning node
// renders as one tree: front request span → owner request span → compile
// span → per-pass spans.
//
// Usage:
//
//	llvm-trace -o merged.json front.json node0.json node1.json ...
//	llvm-trace -o one-request.json -trace TRACE_ID front.json node0.json
//
// -trace filters to one request tree (the X-Trace-Id a response carried),
// keeping process metadata so the tracks stay named.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-trace")
	out := flag.String("o", "", "output file (default stdout)")
	traceID := flag.String("trace", "", "keep only the spans of this trace ID")
	flag.Parse()
	if flag.NArg() == 0 {
		tooling.Fatalf("usage: llvm-trace [-o merged.json] [-trace ID] trace1.json trace2.json ...")
	}
	var files [][]byte
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			tooling.Fatalf("llvm-trace: %v", err)
		}
		files = append(files, data)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			tooling.Fatalf("llvm-trace: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := obs.MergeTraces(w, *traceID, files...); err != nil {
		tooling.Fatalf("llvm-trace: %v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "llvm-trace: merged %d file(s) into %s\n", len(files), *out)
	}
}
