// llvm-link merges IR modules into one whole-program module (Figure 4's
// linker stage), resolving declarations against definitions and renaming
// clashing internal symbols.
//
// Usage: llvm-link [-o out] [-internalize] a.bc b.ll ...
package main

import (
	"flag"

	"repro/internal/core"
	"repro/internal/linker"
	"repro/internal/passes"
	"repro/internal/tooling"
)

func main() {
	defer tooling.ExitOnPanic("llvm-link")
	out := flag.String("o", "-", "output file")
	binary := flag.Bool("b", false, "write bytecode instead of text")
	internalize := flag.Bool("internalize", false, "give non-main symbols internal linkage after linking")
	flag.Parse()
	if flag.NArg() < 1 {
		tooling.Fatalf("usage: llvm-link [-o out] inputs...")
	}
	var mods []*core.Module
	for _, path := range flag.Args() {
		m, err := tooling.LoadModule(path)
		if err != nil {
			tooling.Fatalf("llvm-link: %s: %v", path, err)
		}
		mods = append(mods, m)
	}
	linked, err := linker.Link("linked", mods...)
	if err != nil {
		tooling.Fatalf("llvm-link: %v", err)
	}
	if *internalize {
		passes.NewInternalize().RunOnModule(linked)
	}
	if err := core.Verify(linked); err != nil {
		tooling.Fatalf("llvm-link: result invalid: %v", err)
	}
	if err := tooling.SaveModule(*out, linked, *binary); err != nil {
		tooling.Fatalf("llvm-link: %v", err)
	}
}
