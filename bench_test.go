package repro

// The benchmark harness regenerating the paper's evaluation (§4). One
// benchmark per table/figure, with sub-benchmarks per SPEC-analogue
// program; `go test -bench=. -benchmem` prints the same rows the paper
// reports (typed-access percentages, per-pass timings vs baseline compile
// time, executable sizes). cmd/llvm-bench prints them as formatted tables.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/bytecode"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/profile"
	"repro/internal/workload"
)

// buildCache holds each benchmark's built module as bytecode, so benches
// that need a fresh module per iteration decode (fast) instead of
// rebuilding from source (slow). The bytecode round trip is lossless, so
// the decoded module is equivalent to the built one.
var buildCache = map[string][]byte{}

// mustBuild returns a fresh copy of the linked, internalized,
// compile-time-optimized module for a benchmark.
func mustBuild(b *testing.B, p workload.Profile) *core.Module {
	b.Helper()
	bc, ok := buildCache[p.Name]
	if !ok {
		m, err := experiments.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		bc = mustEncode(b, m)
		buildCache[p.Name] = bc
	}
	m, err := bytecode.Decode(bc)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// rawBuildCache is buildCache's counterpart for unoptimized modules.
var rawBuildCache = map[string][]byte{}

// mustBuildRaw returns a fresh copy of the linked module WITHOUT the
// per-unit compile-time pipeline, so whole-pipeline benchmarks (analysis
// caching, parallel scheduling) measure real transformation work instead
// of a second pass over already-clean IR.
func mustBuildRaw(b *testing.B, p workload.Profile) *core.Module {
	b.Helper()
	bc, ok := rawBuildCache[p.Name]
	if !ok {
		prog := workload.Generate(p)
		mods := make([]*core.Module, 0, len(prog.Units))
		for i, src := range prog.Units {
			m, err := minic.Compile(fmt.Sprintf("%s.u%d", p.Name, i), src)
			if err != nil {
				b.Fatal(err)
			}
			mods = append(mods, m)
		}
		m, err := linker.Link(p.Name, mods...)
		if err != nil {
			b.Fatal(err)
		}
		bc = mustEncode(b, m)
		rawBuildCache[p.Name] = bc
	}
	m, err := bytecode.Decode(bc)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func mustEncode(b *testing.B, m *core.Module) []byte {
	b.Helper()
	bc, err := bytecode.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	return bc
}

func mustEncodeStripped(b *testing.B, m *core.Module) []byte {
	b.Helper()
	bc, err := bytecode.EncodeStripped(m)
	if err != nil {
		b.Fatal(err)
	}
	return bc
}

// BenchmarkTable1 regenerates Table 1: for each benchmark, the fraction of
// static loads and stores with provably reliable type information (DSA).
// The typed%% is attached as a custom metric.
func BenchmarkTable1(b *testing.B) {
	for _, p := range workload.Suite() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			m := mustBuild(b, p)
			var r *dsa.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r = dsa.Analyze(m)
			}
			b.ReportMetric(r.TypedPercent(), "typed%")
			b.ReportMetric(float64(r.Typed()), "typed-accesses")
			b.ReportMetric(float64(r.Untyped()), "untyped-accesses")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the running time of each link-time
// interprocedural optimization (DGE, DAE, inline) on the whole program,
// against the baseline of fully compiling the program per-unit (the
// paper's "GCC -O3" comparison column). Every iteration rebuilds the
// module outside the timer so each pass sees fresh work.
func BenchmarkTable2(b *testing.B) {
	type passCase struct {
		name string
		make func() passes.ModulePass
	}
	cases := []passCase{
		{"DGE", func() passes.ModulePass { return passes.NewDeadGlobalElim() }},
		{"DAE", func() passes.ModulePass { return passes.NewDeadArgElim() }},
		{"inline", func() passes.ModulePass { return passes.NewInline(passes.DefaultInlineThreshold) }},
	}
	for _, p := range workload.Suite() {
		p := p
		for _, pc := range cases {
			pc := pc
			b.Run(p.Name+"/"+pc.name, func(b *testing.B) {
				// Each iteration needs a fresh module; decoding it is part
				// of the timed loop (so iteration counts stay sane), and
				// the pass-only time is reported as pass-ms, the Table 2
				// figure.
				work := 0
				var passNs int64
				for i := 0; i < b.N; i++ {
					m := mustBuild(b, p)
					pass := pc.make()
					t0 := time.Now()
					work += pass.RunOnModule(m)
					passNs += time.Since(t0).Nanoseconds()
				}
				b.ReportMetric(float64(work)/float64(b.N), "changes")
				b.ReportMetric(float64(passNs)/float64(b.N)/1e6, "pass-ms")
			})
		}
		b.Run(p.Name+"/baseline-compile", func(b *testing.B) {
			prog := workload.Generate(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for u, src := range prog.Units {
					m, err := minic.Compile(fmt.Sprintf("u%d", u), src)
					if err != nil {
						b.Fatal(err)
					}
					pm := passes.NewPassManager()
					pm.AddStandardPipeline()
					if _, err := pm.Run(m); err != nil {
						b.Fatal(err)
					}
					codegen.CompileModule(m, codegen.Cisc86{})
				}
			}
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: executable sizes for the LLVM
// bytecode form versus the CISC-86 and RISC-V9 native images, plus the
// compressed-bytecode ratio from §4.1.3. Sizes are attached as metrics.
func BenchmarkFigure5(b *testing.B) {
	for _, p := range workload.Suite() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			m := mustBuild(b, p)
			var llvm, x86, sparc, packed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc := mustEncode(b, m)
				llvm = len(bc)
				x86 = codegen.CompileModule(m, codegen.Cisc86{}).Size()
				sparc = codegen.CompileModule(m, codegen.RiscV9{}).Size()
				var buf bytes.Buffer
				zw, _ := flate.NewWriter(&buf, flate.BestCompression)
				zw.Write(bc)
				zw.Close()
				packed = buf.Len()
			}
			b.ReportMetric(float64(llvm), "llvm-bytes")
			b.ReportMetric(float64(x86), "x86-bytes")
			b.ReportMetric(float64(sparc), "sparc-bytes")
			b.ReportMetric(float64(llvm)/float64(x86), "llvm/x86")
			b.ReportMetric(float64(llvm)/float64(sparc), "llvm/sparc")
			b.ReportMetric(float64(packed)/float64(llvm), "packed/llvm")
		})
	}
}

// BenchmarkLinkTimePipeline times the full link-time interprocedural
// pipeline (§3.3) per program — the end-to-end cost a user pays at link
// time, complementing Table 2's per-pass numbers.
func BenchmarkLinkTimePipeline(b *testing.B) {
	for _, p := range workload.Suite() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var pipeNs int64
			for i := 0; i < b.N; i++ {
				m := mustBuild(b, p)
				pm := passes.NewPassManager()
				pm.AddLinkTimePipeline()
				t0 := time.Now()
				if _, err := pm.Run(m); err != nil {
					b.Fatal(err)
				}
				pipeNs += time.Since(t0).Nanoseconds()
			}
			b.ReportMetric(float64(pipeNs)/float64(b.N)/1e6, "pipeline-ms")
		})
	}
}

// traceOptProgram has the shape the runtime optimizer targets: a hot loop
// whose body calls small helpers ~2000 times — profile-guided inlining has
// real work here (static thresholds alone would also fire; the point is
// the profile pipeline end to end).
const traceOptProgram = `
static int checksum(int x) { return (x * 31 + 17) % 97; }
static int slowpath(int x) {
	int r = 0;
	int i;
	for (i = 0; i < 16; i++) r += (x + i) % 7;
	return r;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 2000; i++) {
		if (checksum(i) == 0) { acc += slowpath(i); }
		else { acc += checksum(acc + i); }
	}
	return acc % 251;
}
`

// BenchmarkTraceOpt exercises the §3.5/§3.6 strategy: instrument, profile
// under the execution engine, detect hot regions, and reoptimize with the
// end-user profile. The metric is the interpreter-step reduction.
func BenchmarkTraceOpt(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := minic.Compile("traceopt", traceOptProgram)
		if err != nil {
			b.Fatal(err)
		}
		pmc := passes.NewPassManager()
		pmc.AddStandardPipeline()
		if _, err := pmc.Run(m); err != nil {
			b.Fatal(err)
		}
		ref, _ := interp.NewMachine(m, nil)
		if _, err := ref.RunMain(); err != nil {
			b.Fatal(err)
		}
		before := ref.Steps
		b.StartTimer()

		ins := profile.Instrument(m)
		mc, _ := interp.NewMachine(m, nil)
		if _, err := mc.RunMain(); err != nil {
			b.Fatal(err)
		}
		data, err := ins.ReadCounts(mc)
		if err != nil {
			b.Fatal(err)
		}
		ins.Strip()
		profile.Reoptimize(m, data, profile.DefaultReoptOptions())

		b.StopTimer()
		after, _ := interp.NewMachine(m, nil)
		if _, err := after.RunMain(); err != nil {
			b.Fatal(err)
		}
		ratio = float64(after.Steps) / float64(before)
		b.StartTimer()
	}
	b.ReportMetric(ratio, "steps-after/before")
}

// BenchmarkRepresentation measures the core representation machinery the
// paper's §4.1.4 speed argument rests on: parsing, printing, verification,
// and bytecode encode/decode throughput on the largest benchmark.
func BenchmarkRepresentation(b *testing.B) {
	p, _ := workload.ByName("176.gcc")
	m := mustBuild(b, p)
	text := m.String()
	bc := mustEncode(b, m)

	b.Run("print", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.String()
		}
		b.SetBytes(int64(len(text)))
	})
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parseText(text); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(text)))
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := core.Verify(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bc = mustEncode(b, m)
		}
		b.SetBytes(int64(len(bc)))
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bytecode.Decode(bc); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(bc)))
	})
}

// BenchmarkAblation quantifies DESIGN.md's called-out design choices: the
// compact 32-bit instruction word (vs all-escape encoding is approximated
// by symbol-stripped vs full size), and the cost of the interprocedural
// may-unwind analysis behind exception-handler pruning.
func BenchmarkAblation(b *testing.B) {
	p, _ := workload.ByName("176.gcc")
	m := mustBuild(b, p)
	b.Run("bytecode-symbols", func(b *testing.B) {
		var full, stripped int
		for i := 0; i < b.N; i++ {
			full = len(mustEncode(b, m))
			stripped = len(mustEncodeStripped(b, m))
		}
		b.ReportMetric(float64(full), "full-bytes")
		b.ReportMetric(float64(stripped), "stripped-bytes")
	})
	b.Run("pruneeh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mm := mustBuild(b, p)
			b.StartTimer()
			passes.NewPruneEH().RunOnModule(mm)
		}
	})

	// Analysis caching: the standard pipeline with the manager on vs off.
	// Serial in both arms so the delta is purely redundant DomTree/LoopInfo
	// builds. The cached arm also reports its hit/miss counts.
	runPipeline := func(b *testing.B, prof workload.Profile, uncached bool, jobs int) {
		var stats analysis.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mm := mustBuildRaw(b, prof)
			b.StartTimer()
			pm := passes.NewPassManager()
			pm.DisableAnalysisCache = uncached
			pm.Parallelism = jobs
			pm.AddStandardPipeline()
			if _, err := pm.Run(mm); err != nil {
				b.Fatal(err)
			}
			stats = pm.AnalysisStats()
		}
		b.ReportMetric(float64(stats.Hits), "cache-hits")
		b.ReportMetric(float64(stats.Misses), "cache-misses")
	}
	for _, name := range []string{"164.gzip", "176.gcc"} {
		prof, _ := workload.ByName(name)
		b.Run("analysis-uncached/"+name, func(b *testing.B) { runPipeline(b, prof, true, 1) })
		b.Run("analysis-cached/"+name, func(b *testing.B) { runPipeline(b, prof, false, 1) })
	}

	// Parallel function-pass scheduling: wall clock of the standard pipeline
	// serial vs one worker per core, on the largest analogue.
	b.Run("pipeline-serial", func(b *testing.B) { runPipeline(b, p, false, 1) })
	b.Run("pipeline-parallel", func(b *testing.B) { runPipeline(b, p, false, runtime.GOMAXPROCS(0)) })
}

// parseText isolates the parse benchmark's input handling.
func parseText(src string) (*core.Module, error) {
	return asm.ParseModule("bench", src)
}

// BenchmarkObsOverhead times the standard pipeline with observability off
// (nil tracer/remarks/metrics — the default) against fully on, the number
// behind the "tracing disabled costs ≤1%" contract. The instrumented arm
// reports how many spans and remarks the run captured.
func BenchmarkObsOverhead(b *testing.B) {
	for _, name := range []string{"164.gzip", "176.gcc"} {
		p, _ := workload.ByName(name)
		run := func(b *testing.B, instrument bool) {
			var spans, remarks int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := mustBuildRaw(b, p)
				b.StartTimer()
				pm := passes.NewPassManager()
				pm.AddStandardPipeline()
				if instrument {
					pm.Tracer = obs.NewTracer()
					pm.Remarks = obs.NewRemarks()
					pm.Metrics = obs.NewRegistry()
				}
				if _, err := pm.Run(m); err != nil {
					b.Fatal(err)
				}
				if instrument {
					spans = pm.Tracer.Len()
					remarks = pm.Remarks.Len()
				}
			}
			if instrument {
				b.ReportMetric(float64(spans), "spans")
				b.ReportMetric(float64(remarks), "remarks")
			}
		}
		b.Run(name+"/off", func(b *testing.B) { run(b, false) })
		b.Run(name+"/on", func(b *testing.B) { run(b, true) })
	}
}

// TestObsDisabledZeroAlloc guards the disabled-observability contract at
// the integration point (obs_test.go covers the bare primitives): the
// per-pass and per-function instrumentation sequence the pass manager
// executes with its obs fields left nil must not allocate at all. A
// regression here taxes every pipeline run that never asked for tracing.
func TestObsDisabledZeroAlloc(t *testing.T) {
	pm := passes.NewPassManager() // Tracer/Remarks/Metrics nil, as in llvm-opt without flags
	allocs := testing.AllocsPerRun(1000, func() {
		span := pm.Tracer.Begin("licm", "pass", 0)
		fsp := pm.Tracer.Begin("hot", "function", 1)
		if pm.Remarks.Enabled() {
			t.Fatal("remarks unexpectedly enabled on a fresh pass manager")
		}
		fsp.End()
		span.End() // runOne builds EndArgs' map only when pm.Tracer != nil
	})
	if allocs != 0 {
		t.Errorf("disabled observability allocated %v times per function, want 0", allocs)
	}

	// The distributed-tracing and flight-recorder primitives keep the same
	// contract: a nil tracer mints no span IDs, a nil recorder drops
	// records, and a nil request record swallows every mutator — the
	// serving path pays nothing when the operator left them off.
	var tr *obs.Tracer
	var rec *obs.Recorder
	var rr *obs.RequestRecord
	parent := obs.SpanContext{Trace: "t-zeroalloc", Span: "s1"}
	allocs = testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("request", "http", 0, parent)
		if sc := sp.Context(); sc.Span != "" {
			t.Fatal("nil tracer minted a span ID")
		}
		sp.End()
		rr.SetCache("hit")
		rr.SetDedup("follower", "t-other")
		rr.SetError("boom")
		rec.Add(obs.RequestRecord{})
	})
	if allocs != 0 {
		t.Errorf("disabled span/recorder primitives allocated %v times per request, want 0", allocs)
	}
}

// BenchmarkExecutionEngine compares the portable interpreter against the
// function-at-a-time JIT translation (§3.4's two execution paths) on a
// loop-heavy benchmark program.
func BenchmarkExecutionEngine(b *testing.B) {
	p, _ := workload.ByName("179.art")
	m := mustBuild(b, p)
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc, _ := interp.NewMachine(m, nil)
			if _, err := mc.RunMain(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc, _ := interp.NewMachine(m, nil)
			mc.EnableJIT()
			if _, err := mc.RunMain(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The optimizing tier and the auto policy share one translation
	// cache across iterations, like a warm llvm-serve daemon would.
	prog := interp.NewProgram(m)
	b.Run("tier2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc, _ := interp.NewMachine(m, nil)
			mc.SetTier(interp.TierOpt)
			if err := mc.AttachProgram(prog); err != nil {
				b.Fatal(err)
			}
			if _, err := mc.RunMain(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc, _ := interp.NewMachine(m, nil)
			mc.SetTier(interp.TierAuto)
			if err := mc.AttachProgram(prog); err != nil {
				b.Fatal(err)
			}
			if _, err := mc.RunMain(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInlineThreshold sweeps the inliner's size threshold —
// the main tunable of the link-time pipeline — reporting the resulting
// code size and dynamic work for the gcc analogue. It quantifies the
// size/speed trade DESIGN.md calls out.
func BenchmarkAblationInlineThreshold(b *testing.B) {
	p, _ := workload.ByName("186.crafty")
	for _, threshold := range []int{0, 10, 40, 200} {
		threshold := threshold
		b.Run(fmt.Sprintf("t=%d", threshold), func(b *testing.B) {
			var size int
			var steps int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := mustBuild(b, p)
				b.StartTimer()
				pm := passes.NewPassManager()
				inliner := passes.NewInline(threshold)
				inliner.SingleCallerAlways = false // isolate the threshold
				pm.Add(passes.NewIPConstProp(), inliner,
					passes.NewDeadArgElim(), passes.NewDeadGlobalElim())
				pm.AddStandardPipeline()
				if _, err := pm.Run(m); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				size = len(mustEncode(b, m))
				mc, _ := interp.NewMachine(m, nil)
				if _, err := mc.RunMain(); err != nil {
					b.Fatal(err)
				}
				steps = mc.Steps
				b.StartTimer()
			}
			b.ReportMetric(float64(size), "bytecode-bytes")
			b.ReportMetric(float64(steps), "interp-steps")
		})
	}
}
