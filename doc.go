// Package repro is a from-scratch Go reproduction of "LLVM: A Compilation
// Framework for Lifelong Program Analysis & Transformation" (Lattner &
// Adve, CGO 2004): the LLVM 1.x typed SSA representation, its textual and
// binary forms, the link-time interprocedural optimizer, Data Structure
// Analysis, the execution engine with invoke/unwind exceptions, native
// code-size back-ends, runtime profiling with idle-time reoptimization, a
// C-subset front-end, and the benchmark harness that regenerates the
// paper's Table 1, Table 2, and Figure 5. See README.md and DESIGN.md.
package repro
