// Lifelong: the store-backed compilation loop (§3.6) in-process — the
// same machinery cmd/llvm-serve exposes over HTTP. A module is interned
// in a content-addressed store, compiled through the standard pipeline
// (cold) and served from cache (warm, byte-identical), executed with
// instrumentation so its profile accumulates across runs, and finally
// reoptimized offline with profile-guided inlining and layout once the
// profile epoch advances. The store directory persists, so re-running
// this example starts warm — compilation results and profiles outlive
// the process, which is the "lifelong" in the paper's title.
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/lifelong"
	"repro/internal/profile"
)

const program = `
static int hotwork(int x) {
	int r = x;
	int i;
	for (i = 0; i < 3; i++) r = r * 2 + i;
	return r % 1000;
}
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 500; i++) acc = (acc + hotwork(i)) % 100000;
	return acc % 251;
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lifelong:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "lifelong-example-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := lifelong.Open(dir, 0)
	if err != nil {
		return err
	}

	m, err := minic.Compile("app", program)
	if err != nil {
		return err
	}

	// Cold compile: miss, full pipeline; warm compile: cache hit with
	// byte-identical output and zero pass work.
	cold, err := lifelong.Compile(st, m, "std")
	if err != nil {
		return err
	}
	fmt.Printf("cold compile: hit=%v  module %.12s…  artifact %d bytes\n",
		cold.Hit, cold.ModuleHash, len(cold.Data))
	warm, err := lifelong.Compile(st, m, "std")
	if err != nil {
		return err
	}
	fmt.Printf("warm compile: hit=%v  byte-identical=%v\n",
		warm.Hit, bytes.Equal(cold.Data, warm.Data))

	// "End-user runs": execute instrumented, fold each run's counts into
	// the store. The profile epoch advances when the total doubles.
	for i := 0; i < 3; i++ {
		mm, err := st.GetModule(cold.ModuleHash)
		if err != nil {
			return err
		}
		ins := profile.Instrument(mm)
		mc, err := interp.NewMachine(mm, os.Stdout)
		if err != nil {
			return err
		}
		code, err := mc.RunMain()
		if err != nil {
			return err
		}
		d, err := ins.ReadCounts(mc)
		if err != nil {
			return err
		}
		ins.Strip()
		f, bumped, err := st.MergeProfile(cold.ModuleHash, d.ToCounts(mm))
		if err != nil {
			return err
		}
		fmt.Printf("run %d: exit=%d  profile total=%d  epoch=%d  advanced=%v\n",
			i+1, code, f.Counts.Total, f.Epoch, bumped)
	}

	// The idle reoptimizer's work, done synchronously: build the
	// profile-guided artifact for the current epoch.
	res, err := lifelong.ReoptimizeStored(st, cold.ModuleHash, "std")
	if err != nil {
		return err
	}
	fmt.Printf("reoptimize: epoch=%d  hot calls inlined=%d  blocks reordered=%d\n",
		res.Epoch, res.HotInlined, res.Reordered)

	// The daemon now serves the reoptimized artifact for the same module.
	after, err := lifelong.Compile(st, m, "std")
	if err != nil {
		return err
	}
	fmt.Printf("post-reopt compile: hit=%v  reoptimized=%v  differs from cold=%v\n",
		after.Hit, after.Reoptimized, !bytes.Equal(cold.Data, after.Data))

	s := st.Stats()
	fmt.Printf("store: module hits=%d misses=%d  artifact hits=%d misses=%d\n",
		s.ModuleHits, s.ModuleMisses, s.ArtifactHits, s.ArtifactMisses)
	return nil
}
