// Exceptions: the paper's §2.4 in action. A C++-style front-end lowers
// try/catch and automatic destructors onto the two low-level primitives —
// invoke and unwind — exactly as in Figures 1–3 of the paper: the handler
// block runs the destructor and continues unwinding; an outer invoke
// catches the exception; and the same mechanism implements C's
// setjmp/longjmp. The exception-handler pruning pass then removes the
// handlers that an interprocedural analysis proves unreachable.
package main

import (
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/passes"
)

// The IR a C++ front-end would emit for:
//
//	void example() {
//	    AClass Obj;          // has a destructor
//	    func();              // might throw; destructor must run
//	}
//	int main() {
//	    try { example(); } catch (...) { return 7; }
//	    return 0;
//	}
const cxxEH = `
%AClass = type { int }

declare int %printf(sbyte*, ...)
%ctor_msg = internal constant [16 x sbyte] c"  constructing\0A\00"
%dtor_msg = internal constant [15 x sbyte] c"  destructing\0A\00"

%throw_flag = global bool true

internal void %AClass_ctor(%AClass* %this) {
entry:
	%m = getelementptr [16 x sbyte]* %ctor_msg, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %m)
	%f = getelementptr %AClass* %this, long 0, ubyte 0
	store int 1, int* %f
	ret void
}

internal void %AClass_dtor(%AClass* %this) {
entry:
	%m = getelementptr [15 x sbyte]* %dtor_msg, long 0, long 0
	%r = call int (sbyte*, ...)* %printf(sbyte* %m)
	ret void
}

internal void %func() {
entry:
	%t = load bool* %throw_flag
	br bool %t, label %doThrow, label %ok
doThrow:
	unwind
ok:
	ret void
}

internal void %example() {
entry:
	%Obj = alloca %AClass
	call void %AClass_ctor(%AClass* %Obj)
	invoke void %func() to label %OkLabel unwind to label %ExceptionLabel
OkLabel:
	call void %AClass_dtor(%AClass* %Obj)
	ret void
ExceptionLabel:
	; If unwind occurs, execution continues here. First, destroy the
	; object, then continue unwinding (Figure 2 of the paper).
	call void %AClass_dtor(%AClass* %Obj)
	unwind
}

internal void %neverThrows() {
entry:
	ret void
}

int %main() {
entry:
	; This invoke's handler is useless: pruneeh proves neverThrows cannot
	; unwind and devolves the invoke to a call.
	invoke void %neverThrows() to label %cont unwind to label %useless
cont:
	invoke void %example() to label %done unwind to label %caught
done:
	ret int 0
caught:
	ret int 7
useless:
	ret int 99
}
`

// setjmp/longjmp on the same primitives: setjmp is an invoke whose unwind
// edge is the longjmp return path.
const setjmpLongjmp = `
declare int %printf(sbyte*, ...)
%msg1 = internal constant [13 x sbyte] c"before jump\0A\00"
%msg2 = internal constant [12 x sbyte] c"after jump\0A\00"

internal void %deep(int %depth) {
entry:
	%z = seteq int %depth, 0
	br bool %z, label %jump, label %recurse
jump:
	unwind            ; the longjmp
recurse:
	%d1 = sub int %depth, 1
	call void %deep(int %d1)
	ret void
}

int %main() {
entry:
	%m1 = getelementptr [13 x sbyte]* %msg1, long 0, long 0
	%r1 = call int (sbyte*, ...)* %printf(sbyte* %m1)
	invoke void %deep(int 5) to label %normal unwind to label %jumped
normal:
	ret int 1
jumped:
	%m2 = getelementptr [12 x sbyte]* %msg2, long 0, long 0
	%r2 = call int (sbyte*, ...)* %printf(sbyte* %m2)
	ret int 0
}
`

func run(title, src string) {
	fmt.Printf("=== %s ===\n", title)
	m, err := asm.ParseModule(title, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mc, _ := interp.NewMachine(m, os.Stdout)
	v, err := mc.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("exit value: %d\n\n", v)
}

func countUnwinds(f *core.Function) int {
	n := 0
	f.ForEachInst(func(inst core.Instruction) bool {
		if inst.Opcode() == core.OpUnwind {
			n++
		}
		return true
	})
	return n
}

func main() {
	run("C++ destructor unwinding (paper Figures 1-2)", cxxEH)
	run("setjmp/longjmp on invoke/unwind", setjmpLongjmp)

	// §2.4: "LLVM [can] turn stack unwinding operations into direct
	// branches when the unwind target is the same function as the
	// unwinder (this often occurs due to inlining)". Inline %example into
	// main's invoke site and watch the unwind disappear.
	{
		m, _ := asm.ParseModule("inline-eh", cxxEH)
		main := m.Func("main")
		fmt.Println("=== inlining turns unwinds into branches (§2.4) ===")
		fmt.Printf("before: main has %d unwind instructions (dynamic unwinding)\n", countUnwinds(main))
		var inlined int
		for _, b := range append([]*core.BasicBlock(nil), main.Blocks...) {
			if inv, ok := b.Terminator().(*core.InvokeInst); ok {
				if passes.InlineInvoke(inv) {
					inlined++
				}
			}
		}
		// Inline the nested invoke exposed from %example's body too.
		for again := true; again; {
			again = false
			for _, b := range append([]*core.BasicBlock(nil), main.Blocks...) {
				if inv, ok := b.Terminator().(*core.InvokeInst); ok && passes.InlineInvoke(inv) {
					inlined++
					again = true
				}
			}
		}
		if err := core.Verify(m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("inlined %d invoke sites; main now has %d unwind instructions ",
			inlined, countUnwinds(main))
		fmt.Println("(every throw is a direct branch to its handler)")
		mc, _ := interp.NewMachine(m, os.Stdout)
		v, err := mc.RunMain()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("behavior unchanged: exit value %d\n\n", v)
	}

	// Show the interprocedural handler pruning (§4.1.2).
	m, _ := asm.ParseModule("prune", cxxEH)
	n := passes.NewPruneEH().RunOnModule(m)
	fmt.Printf("=== pruneeh ===\ninterprocedural analysis removed %d provably-useless exception handler(s)\n", n)
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mc, _ := interp.NewMachine(m, os.Stdout)
	v, _ := mc.RunMain()
	fmt.Printf("pruned program still exits with: %d\n", v)
}
