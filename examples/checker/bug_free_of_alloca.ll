; Seeded bug: free of stack memory. The paper's memory model gives malloc
; and alloca distinct lifetimes; releasing a stack slot through free is
; always wrong.

int %main() {
entry:
	%a = alloca int
	store int 3, int* %a
	free int* %a
	ret int 0
}
