; Seeded bug: the alloca is read before any store reaches it on any path.

int %main() {
entry:
	%a = alloca int
	%v = load int* %a
	ret int %v
}
