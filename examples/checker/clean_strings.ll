; Clean program: global string constants, constant getelementptr, and an
; external varargs call. External callees may read and write through
; pointers they receive but can never free them (free is a first-class
; instruction), so no spurious diagnostics may appear.

%fmt = internal constant [4 x sbyte] c"%d\0A\00"

declare int %printf(sbyte*, ...)

int %main() {
entry:
	%h = malloc int
	store int 42, int* %h
	%s = getelementptr [4 x sbyte]* %fmt, long 0, long 0
	%v = load int* %h
	%r = call int (sbyte*, ...)* %printf(sbyte* %s, int %v)
	free int* %h
	ret int 0
}
