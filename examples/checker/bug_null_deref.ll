; Seeded bug: load through a pointer that is null on every path.
; The interpreter traps with ErrNullDeref at the same fn/block/inst.

int %main() {
entry:
	%v = load int* null
	ret int %v
}
