; Seeded bug, interprocedural: %destroy's summary proves it frees its
; argument on every path, so the caller's own free is a definite double
; free. The interpreter traps at the same position (ErrDoubleFree).

internal void %destroy(int* %p) {
entry:
	free int* %p
	ret void
}

int %main() {
entry:
	%p = malloc int
	store int 1, int* %p
	call void %destroy(int* %p)
	free int* %p
	ret int 0
}
