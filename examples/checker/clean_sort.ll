; Clean program: fills a stack array through getelementptr, then sums it.
; Exercises alloca init tracking through interior pointers and loop-carried
; counters held in memory.

int %main() {
entry:
	%buf = alloca [8 x int]
	%i = alloca int
	%s = alloca int
	store int 0, int* %i
	store int 0, int* %s
	br label %fill

fill:
	%iv = load int* %i
	%c = setlt int %iv, 8
	br bool %c, label %fillbody, label %sumloop

fillbody:
	%ix = cast int %iv to long
	%slot = getelementptr [8 x int]* %buf, long 0, long %ix
	%v7 = mul int %iv, 7
	store int %v7, int* %slot
	%i2 = add int %iv, 1
	store int %i2, int* %i
	br label %fill

sumloop:
	store int 0, int* %i
	br label %sloop

sloop:
	%j = load int* %i
	%c2 = setlt int %j, 8
	br bool %c2, label %sbody, label %done

sbody:
	%jx = cast int %j to long
	%sl = getelementptr [8 x int]* %buf, long 0, long %jx
	%e = load int* %sl
	%cur = load int* %s
	%ns = add int %cur, %e
	store int %ns, int* %s
	%j2 = add int %j, 1
	store int %j2, int* %i
	br label %sloop

done:
	%r = load int* %s
	ret int %r
}
