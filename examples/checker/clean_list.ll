; Clean program: builds a three-node linked list, sums it behind a null
; guard, then frees every node exactly once. llvm-check must stay silent —
; the free-in-loop pattern is the classic noise source for naive checkers.

%node = type { int, %node* }

internal %node* %push(%node* %head, int %v) {
entry:
	%n = malloc %node
	%vp = getelementptr %node* %n, long 0, ubyte 0
	store int %v, int* %vp
	%np = getelementptr %node* %n, long 0, ubyte 1
	store %node* %head, %node** %np
	ret %node* %n
}

int %main() {
entry:
	%h0 = call %node* %push(%node* null, int 1)
	%h1 = call %node* %push(%node* %h0, int 2)
	%h2 = call %node* %push(%node* %h1, int 3)
	br label %sum

sum:
	%p = phi %node* [ %h2, %entry ], [ %nx, %body ]
	%acc = phi int [ 0, %entry ], [ %acc2, %body ]
	%c = setne %node* %p, null
	br bool %c, label %body, label %freeinit

body:
	%vp = getelementptr %node* %p, long 0, ubyte 0
	%v = load int* %vp
	%acc2 = add int %acc, %v
	%npp = getelementptr %node* %p, long 0, ubyte 1
	%nx = load %node** %npp
	br label %sum

freeinit:
	br label %floop

floop:
	%q = phi %node* [ %h2, %freeinit ], [ %qn, %fbody ]
	%fc = setne %node* %q, null
	br bool %fc, label %fbody, label %done

fbody:
	%qnp = getelementptr %node* %q, long 0, ubyte 1
	%qn = load %node** %qnp
	free %node* %q
	br label %floop

done:
	ret int %acc
}
