; Seeded bug: %p is freed on every path before the load.
; llvm-check reports: error: use-after-free at 'load int* %p'.
; The interpreter does NOT trap here (its arena only bounds-checks),
; which is exactly why the static checker exists.

int %main() {
entry:
	%p = malloc int
	store int 7, int* %p
	free int* %p
	%v = load int* %p
	ret int %v
}
