// Linktime: the paper's whole workflow (Figure 4). Three translation units
// are compiled separately by the MiniC front-end, linked at the IR level,
// internalized, and then transformed by the link-time interprocedural
// optimizer — which deletes dead globals and functions across unit
// boundaries, removes dead arguments, propagates constants between units,
// and inlines across files, none of which a per-unit compiler could do.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/passes"
)

var units = map[string]string{
	"math.c": `
/* A library unit: only scale() is actually used by the program. */
int scale_factor = 3;
static int legacy_table[64];           /* dead across the whole program */

int scale(int x, int debug_mode) {     /* debug_mode is dead everywhere */
	return x * scale_factor;
}
int unused_entry(int x) {              /* dead once internalized */
	legacy_table[0] = x;
	return legacy_table[0];
}
`,
	"data.c": `
extern int scale(int x, int debug_mode);

int process(int *data, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		s += scale(data[i], 0);
	}
	return s;
}
`,
	"main.c": `
extern int printf(char *fmt, ...);
extern int process(int *data, int n);

int main() {
	int values[6] = {1, 2, 3, 4, 5, 6};
	int r = process(values, 6);
	printf("result=%d\n", r);
	return r;
}
`,
}

func main() {
	// Compile each unit separately (with compile-time scalar opts).
	var mods []*core.Module
	for _, name := range []string{"math.c", "data.c", "main.c"} {
		m, err := minic.Compile(name, units[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, name, err)
			os.Exit(1)
		}
		pm := passes.NewPassManager()
		pm.AddStandardPipeline()
		pm.Run(m)
		fmt.Printf("compiled %-8s %3d instructions, %d functions, %d globals\n",
			name, m.NumInstructions(), len(m.Funcs), len(m.Globals))
		mods = append(mods, m)
	}

	// Link.
	prog, err := linker.Link("program", mods...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "link:", err)
		os.Exit(1)
	}
	before := prog.NumInstructions()
	fnBefore, gBefore := len(prog.Funcs), len(prog.Globals)

	// Baseline run.
	mc, _ := interp.NewMachine(prog, os.Stdout)
	want, err := mc.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	stepsBefore := mc.Steps

	// Link-time interprocedural optimization.
	pm := passes.NewPassManager()
	pm.VerifyEach = true
	pm.Add(passes.NewInternalize())
	pm.AddLinkTimePipeline()
	if _, err := pm.Run(prog); err != nil {
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}
	fmt.Println("\nlink-time interprocedural passes:")
	for _, r := range pm.Results {
		if r.Changed > 0 {
			fmt.Printf("  %-14s %4d changes  %v\n", r.Pass, r.Changed, r.Duration)
		}
	}

	mc2, _ := interp.NewMachine(prog, os.Stdout)
	got, err := mc2.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimized run:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwhole program: %d -> %d instructions, %d -> %d functions, %d -> %d globals\n",
		before, prog.NumInstructions(), fnBefore, len(prog.Funcs), gBefore, len(prog.Globals))
	fmt.Printf("interpreter steps: %d -> %d\n", stepsBefore, mc2.Steps)
	if got != want {
		fmt.Fprintf(os.Stderr, "MISMATCH: %d vs %d\n", got, want)
		os.Exit(1)
	}
	fmt.Printf("result unchanged: %d\n", got)
}
