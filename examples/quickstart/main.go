// Quickstart: build IR with the public API, print it, optimize it, encode
// it to bytecode and back, and execute it in the execution engine — a tour
// of the framework's equivalent textual, binary, and in-memory
// representations (§2.5 of the paper).
package main

import (
	"fmt"
	"os"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/passes"
)

func main() {
	// Build:  int %sumsq(int %n)  —  sum of i*i for i in [0, n).
	m := core.NewModule("quickstart")
	f := core.NewFunction("sumsq", core.NewFunctionType(core.IntType, core.IntType))
	f.Args[0].SetName("n")
	m.AddFunc(f)

	entry := core.NewBlock("entry")
	loop := core.NewBlock("loop")
	exit := core.NewBlock("exit")
	f.AddBlock(entry)
	f.AddBlock(loop)
	f.AddBlock(exit)

	b := core.NewBuilder()
	b.SetInsertPoint(entry)
	b.CreateBr(loop)

	b.SetInsertPoint(loop)
	i := b.CreatePhi(core.IntType, "i")
	acc := b.CreatePhi(core.IntType, "acc")
	sq := b.CreateMul(i, i, "sq")
	acc2 := b.CreateAdd(acc, sq, "acc2")
	i2 := b.CreateAdd(i, core.NewInt(core.IntType, 1), "i2")
	cond := b.CreateSetLT(i2, f.Args[0], "cond")
	b.CreateCondBr(cond, loop, exit)

	i.AddIncoming(core.NewInt(core.IntType, 0), entry)
	i.AddIncoming(i2, loop)
	acc.AddIncoming(core.NewInt(core.IntType, 0), entry)
	acc.AddIncoming(acc2, loop)

	b.SetInsertPoint(exit)
	b.CreateRet(acc2)

	// main calls sumsq(10).
	mainFn := core.NewFunction("main", core.NewFunctionType(core.IntType))
	m.AddFunc(mainFn)
	mb := core.NewBlock("entry")
	mainFn.AddBlock(mb)
	b.SetInsertPoint(mb)
	call := b.CreateCall(f, []core.Value{core.NewInt(core.IntType, 10)}, "r")
	b.CreateRet(call)

	// The verifier enforces the type and SSA rules.
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	fmt.Println("=== textual form ===")
	fmt.Print(m.String())

	// Optimize.
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	changed, _ := pm.Run(m)
	fmt.Printf("\n=== after standard pipeline (%d changes) ===\n", changed)
	fmt.Print(m.String())

	// Round-trip through the binary form.
	bc, err := bytecode.Encode(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	fmt.Printf("\nbytecode: %d bytes\n", len(bc))
	m2, err := bytecode.Decode(bc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decode:", err)
		os.Exit(1)
	}

	// Execute.
	mc, err := interp.NewMachine(m2, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	v, err := mc.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("sumsq(10) = %d (in %d interpreter steps)\n", v, mc.Steps)
}
