; Seeded miscompile for broken-dse: the unsound dead-store elimination
; deletes "store int 1" because a later store to %p exists, ignoring the
; load in between; %x then reads the zero-initialized cell and main
; returns 2 instead of 12.

int %main() {
entry:
	%p = alloca int
	store int 1, int* %p
	%x = load int* %p
	store int 2, int* %p
	%y = load int* %p
	%s1 = mul int %x, 10
	%s = add int %s1, %y
	ret int %s
}
