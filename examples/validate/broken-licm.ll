; Seeded miscompile for broken-licm: the unsound hoist moves the guarded
; division into the entry block, so the %b == 0 path that used to return 0
; now traps with divide-by-zero. main pins the miscompiling input (10, 0).

internal int %guarded_div(int %a, int %b) {
entry:
	%c = setne int %b, 0
	br bool %c, label %divide, label %zero

divide:
	%q = div int %a, %b
	ret int %q

zero:
	ret int 0
}

int %main() {
entry:
	%r = call int %guarded_div(int 10, int 0)
	ret int %r
}
