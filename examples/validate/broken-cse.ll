; Seeded miscompile for broken-cse: the unsound load-CSE merges the second
; load of %p with the first across the clobbering "store int 42", so %y
; sees the stale 7 and main returns 14 instead of 49. The oracle must flag
; the broken-cse run and stay silent on the real std pipeline.

int %main() {
entry:
	%p = alloca int
	store int 7, int* %p
	%x = load int* %p
	store int 42, int* %p
	%y = load int* %p
	%s = add int %x, %y
	ret int %s
}
