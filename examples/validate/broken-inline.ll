; Seeded miscompile for broken-inline: the unsound inliner replaces each
; %bump() call with its constant return value and drops the body — and
; with it the increments of %counter. main returns 10 instead of 12, and
; the final bytes of %counter differ (0 instead of 2), so both the return
; value and the shared-global comparison expose it.

%counter = global int 0

internal int %bump() {
entry:
	%v = load int* %counter
	%v1 = add int %v, 1
	store int %v1, int* %counter
	ret int 5
}

int %main() {
entry:
	%a = call int %bump()
	%b = call int %bump()
	%c = load int* %counter
	%s0 = add int %a, %b
	%s = add int %s0, %c
	ret int %s
}
