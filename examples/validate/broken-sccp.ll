; Seeded miscompile for broken-sccp: the unsound strength reduction turns
; a signed division by two into an arithmetic shift right. The two differ
; on negative odd inputs: -7 / 2 truncates to -3, but -7 >> 1 floors to
; -4. main pins the miscompiling input.

internal int %halve(int %x) {
entry:
	%h = div int %x, 2
	ret int %h
}

int %main() {
entry:
	%r = call int %halve(int -7)
	ret int %r
}
