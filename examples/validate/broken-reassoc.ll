; Seeded miscompile for broken-reassoc: the unsound canonicalization swaps
; subtraction operands as if sub commuted; %sub2(9, 3) returns -6 instead
; of 6.

internal int %sub2(int %a, int %b) {
entry:
	%d = sub int %a, %b
	ret int %d
}

int %main() {
entry:
	%r = call int %sub2(int 9, int 3)
	ret int %r
}
