// Safecode: the SAFECode application of §4.2.2 — "it relies on the array
// type information in LLVM to enforce array bounds safety, and uses
// interprocedural analysis to eliminate runtime bounds checks". A MiniC
// program is compiled, array accesses get runtime guards, provably-safe
// checks are removed statically (constant in-range indices) and by
// dominance (a repeated index already checked on every incoming path), and
// the execution engine demonstrates that in-range runs are unaffected
// while an out-of-bounds access traps instead of corrupting memory.
package main

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/passes"
)

const program = `
int table[10] = {0, 1, 4, 9, 16, 25, 36, 49, 64, 81};
int mirror[10] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
int secret = 12345;   /* lives right after the arrays in memory */

int lookup(int i) {
	return table[i];        /* unchecked C: i is trusted */
}

int sumFirst(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		s += table[i];      /* index i checked against limit 10 here... */
		s += mirror[i];     /* ...so this check is dominated and removed */
	}
	return s;
}

int main() {
	return sumFirst(10) + lookup(3);
}
`

func main() {
	m, err := minic.Compile("safecode", program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Reference semantics (in-range inputs).
	ref, _ := interp.NewMachine(m, nil)
	want, err := ref.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("unchecked program result: %d\n", want)

	// Optimize to SSA form first (the checks then see one value per index
	// expression, letting the dominance-based elimination fire), then
	// enforce bounds safety.
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	pm.Run(m)
	bc := passes.NewBoundsCheck()
	bc.RunOnModule(m)
	removed := passes.EliminateDominatedChecks(m)
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("bounds checks: %d inserted, %d elided statically, %d removed as dominated\n",
		bc.Inserted, bc.Elided, removed)

	// In-range behavior is unchanged.
	mc, _ := interp.NewMachine(m, nil)
	got, err := mc.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "checked run:", err)
		os.Exit(1)
	}
	if got != want {
		fmt.Fprintf(os.Stderr, "MISMATCH %d vs %d\n", got, want)
		os.Exit(1)
	}
	fmt.Printf("checked program result: %d (unchanged)\n", got)

	// An attack: read past the table (reaches 'secret' in unchecked C).
	mc2, _ := interp.NewMachine(m, nil)
	_, err = mc2.RunFunction(m.Func("lookup"), 10)
	var be *interp.BoundsError
	if errors.As(err, &be) {
		fmt.Printf("out-of-bounds lookup(10) trapped: index %d, limit %d\n", be.Index, be.Limit)
	} else {
		fmt.Fprintf(os.Stderr, "attack not caught: %v\n", err)
		os.Exit(1)
	}
}
