// Tracing: the paper's runtime-optimization strategy (§3.5) and idle-time
// reoptimizer (§3.6) end to end. The native code generator's light-weight
// instrumentation is inserted, an "end-user run" collects per-block counts,
// hot loop regions are detected, the most frequent path through the hottest
// region is extracted as a trace, and finally the offline reoptimizer uses
// the profile for aggressive profile-guided inlining and hot-first layout —
// on the preserved IR, which is the whole point of keeping the
// representation around for the program's lifetime.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/passes"
	"repro/internal/profile"
)

const program = `
/* An "end-user workload": mostly-taken fast path, rare slow path. */
static int checksum(int x) { return (x * 2654435761) % 97; }
static int slowpath(int x) {
	int r = 0;
	int i;
	for (i = 0; i < 16; i++) r += (x + i) % 7;
	return r;
}

int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 2000; i++) {
		if (checksum(i) == 0) {
			acc += slowpath(i);   /* ~1% of iterations */
		} else {
			acc += checksum(acc + i);
		}
	}
	return acc % 251;
}
`

func main() {
	m, err := minic.Compile("traced", program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pm := passes.NewPassManager()
	pm.AddStandardPipeline()
	pm.Run(m)

	// Reference behavior.
	ref, _ := interp.NewMachine(m, nil)
	want, err := ref.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("program result: %d (%d steps uninstrumented)\n", want, ref.Steps)

	// 1. Instrument (the code generator's light-weight probes, §3.4).
	ins := profile.Instrument(m)
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mc, _ := interp.NewMachine(m, nil)
	if _, err := mc.RunMain(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := ins.ReadCounts(mc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ins.Strip()
	fmt.Printf("profiled %d block executions across the run\n", data.Total)

	// 2. Hot-region detection.
	regions := data.HotRegions(m, 0.10)
	fmt.Printf("hot regions (>=10%% of execution): %d\n", len(regions))
	for _, r := range regions {
		fmt.Printf("  loop at %%%s in %%%s: %.0f%% coverage, header count %d\n",
			r.Loop.Header.Name(), r.Fn.Name(), 100*r.Coverage, r.HeaderCount)
	}

	// 3. Trace formation through the hottest region.
	if len(regions) > 0 {
		tr := data.FormTrace(regions[0])
		fmt.Printf("hot path: %s\n", tr)
	}

	// 4. Idle-time reoptimization with the end-user profile.
	res := profile.Reoptimize(m, data, profile.DefaultReoptOptions())
	fmt.Printf("reoptimizer: inlined %d hot call sites, reordered %d functions, %d scalar clean-ups\n",
		res.HotInlined, res.Reordered, res.ScalarOpts)
	if err := core.Verify(m); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	after, _ := interp.NewMachine(m, nil)
	got, err := after.RunMain()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if got != want {
		fmt.Fprintf(os.Stderr, "MISMATCH %d vs %d\n", got, want)
		os.Exit(1)
	}
	fmt.Printf("after reoptimization: result %d (unchanged), %d steps (was %d)\n",
		got, after.Steps, ref.Steps)
}
